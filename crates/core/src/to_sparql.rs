//! Translation of neighborhoods and shape fragments to SPARQL (§5.1).
//!
//! Three query families are generated:
//!
//! - [`path_query`] — Lemma 5.1: `Q_E(?t, ?s, ?p, ?o, ?h)` binds `(?t, ?h)`
//!   to `⟦E⟧^G` (restricted to `N(G)`) and `(?s, ?p, ?o)` to the triples of
//!   `graph(paths(E, G, ?t, ?h))` (unbound on identity rows).
//! - [`conformance_query`] — the auxiliary `CQ_φ(?v)` returning all nodes of
//!   `N(G)` conforming to φ. Counting quantifiers are expanded into n-fold
//!   joins with pairwise-distinctness filters; `≤`/`∀` use `MINUS`.
//! - [`neighborhood_query`] — Proposition 5.3: `Q_φ(?v, ?s, ?p, ?o)` with
//!   `(s, p, o) ∈ B(v, G, φ)`, following the case table of Appendix C.1.
//!
//! [`fragment_query`] (Corollary 5.5) unions the neighborhood queries of a
//! request-shape set into a single `Q_S(?s, ?p, ?o)`.
//!
//! The generated queries are deliberately *faithful* to the paper's
//! construction — they nest sub-selects per case and can grow to hundreds
//! of lines when printed, which is exactly the workload stress the Figure 2
//! experiment measures.

use shapefrag_rdf::{Graph, Iri, Literal, Term};
use shapefrag_shacl::node_test::{NodeKind, NodeTest};
use shapefrag_shacl::shape::PathOrId;
use shapefrag_shacl::{Nnf, PathExpr, Schema, Shape};
use shapefrag_sparql::algebra::{Expr, Pattern, Projection, Select, TriplePattern, VarOrTerm};
use shapefrag_sparql::eval::{bindings_to_graph, eval_select, EvalConfig, ResourceExhausted};

/// `Q_E(?t, ?s, ?p, ?o, ?h)` for a path expression (Lemma 5.1).
pub fn path_query(path: &PathExpr) -> Select {
    Translator::new(&Schema::empty()).q_path(path)
}

/// `CQ_φ(?v)`: the conforming nodes of a shape, as a SPARQL query.
pub fn conformance_query(schema: &Schema, shape: &Shape) -> Select {
    let nnf = Nnf::from_shape(shape);
    Translator::new(schema).cq(&nnf)
}

/// `Q_φ(?v, ?s, ?p, ?o)`: the neighborhood query (Proposition 5.3).
pub fn neighborhood_query(schema: &Schema, shape: &Shape) -> Select {
    let nnf = Nnf::from_shape(shape);
    Translator::new(schema).nq(&nnf)
}

/// `Q_S(?s, ?p, ?o)`: the shape-fragment query (Corollary 5.5).
pub fn fragment_query(schema: &Schema, shapes: &[Shape]) -> Select {
    let mut tr = Translator::new(schema);
    let mut branches: Vec<Pattern> = Vec::new();
    for shape in shapes {
        let nnf = Nnf::from_shape(shape);
        branches.push(Pattern::SubSelect(Box::new(tr.nq(&nnf))));
    }
    let pattern = union_all(branches);
    Select {
        distinct: true,
        projection: Some(vec![
            Projection::Var("s".into()),
            Projection::Var("p".into()),
            Projection::Var("o".into()),
        ]),
        pattern,
    }
}

/// Computes `Frag(G, S)` by generating and evaluating the fragment query.
pub fn fragment_via_sparql(
    schema: &Schema,
    graph: &Graph,
    shapes: &[Shape],
    config: &EvalConfig,
) -> Result<Graph, ResourceExhausted> {
    let query = fragment_query(schema, shapes);
    let solutions = eval_select(graph, &query, config)?;
    Ok(bindings_to_graph(&solutions, "s", "p", "o"))
}

/// Computes `B(v, G, φ)` for every conforming `v` by evaluating `Q_φ`; the
/// result maps nodes to neighborhoods (nodes with empty neighborhoods that
/// still conform appear in `CQ_φ` but contribute no rows with bound
/// `?s ?p ?o`, matching Definition 3.2 up to the empty graph).
pub fn neighborhoods_via_sparql(
    schema: &Schema,
    graph: &Graph,
    shape: &Shape,
    config: &EvalConfig,
) -> Result<Vec<(Term, Graph)>, ResourceExhausted> {
    let query = neighborhood_query(schema, shape);
    let solutions = eval_select(graph, &query, config)?;
    let mut by_node: std::collections::BTreeMap<Term, Graph> = std::collections::BTreeMap::new();
    for b in &solutions {
        let Some(v) = b.get("v") else { continue };
        let entry = by_node.entry(v.clone()).or_default();
        let (Some(s), Some(Term::Iri(p)), Some(o)) = (b.get("s"), b.get("p"), b.get("o")) else {
            continue;
        };
        if s.is_literal() {
            continue;
        }
        entry.insert(shapefrag_rdf::Triple::new(s.clone(), p.clone(), o.clone()));
    }
    Ok(by_node.into_iter().collect())
}

// ---------------------------------------------------------------------------

struct Translator<'s> {
    schema: &'s Schema,
    counter: u32,
}

fn var(name: &str) -> VarOrTerm {
    VarOrTerm::Var(name.to_string())
}

fn proj_var(name: &str) -> Projection {
    Projection::Var(name.to_string())
}

fn rename(from: &str, to: &str) -> Projection {
    Projection::Rename(from.to_string(), to.to_string())
}

fn sel(projection: Vec<Projection>, pattern: Pattern) -> Select {
    Select {
        distinct: false,
        projection: Some(projection),
        pattern,
    }
}

fn sel_distinct(projection: Vec<Projection>, pattern: Pattern) -> Select {
    Select {
        distinct: true,
        projection: Some(projection),
        pattern,
    }
}

fn sub(select: Select) -> Pattern {
    Pattern::SubSelect(Box::new(select))
}

fn union_all(mut branches: Vec<Pattern>) -> Pattern {
    match branches.len() {
        0 => Pattern::Filter(Box::new(Pattern::Unit), false_expr()),
        1 => branches.pop().unwrap(),
        _ => {
            let mut it = branches.into_iter();
            let first = it.next().unwrap();
            it.fold(first, |acc, b| Pattern::Union(Box::new(acc), Box::new(b)))
        }
    }
}

fn join_all(mut parts: Vec<Pattern>) -> Pattern {
    match parts.len() {
        0 => Pattern::Unit,
        1 => parts.pop().unwrap(),
        _ => {
            let mut it = parts.into_iter();
            let first = it.next().unwrap();
            it.fold(first, |acc, b| Pattern::Join(Box::new(acc), Box::new(b)))
        }
    }
}

fn false_expr() -> Expr {
    Expr::Const(Term::Literal(Literal::boolean(false)))
}

fn true_expr() -> Expr {
    Expr::Const(Term::Literal(Literal::boolean(true)))
}

/// The comparison operator of a property-pair shape.
#[derive(Debug, Clone, Copy)]
enum CmpKind {
    Lt,
    Le,
    Gt,
    Ge,
}

/// "`x OP y` does *not* hold", robust to incomparable values:
/// `COALESCE(!(x OP y), true)`.
fn not_cmp(x: Expr, y: Expr, kind: CmpKind) -> Expr {
    let (x, y) = (Box::new(x), Box::new(y));
    let cmp = match kind {
        CmpKind::Lt => Expr::Lt(x, y),
        CmpKind::Le => Expr::Le(x, y),
        CmpKind::Gt => Expr::Gt(x, y),
        CmpKind::Ge => Expr::Ge(x, y),
    };
    Expr::Coalesce(vec![cmp.not(), true_expr()])
}

impl<'s> Translator<'s> {
    fn new(schema: &'s Schema) -> Self {
        Translator { schema, counter: 0 }
    }

    fn fresh(&mut self, base: &str) -> String {
        self.counter += 1;
        format!("{base}_{}", self.counter)
    }

    /// The pattern enumerating all nodes `N(G)` into `?{v}`.
    fn all_nodes(&mut self, v: &str) -> Pattern {
        let (a, b, c, d) = (
            self.fresh("np"),
            self.fresh("no"),
            self.fresh("ns"),
            self.fresh("np"),
        );
        let out_subj = Pattern::Bgp(vec![TriplePattern::new(var(v), var(&a), var(&b))]);
        let out_obj = Pattern::Bgp(vec![TriplePattern::new(var(&c), var(&d), var(v))]);
        sub(sel_distinct(
            vec![proj_var(v)],
            Pattern::Union(Box::new(out_subj), Box::new(out_obj)),
        ))
    }

    // --- Lemma 5.1: Q_E -------------------------------------------------

    /// `Q_E(?t, ?s, ?p, ?o, ?h)`.
    fn q_path(&mut self, path: &PathExpr) -> Select {
        let out = vec![
            proj_var("t"),
            proj_var("s"),
            proj_var("p"),
            proj_var("o"),
            proj_var("h"),
        ];
        match path {
            PathExpr::Prop(p) => sel(
                vec![
                    rename("s", "t"),
                    proj_var("s"),
                    Projection::Const(Term::Iri(p.clone()), "p".into()),
                    proj_var("o"),
                    rename("o", "h"),
                ],
                Pattern::Bgp(vec![TriplePattern::new(
                    var("s"),
                    VarOrTerm::Term(Term::Iri(p.clone())),
                    var("o"),
                )]),
            ),
            // Remark 6.3 extension: any property outside the excluded set.
            PathExpr::NegProp(excluded) => {
                let scan = Pattern::Bgp(vec![TriplePattern::new(var("s"), var("p"), var("o"))]);
                let pattern = if excluded.is_empty() {
                    scan
                } else {
                    scan.filter(Expr::In(
                        Box::new(Expr::var("p")),
                        excluded.iter().map(|p| Term::Iri(p.clone())).collect(),
                        true,
                    ))
                };
                sel(
                    vec![
                        rename("s", "t"),
                        proj_var("s"),
                        proj_var("p"),
                        proj_var("o"),
                        rename("o", "h"),
                    ],
                    pattern,
                )
            }
            PathExpr::Inverse(inner) => {
                let q1 = self.q_path(inner);
                sel(
                    vec![
                        rename("h", "t"),
                        proj_var("s"),
                        proj_var("p"),
                        proj_var("o"),
                        rename("t", "h"),
                    ],
                    sub(q1),
                )
            }
            PathExpr::Alt(e1, e2) => {
                let q1 = self.q_path(e1);
                let q2 = self.q_path(e2);
                sel(out, Pattern::Union(Box::new(sub(q1)), Box::new(sub(q2))))
            }
            PathExpr::ZeroOrOne(inner) => {
                let q1 = self.q_path(inner);
                let identity = self.identity_rows();
                sel(out, Pattern::Union(Box::new(sub(q1)), Box::new(identity)))
            }
            PathExpr::Seq(e1, e2) => {
                let m = self.fresh("m");
                let q1 = self.q_path(e1);
                let q2 = self.q_path(e2);
                // Edge inside the E1 part: Q_E1 rows whose head ?m reaches
                // ?h via E2.
                let part1 = Pattern::Join(
                    Box::new(sub(sel(
                        vec![
                            proj_var("t"),
                            proj_var("s"),
                            proj_var("p"),
                            proj_var("o"),
                            rename("h", &m),
                        ],
                        sub(q1),
                    ))),
                    Box::new(Pattern::Path {
                        subject: var(&m),
                        path: (**e2).clone(),
                        object: var("h"),
                    }),
                );
                // Edge inside the E2 part.
                let part2 = Pattern::Join(
                    Box::new(Pattern::Path {
                        subject: var("t"),
                        path: (**e1).clone(),
                        object: var(&m),
                    }),
                    Box::new(sub(sel(
                        vec![
                            rename("t", &m),
                            proj_var("s"),
                            proj_var("p"),
                            proj_var("o"),
                            proj_var("h"),
                        ],
                        sub(q2),
                    ))),
                );
                sel(out, Pattern::Union(Box::new(part1), Box::new(part2)))
            }
            PathExpr::ZeroOrMore(inner) => {
                let (x1, x2) = (self.fresh("x"), self.fresh("x"));
                let q1 = self.q_path(inner);
                let star: PathExpr = (**inner).clone().star();
                // An E1-edge (x1 → x2) with ?t →* x1 and x2 →* ?h.
                let edge = join_all(vec![
                    Pattern::Path {
                        subject: var("t"),
                        path: star.clone(),
                        object: var(&x1),
                    },
                    sub(sel(
                        vec![
                            rename("t", &x1),
                            proj_var("s"),
                            proj_var("p"),
                            proj_var("o"),
                            rename("h", &x2),
                        ],
                        sub(q1),
                    )),
                    Pattern::Path {
                        subject: var(&x2),
                        path: star,
                        object: var("h"),
                    },
                ]);
                let identity = self.identity_rows();
                sel(out, Pattern::Union(Box::new(edge), Box::new(identity)))
            }
        }
    }

    /// `(?v AS ?t) (?v AS ?h)` over all nodes — the identity rows of
    /// nullable paths (with `?s ?p ?o` unbound).
    fn identity_rows(&mut self) -> Pattern {
        let v = self.fresh("v");
        let nodes = self.all_nodes(&v);
        sub(sel(vec![rename(&v, "t"), rename(&v, "h")], nodes))
    }

    // --- CQ_φ -----------------------------------------------------------

    /// `CQ_φ(?v)`: all `v ∈ N(G)` with `H, G, v ⊨ φ`.
    fn cq(&mut self, shape: &Nnf) -> Select {
        let pattern = self.cq_pattern(shape);
        sel_distinct(vec![proj_var("v")], pattern)
    }

    /// The conforming-node set of `shape`, renamed to bind `?{out}`.
    fn cq_as(&mut self, shape: &Nnf, out: &str) -> Pattern {
        let q = self.cq(shape);
        if out == "v" {
            sub(q)
        } else {
            sub(sel(vec![rename("v", out)], sub(q)))
        }
    }

    fn cq_pattern(&mut self, shape: &Nnf) -> Pattern {
        match shape {
            Nnf::True => self.all_nodes("v"),
            Nnf::False => Pattern::Filter(Box::new(Pattern::Unit), false_expr()),
            Nnf::HasShape(name) => {
                let def = Nnf::from_shape(&self.schema.def(name));
                self.cq_pattern(&def)
            }
            Nnf::NotHasShape(name) => {
                let def = Nnf::from_negated_shape(&self.schema.def(name));
                self.cq_pattern(&def)
            }
            Nnf::Test(t) => {
                let nodes = self.all_nodes("v");
                nodes.filter(test_expr(t, "v"))
            }
            Nnf::NotTest(t) => {
                let nodes = self.all_nodes("v");
                // Errors count as "test not satisfied".
                nodes.filter(Expr::Coalesce(vec![test_expr(t, "v").not(), true_expr()]))
            }
            Nnf::HasValue(c) => {
                let nodes = self.all_nodes("v");
                nodes.filter(Expr::SameTerm(
                    Box::new(Expr::var("v")),
                    Box::new(Expr::Const(c.clone())),
                ))
            }
            Nnf::NotHasValue(c) => {
                let nodes = self.all_nodes("v");
                nodes.filter(
                    Expr::SameTerm(Box::new(Expr::var("v")), Box::new(Expr::Const(c.clone())))
                        .not(),
                )
            }
            Nnf::And(items) => {
                if items.is_empty() {
                    return self.all_nodes("v");
                }
                let parts: Vec<Pattern> = items.iter().map(|i| self.cq_as(i, "v")).collect();
                join_all(parts)
            }
            Nnf::Or(items) => {
                let parts: Vec<Pattern> = items.iter().map(|i| self.cq_as(i, "v")).collect();
                union_all(parts)
            }
            Nnf::Geq(n, e, inner) => self.cq_geq(*n, e, inner),
            Nnf::Leq(n, e, inner) => {
                let nodes = self.all_nodes("v");
                let too_many = self.cq_geq(n + 1, e, inner);
                Pattern::Minus(
                    Box::new(nodes),
                    Box::new(sub(sel_distinct(vec![proj_var("v")], too_many))),
                )
            }
            Nnf::ForAll(e, inner) => {
                let nodes = self.all_nodes("v");
                let x = self.fresh("x");
                let negated = inner.negated();
                let witness = Pattern::Join(
                    Box::new(Pattern::Path {
                        subject: var("v"),
                        path: e.clone(),
                        object: var(&x),
                    }),
                    Box::new(self.cq_as(&negated, &x)),
                );
                Pattern::Minus(
                    Box::new(nodes),
                    Box::new(sub(sel_distinct(vec![proj_var("v")], witness))),
                )
            }
            Nnf::Eq(PathOrId::Path(e), p) => {
                let x = self.fresh("x");
                let nodes = self.all_nodes("v");
                let e_not_p = Pattern::Minus(
                    Box::new(Pattern::Path {
                        subject: var("v"),
                        path: e.clone(),
                        object: var(&x),
                    }),
                    Box::new(prop_bgp("v", p, &x)),
                );
                let p_not_e = Pattern::Minus(
                    Box::new(prop_bgp("v", p, &x)),
                    Box::new(Pattern::Path {
                        subject: var("v"),
                        path: e.clone(),
                        object: var(&x),
                    }),
                );
                Pattern::Minus(
                    Box::new(Pattern::Minus(
                        Box::new(nodes),
                        Box::new(sub(sel_distinct(vec![proj_var("v")], e_not_p))),
                    )),
                    Box::new(sub(sel_distinct(vec![proj_var("v")], p_not_e))),
                )
            }
            Nnf::NotEq(PathOrId::Path(e), p) => {
                let x = self.fresh("x");
                let e_not_p = Pattern::Minus(
                    Box::new(Pattern::Path {
                        subject: var("v"),
                        path: e.clone(),
                        object: var(&x),
                    }),
                    Box::new(prop_bgp("v", p, &x)),
                );
                let p_not_e = Pattern::Minus(
                    Box::new(prop_bgp("v", p, &x)),
                    Box::new(Pattern::Path {
                        subject: var("v"),
                        path: e.clone(),
                        object: var(&x),
                    }),
                );
                union_all(vec![
                    sub(sel_distinct(vec![proj_var("v")], e_not_p)),
                    sub(sel_distinct(vec![proj_var("v")], p_not_e)),
                ])
            }
            Nnf::Eq(PathOrId::Id, p) => {
                let x = self.fresh("x");
                let has_loop = self_loop_bgp("v", p);
                let other = Pattern::Filter(
                    Box::new(prop_bgp("v", p, &x)),
                    Expr::SameTerm(Box::new(Expr::var(&x)), Box::new(Expr::var("v"))).not(),
                );
                Pattern::Minus(
                    Box::new(has_loop),
                    Box::new(sub(sel_distinct(vec![proj_var("v")], other))),
                )
            }
            Nnf::NotEq(PathOrId::Id, p) => {
                let nodes = self.all_nodes("v");
                let ok = self.cq_pattern(&Nnf::Eq(PathOrId::Id, p.clone()));
                Pattern::Minus(
                    Box::new(nodes),
                    Box::new(sub(sel_distinct(vec![proj_var("v")], ok))),
                )
            }
            Nnf::Disj(PathOrId::Path(e), p) => {
                let x = self.fresh("x");
                let nodes = self.all_nodes("v");
                let common = Pattern::Join(
                    Box::new(Pattern::Path {
                        subject: var("v"),
                        path: e.clone(),
                        object: var(&x),
                    }),
                    Box::new(prop_bgp("v", p, &x)),
                );
                Pattern::Minus(
                    Box::new(nodes),
                    Box::new(sub(sel_distinct(vec![proj_var("v")], common))),
                )
            }
            Nnf::NotDisj(PathOrId::Path(e), p) => {
                let x = self.fresh("x");
                let common = Pattern::Join(
                    Box::new(Pattern::Path {
                        subject: var("v"),
                        path: e.clone(),
                        object: var(&x),
                    }),
                    Box::new(prop_bgp("v", p, &x)),
                );
                sub(sel_distinct(vec![proj_var("v")], common))
            }
            Nnf::Disj(PathOrId::Id, p) => {
                let nodes = self.all_nodes("v");
                Pattern::Minus(
                    Box::new(nodes),
                    Box::new(sub(sel_distinct(
                        vec![proj_var("v")],
                        self_loop_bgp("v", p),
                    ))),
                )
            }
            Nnf::NotDisj(PathOrId::Id, p) => {
                sub(sel_distinct(vec![proj_var("v")], self_loop_bgp("v", p)))
            }
            Nnf::Closed(allowed) => {
                let nodes = self.all_nodes("v");
                let viol = self.closed_violation(allowed);
                Pattern::Minus(
                    Box::new(nodes),
                    Box::new(sub(sel_distinct(vec![proj_var("v")], viol))),
                )
            }
            Nnf::NotClosed(allowed) => {
                let viol = self.closed_violation(allowed);
                sub(sel_distinct(vec![proj_var("v")], viol))
            }
            Nnf::LessThan(e, p) => {
                let nodes = self.all_nodes("v");
                let viol = self.less_violation(e, p, false);
                Pattern::Minus(
                    Box::new(nodes),
                    Box::new(sub(sel_distinct(vec![proj_var("v")], viol))),
                )
            }
            Nnf::NotLessThan(e, p) => {
                let viol = self.less_violation(e, p, false);
                sub(sel_distinct(vec![proj_var("v")], viol))
            }
            Nnf::LessThanEq(e, p) => {
                let nodes = self.all_nodes("v");
                let viol = self.less_violation(e, p, true);
                Pattern::Minus(
                    Box::new(nodes),
                    Box::new(sub(sel_distinct(vec![proj_var("v")], viol))),
                )
            }
            Nnf::NotLessThanEq(e, p) => {
                let viol = self.less_violation(e, p, true);
                sub(sel_distinct(vec![proj_var("v")], viol))
            }
            Nnf::MoreThan(e, p) => {
                let nodes = self.all_nodes("v");
                let viol = self.cmp_violation(e, p, CmpKind::Gt);
                Pattern::Minus(
                    Box::new(nodes),
                    Box::new(sub(sel_distinct(vec![proj_var("v")], viol))),
                )
            }
            Nnf::NotMoreThan(e, p) => {
                let viol = self.cmp_violation(e, p, CmpKind::Gt);
                sub(sel_distinct(vec![proj_var("v")], viol))
            }
            Nnf::MoreThanEq(e, p) => {
                let nodes = self.all_nodes("v");
                let viol = self.cmp_violation(e, p, CmpKind::Ge);
                Pattern::Minus(
                    Box::new(nodes),
                    Box::new(sub(sel_distinct(vec![proj_var("v")], viol))),
                )
            }
            Nnf::NotMoreThanEq(e, p) => {
                let viol = self.cmp_violation(e, p, CmpKind::Ge);
                sub(sel_distinct(vec![proj_var("v")], viol))
            }
            Nnf::UniqueLang(e) => {
                let nodes = self.all_nodes("v");
                let viol = self.unique_lang_violation(e);
                Pattern::Minus(
                    Box::new(nodes),
                    Box::new(sub(sel_distinct(vec![proj_var("v")], viol))),
                )
            }
            Nnf::NotUniqueLang(e) => {
                let viol = self.unique_lang_violation(e);
                sub(sel_distinct(vec![proj_var("v")], viol))
            }
        }
    }

    /// `∃ x₁ … xₙ` pairwise-distinct `E`-values all conforming to ψ.
    fn cq_geq(&mut self, n: u32, e: &PathExpr, inner: &Nnf) -> Pattern {
        if n == 0 {
            return self.all_nodes("v");
        }
        let xs: Vec<String> = (0..n).map(|_| self.fresh("x")).collect();
        let mut parts = Vec::new();
        for x in &xs {
            parts.push(Pattern::Path {
                subject: var("v"),
                path: e.clone(),
                object: var(x),
            });
            if !matches!(inner, Nnf::True) {
                parts.push(self.cq_as(inner, x));
            }
        }
        let mut pattern = join_all(parts);
        for i in 0..xs.len() {
            for j in (i + 1)..xs.len() {
                pattern = pattern.filter(
                    Expr::SameTerm(Box::new(Expr::var(&xs[i])), Box::new(Expr::var(&xs[j]))).not(),
                );
            }
        }
        pattern
    }

    fn closed_violation(&mut self, allowed: &std::collections::BTreeSet<Iri>) -> Pattern {
        let (q, x) = (self.fresh("q"), self.fresh("x"));
        let triple = Pattern::Bgp(vec![TriplePattern::new(var("v"), var(&q), var(&x))]);
        triple.filter(Expr::In(
            Box::new(Expr::var(&q)),
            allowed.iter().map(|p| Term::Iri(p.clone())).collect(),
            true,
        ))
    }

    fn less_violation(&mut self, e: &PathExpr, p: &Iri, or_equal: bool) -> Pattern {
        self.cmp_violation(e, p, if or_equal { CmpKind::Le } else { CmpKind::Lt })
    }

    /// Pairs `(x ∈ ⟦E⟧(v), y ∈ ⟦p⟧(v))` violating the comparison.
    fn cmp_violation(&mut self, e: &PathExpr, p: &Iri, kind: CmpKind) -> Pattern {
        let (x, y) = (self.fresh("x"), self.fresh("y"));
        let pattern = Pattern::Join(
            Box::new(Pattern::Path {
                subject: var("v"),
                path: e.clone(),
                object: var(&x),
            }),
            Box::new(prop_bgp("v", p, &y)),
        );
        pattern.filter(not_cmp(Expr::var(&x), Expr::var(&y), kind))
    }

    fn unique_lang_violation(&mut self, e: &PathExpr) -> Pattern {
        let (x, y) = (self.fresh("x"), self.fresh("y"));
        let pattern = Pattern::Join(
            Box::new(Pattern::Path {
                subject: var("v"),
                path: e.clone(),
                object: var(&x),
            }),
            Box::new(Pattern::Path {
                subject: var("v"),
                path: e.clone(),
                object: var(&y),
            }),
        );
        pattern.filter(
            Expr::SameTerm(Box::new(Expr::var(&x)), Box::new(Expr::var(&y)))
                .not()
                .and(Expr::Lang(Box::new(Expr::var(&x))).eq(Expr::Lang(Box::new(Expr::var(&y)))))
                .and(
                    Expr::Lang(Box::new(Expr::var(&x)))
                        .neq(Expr::Const(Term::Literal(Literal::string("")))),
                ),
        )
    }

    // --- Proposition 5.3: Q_φ --------------------------------------------

    /// `Q_φ(?v, ?s, ?p, ?o)`.
    fn nq(&mut self, shape: &Nnf) -> Select {
        let out = vec![proj_var("v"), proj_var("s"), proj_var("p"), proj_var("o")];
        let out_from_t = vec![
            rename("t", "v"),
            proj_var("s"),
            proj_var("p"),
            proj_var("o"),
        ];
        match shape {
            // Empty-neighborhood cases.
            Nnf::True
            | Nnf::False
            | Nnf::Test(_)
            | Nnf::NotTest(_)
            | Nnf::HasValue(_)
            | Nnf::NotHasValue(_)
            | Nnf::Closed(_)
            | Nnf::Disj(_, _)
            | Nnf::LessThan(_, _)
            | Nnf::LessThanEq(_, _)
            | Nnf::MoreThan(_, _)
            | Nnf::MoreThanEq(_, _)
            | Nnf::UniqueLang(_) => {
                sel(out, Pattern::Filter(Box::new(Pattern::Unit), false_expr()))
            }

            Nnf::HasShape(name) => {
                let def = Nnf::from_shape(&self.schema.def(name));
                self.nq(&def)
            }
            Nnf::NotHasShape(name) => {
                let def = Nnf::from_negated_shape(&self.schema.def(name));
                self.nq(&def)
            }

            Nnf::And(items) | Nnf::Or(items) => {
                let guard = self.cq_as(shape, "v");
                let branches: Vec<Pattern> = items.iter().map(|i| sub(self.nq(i))).collect();
                sel(
                    out,
                    Pattern::Join(Box::new(guard), Box::new(union_all(branches))),
                )
            }

            Nnf::Geq(_, e, inner) => self.nq_quantifier(shape, e, inner, true),
            Nnf::Leq(_, e, inner) => {
                let negated = inner.negated();
                self.nq_quantifier(shape, e, &negated, true)
            }
            Nnf::ForAll(e, inner) => self.nq_quantifier(shape, e, inner, false),

            Nnf::Eq(PathOrId::Path(e), p) => {
                let guard = self.cq_t(shape);
                let union_path = e.clone().or(PathExpr::Prop(p.clone()));
                let q_e = self.q_path(&union_path);
                sel(
                    out_from_t,
                    Pattern::Join(Box::new(guard), Box::new(sub(q_e))),
                )
            }
            Nnf::Eq(PathOrId::Id, p) | Nnf::NotDisj(PathOrId::Id, p) => {
                let guard = self.cq_as(shape, "v");
                sel(
                    vec![
                        proj_var("v"),
                        rename("v", "s"),
                        Projection::Const(Term::Iri(p.clone()), "p".into()),
                        rename("v", "o"),
                    ],
                    Pattern::Join(Box::new(guard), Box::new(self_loop_bgp("v", p))),
                )
            }
            Nnf::NotEq(PathOrId::Path(e), p) => {
                let guard = self.cq_t(shape);
                let q_e = self.q_path(e);
                let q_p = self.q_path(&PathExpr::Prop(p.clone()));
                let e_side = Pattern::Minus(Box::new(sub(q_e)), Box::new(prop_bgp("t", p, "h")));
                let p_side = Pattern::Minus(
                    Box::new(sub(q_p)),
                    Box::new(Pattern::Path {
                        subject: var("t"),
                        path: e.clone(),
                        object: var("h"),
                    }),
                );
                sel(
                    out_from_t,
                    Pattern::Join(
                        Box::new(guard),
                        Box::new(Pattern::Union(Box::new(e_side), Box::new(p_side))),
                    ),
                )
            }
            Nnf::NotEq(PathOrId::Id, p) => {
                let guard = self.cq_as(shape, "v");
                let o = self.fresh("o");
                let non_loop = Pattern::Filter(
                    Box::new(prop_bgp("v", p, &o)),
                    Expr::SameTerm(Box::new(Expr::var(&o)), Box::new(Expr::var("v"))).not(),
                );
                sel(
                    vec![
                        proj_var("v"),
                        rename("v", "s"),
                        Projection::Const(Term::Iri(p.clone()), "p".into()),
                        rename(&o, "o"),
                    ],
                    Pattern::Join(Box::new(guard), Box::new(non_loop)),
                )
            }
            Nnf::NotDisj(PathOrId::Path(e), p) => {
                let guard = self.cq_t(shape);
                let q_e = self.q_path(e);
                let q_p = self.q_path(&PathExpr::Prop(p.clone()));
                let e_side = Pattern::Join(Box::new(sub(q_e)), Box::new(prop_bgp("t", p, "h")));
                let p_side = Pattern::Join(
                    Box::new(sub(q_p)),
                    Box::new(Pattern::Path {
                        subject: var("t"),
                        path: e.clone(),
                        object: var("h"),
                    }),
                );
                sel(
                    out_from_t,
                    Pattern::Join(
                        Box::new(guard),
                        Box::new(Pattern::Union(Box::new(e_side), Box::new(p_side))),
                    ),
                )
            }
            Nnf::NotLessThan(e, p) => self.nq_not_cmp(shape, e, p, CmpKind::Lt),
            Nnf::NotLessThanEq(e, p) => self.nq_not_cmp(shape, e, p, CmpKind::Le),
            Nnf::NotMoreThan(e, p) => self.nq_not_cmp(shape, e, p, CmpKind::Gt),
            Nnf::NotMoreThanEq(e, p) => self.nq_not_cmp(shape, e, p, CmpKind::Ge),
            Nnf::NotUniqueLang(e) => {
                let guard = self.cq_t(shape);
                let q_e = self.q_path(e);
                let h2 = self.fresh("h");
                let pair = Pattern::Join(
                    Box::new(sub(q_e)),
                    Box::new(Pattern::Path {
                        subject: var("t"),
                        path: e.clone(),
                        object: var(&h2),
                    }),
                );
                let clash = pair.filter(
                    Expr::SameTerm(Box::new(Expr::var("h")), Box::new(Expr::var(&h2)))
                        .not()
                        .and(
                            Expr::Lang(Box::new(Expr::var("h")))
                                .eq(Expr::Lang(Box::new(Expr::var(&h2)))),
                        )
                        .and(
                            Expr::Lang(Box::new(Expr::var("h")))
                                .neq(Expr::Const(Term::Literal(Literal::string("")))),
                        ),
                );
                sel(out_from_t, Pattern::Join(Box::new(guard), Box::new(clash)))
            }
            Nnf::NotClosed(allowed) => {
                let guard = self.cq_as(shape, "v");
                let (q, x) = (self.fresh("q"), self.fresh("x"));
                let triple = Pattern::Bgp(vec![TriplePattern::new(var("v"), var(&q), var(&x))]);
                let outside = triple.filter(Expr::In(
                    Box::new(Expr::var(&q)),
                    allowed.iter().map(|p| Term::Iri(p.clone())).collect(),
                    true,
                ));
                sel(
                    vec![
                        proj_var("v"),
                        rename("v", "s"),
                        rename(&q, "p"),
                        rename(&x, "o"),
                    ],
                    Pattern::Join(Box::new(guard), Box::new(outside)),
                )
            }
        }
    }

    /// `CQ_φ` rebound to `?t` (the focus-node guard of the quantifier and
    /// pair cases).
    fn cq_t(&mut self, shape: &Nnf) -> Pattern {
        self.cq_as(shape, "t")
    }

    /// The shared shape of the three quantifier cases: traced `E`-paths to
    /// qualifying endpoints, plus the endpoints' own neighborhoods.
    /// `endpoint` is ψ for `≥`/`∀` and ¬ψ for `≤`; `guard_endpoint` adds
    /// the endpoint-conformance requirement on the path branch (absent for
    /// `∀`, where every endpoint qualifies).
    fn nq_quantifier(
        &mut self,
        shape: &Nnf,
        e: &PathExpr,
        endpoint: &Nnf,
        guard_endpoint: bool,
    ) -> Select {
        let guard = self.cq_t(shape);
        let q_e = self.q_path(e);
        // Branch 1: the traced path triples.
        let mut branch1_parts = vec![guard.clone(), sub(q_e)];
        if guard_endpoint && !matches!(endpoint, Nnf::True) {
            branch1_parts.push(self.cq_as(endpoint, "h"));
        }
        let branch1 = join_all(branch1_parts);
        // Branch 2: the endpoints' neighborhoods.
        let inner_nq = self.nq(endpoint);
        let endpoint_neighborhood = sub(sel(
            vec![
                rename("v", "h"),
                proj_var("s"),
                proj_var("p"),
                proj_var("o"),
            ],
            sub(inner_nq),
        ));
        let branch2 = join_all(vec![
            guard,
            Pattern::Path {
                subject: var("t"),
                path: e.clone(),
                object: var("h"),
            },
            endpoint_neighborhood,
        ]);
        sel(
            vec![
                rename("t", "v"),
                proj_var("s"),
                proj_var("p"),
                proj_var("o"),
            ],
            Pattern::Union(Box::new(branch1), Box::new(branch2)),
        )
    }

    fn nq_not_cmp(&mut self, shape: &Nnf, e: &PathExpr, p: &Iri, kind: CmpKind) -> Select {
        let guard = self.cq_t(shape);
        let h2 = self.fresh("h");
        let q_e = self.q_path(e);
        let q_p = self.q_path(&PathExpr::Prop(p.clone()));
        // E-paths to x (= ?h) with a violating p-value ?h2.
        let e_side = Pattern::Join(Box::new(sub(q_e)), Box::new(prop_bgp("t", p, &h2)))
            .filter(not_cmp(Expr::var("h"), Expr::var(&h2), kind));
        // p-triples to y (= ?h) with a violating E-value ?h2.
        let p_side = Pattern::Join(
            Box::new(sub(q_p)),
            Box::new(Pattern::Path {
                subject: var("t"),
                path: e.clone(),
                object: var(&h2),
            }),
        )
        .filter(not_cmp(Expr::var(&h2), Expr::var("h"), kind));
        sel(
            vec![
                rename("t", "v"),
                proj_var("s"),
                proj_var("p"),
                proj_var("o"),
            ],
            Pattern::Join(
                Box::new(guard),
                Box::new(Pattern::Union(Box::new(e_side), Box::new(p_side))),
            ),
        )
    }
}

fn prop_bgp(s: &str, p: &Iri, o: &str) -> Pattern {
    Pattern::Bgp(vec![TriplePattern::new(
        var(s),
        VarOrTerm::Term(Term::Iri(p.clone())),
        var(o),
    )])
}

fn self_loop_bgp(v: &str, p: &Iri) -> Pattern {
    Pattern::Bgp(vec![TriplePattern::new(
        var(v),
        VarOrTerm::Term(Term::Iri(p.clone())),
        var(v),
    )])
}

/// A SPARQL filter expression equivalent to a node test on `?{v}`.
fn test_expr(test: &NodeTest, v: &str) -> Expr {
    let var_e = || Box::new(Expr::var(v));
    match test {
        NodeTest::Kind(kind) => {
            let is_iri = Expr::IsIri(var_e());
            let is_blank = Expr::IsBlank(var_e());
            let is_lit = Expr::IsLiteral(var_e());
            match kind {
                NodeKind::Iri => is_iri,
                NodeKind::BlankNode => is_blank,
                NodeKind::Literal => is_lit,
                NodeKind::BlankNodeOrIri => is_blank.or(is_iri),
                NodeKind::BlankNodeOrLiteral => is_blank.or(is_lit),
                NodeKind::IriOrLiteral => is_iri.or(is_lit),
            }
        }
        NodeTest::Datatype(dt) => Expr::Datatype(var_e()).eq(Expr::Const(Term::Iri(dt.clone()))),
        NodeTest::MinExclusive(b) => Expr::Gt(var_e(), lit_expr(b)),
        NodeTest::MinInclusive(b) => Expr::Ge(var_e(), lit_expr(b)),
        NodeTest::MaxExclusive(b) => Expr::Lt(var_e(), lit_expr(b)),
        NodeTest::MaxInclusive(b) => Expr::Le(var_e(), lit_expr(b)),
        NodeTest::MinLength(n) => Expr::Ge(
            Box::new(Expr::StrLen(Box::new(Expr::Str(var_e())))),
            Box::new(Expr::Const(Term::Literal(Literal::integer(*n as i64)))),
        ),
        NodeTest::MaxLength(n) => Expr::Le(
            Box::new(Expr::StrLen(Box::new(Expr::Str(var_e())))),
            Box::new(Expr::Const(Term::Literal(Literal::integer(*n as i64)))),
        ),
        NodeTest::Pattern(p) => Expr::Regex(
            Box::new(Expr::Str(var_e())),
            p.source().to_owned(),
            p.flags().to_owned(),
        ),
        NodeTest::Language(range) => Expr::LangMatches(
            Box::new(Expr::Lang(var_e())),
            Box::new(Expr::Const(Term::Literal(Literal::string(range.clone())))),
        ),
    }
}

fn lit_expr(l: &Literal) -> Box<Expr> {
    Box::new(Expr::Const(Term::Literal(l.clone())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::neighborhood::neighborhood_term;
    use shapefrag_rdf::Triple;
    use shapefrag_shacl::validator::Context;

    fn iri(n: &str) -> Iri {
        Iri::new(format!("http://e/{n}"))
    }

    fn term(n: &str) -> Term {
        Term::iri(format!("http://e/{n}"))
    }

    fn t(s: &str, p: &str, o: &str) -> Triple {
        Triple::new(term(s), iri(p), term(o))
    }

    fn p(n: &str) -> PathExpr {
        PathExpr::Prop(iri(n))
    }

    fn conforming_via_sparql(g: &Graph, shape: &Shape) -> Vec<Term> {
        let q = conformance_query(&Schema::empty(), shape);
        let mut out: Vec<Term> = eval_select(g, &q, &EvalConfig::indexed())
            .unwrap()
            .into_iter()
            .filter_map(|mut b| b.remove("v"))
            .collect();
        out.sort();
        out.dedup();
        out
    }

    fn conforming_native(g: &Graph, shape: &Shape) -> Vec<Term> {
        let schema = Schema::empty();
        let mut ctx = Context::new(&schema, g);
        let mut out: Vec<Term> = g
            .node_ids()
            .into_iter()
            .filter(|&v| ctx.conforms(v, shape))
            .map(|v| g.term(v).clone())
            .collect();
        out.sort();
        out
    }

    fn assert_cq_agrees(g: &Graph, shape: &Shape) {
        assert_eq!(
            conforming_via_sparql(g, shape),
            conforming_native(g, shape),
            "CQ disagreement for {shape}"
        );
    }

    fn assert_nq_agrees(g: &Graph, shape: &Shape) {
        let schema = Schema::empty();
        let via_sparql =
            neighborhoods_via_sparql(&schema, g, shape, &EvalConfig::indexed()).unwrap();
        let mut ctx = Context::new(&schema, g);
        for (node, sparql_nbh) in &via_sparql {
            let native = neighborhood_term(&mut ctx, node, shape);
            assert_eq!(
                sparql_nbh, &native,
                "neighborhood disagreement for {shape} at {node}"
            );
        }
        // And conversely: every node with a non-empty native neighborhood
        // appears.
        for v in g.node_ids() {
            let node = g.term(v).clone();
            let native = neighborhood_term(&mut ctx, &node, shape);
            if !native.is_empty() {
                let found = via_sparql.iter().find(|(n, _)| n == &node);
                assert!(
                    found.is_some_and(|(_, nbh)| nbh == &native),
                    "missing/incorrect SPARQL neighborhood for {shape} at {node}"
                );
            }
        }
    }

    fn sample_graph() -> Graph {
        Graph::from_triples([
            t("p1", "author", "alice"),
            t("alice", "type", "Student"),
            t("p1", "author", "bob"),
            t("bob", "type", "Professor"),
            t("p1", "type", "Paper"),
            t("p2", "type", "Paper"),
            t("p2", "author", "bob"),
            t("v", "friend", "x"),
            t("v", "colleague", "x"),
            t("v", "friend", "y"),
            t("loop", "p", "loop"),
            t("loop", "p", "other"),
        ])
    }

    #[test]
    fn path_query_simple_property() {
        let g = sample_graph();
        let q = path_query(&p("author"));
        let rows = eval_select(&g, &q, &EvalConfig::indexed()).unwrap();
        // Three author triples, each its own (t, s, p, o, h) row.
        assert_eq!(rows.len(), 3);
        for b in &rows {
            assert_eq!(b["t"], b["s"]);
            assert_eq!(b["h"], b["o"]);
            assert_eq!(b["p"], Term::Iri(iri("author")));
        }
    }

    #[test]
    fn path_query_sequence_and_star() {
        let g = Graph::from_triples([
            t("a", "q", "b"),
            t("b", "r", "c"),
            t("c", "q", "d"),
            t("d", "r", "e"),
        ]);
        // (q/r)* — the Example 5.2 query shape.
        let e = p("q").then(p("r")).star();
        let q = path_query(&e);
        let rows = eval_select(&g, &q, &EvalConfig::indexed()).unwrap();
        // Edge rows for t=a,h=e must include all four triples.
        let sub = bindings_to_graph(
            &rows
                .iter()
                .filter(|b| b.get("t") == Some(&term("a")) && b.get("h") == Some(&term("e")))
                .cloned()
                .collect::<Vec<_>>(),
            "s",
            "p",
            "o",
        );
        assert_eq!(sub.len(), 4);
        // Identity rows exist: (a, a) with unbound s/p/o.
        assert!(rows.iter().any(|b| b.get("t") == Some(&term("a"))
            && b.get("h") == Some(&term("a"))
            && !b.contains_key("s")));
    }

    #[test]
    fn path_query_inverse() {
        let g = sample_graph();
        let q = path_query(&p("author").inverse());
        let rows = eval_select(&g, &q, &EvalConfig::indexed()).unwrap();
        // t is the author, h the paper; underlying triple stays forward.
        let row = rows
            .iter()
            .find(|b| b.get("t") == Some(&term("alice")))
            .unwrap();
        assert_eq!(row["h"], term("p1"));
        assert_eq!(row["s"], term("p1"));
        assert_eq!(row["o"], term("alice"));
    }

    #[test]
    fn cq_matches_native_conformance() {
        let g = sample_graph();
        let shapes = vec![
            Shape::True,
            Shape::geq(1, p("author"), Shape::True),
            Shape::geq(
                1,
                p("author"),
                Shape::geq(1, p("type"), Shape::has_value(term("Student"))),
            ),
            Shape::geq(2, p("author"), Shape::True),
            Shape::leq(1, p("author"), Shape::True),
            Shape::leq(0, p("author"), Shape::True),
            Shape::for_all(p("author"), Shape::geq(1, p("type"), Shape::True)),
            Shape::geq(1, p("author"), Shape::True).not(),
            Shape::has_value(term("p1")),
            Shape::Disj(PathOrId::Path(p("friend")), iri("colleague")),
            Shape::Disj(PathOrId::Path(p("friend")), iri("colleague")).not(),
            Shape::Eq(PathOrId::Path(p("friend")), iri("colleague")),
            Shape::Eq(PathOrId::Id, iri("p")),
            Shape::Eq(PathOrId::Id, iri("p")).not(),
            Shape::Disj(PathOrId::Id, iri("p")),
            Shape::Disj(PathOrId::Id, iri("p")).not(),
            Shape::Closed([iri("type"), iri("author")].into()),
            Shape::Closed([iri("type"), iri("author")].into()).not(),
            Shape::UniqueLang(p("label")),
        ];
        for shape in &shapes {
            assert_cq_agrees(&g, shape);
        }
    }

    #[test]
    fn cq_less_than() {
        let mut g = Graph::new();
        for (s, a, b) in [("ok", 1, 5), ("bad", 9, 5), ("eq", 5, 5)] {
            g.insert(Triple::new(
                term(s),
                iri("start"),
                Term::Literal(Literal::integer(a)),
            ));
            g.insert(Triple::new(
                term(s),
                iri("end"),
                Term::Literal(Literal::integer(b)),
            ));
        }
        for shape in [
            Shape::LessThan(p("start"), iri("end")),
            Shape::LessThan(p("start"), iri("end")).not(),
            Shape::LessThanEq(p("start"), iri("end")),
            Shape::LessThanEq(p("start"), iri("end")).not(),
        ] {
            assert_cq_agrees(&g, &shape);
        }
    }

    #[test]
    fn cq_node_tests() {
        let mut g = sample_graph();
        g.insert(Triple::new(
            term("p1"),
            iri("pages"),
            Term::Literal(Literal::integer(12)),
        ));
        g.insert(Triple::new(
            term("p1"),
            iri("title"),
            Term::Literal(Literal::lang_string("Provenance", "en")),
        ));
        let shapes = vec![
            Shape::for_all(
                p("pages"),
                Shape::Test(NodeTest::Datatype(shapefrag_rdf::vocab::xsd::integer())),
            ),
            Shape::geq(
                1,
                p("pages"),
                Shape::Test(NodeTest::MinInclusive(Literal::integer(10))),
            ),
            Shape::geq(1, p("title"), Shape::Test(NodeTest::Language("en".into()))),
            Shape::geq(
                1,
                p("title"),
                Shape::Test(NodeTest::pattern("^Prov", "").unwrap()),
            ),
            Shape::Test(NodeTest::Kind(NodeKind::Iri)),
            Shape::Test(NodeTest::Kind(NodeKind::Literal)).not(),
            Shape::Test(NodeTest::MinLength(9)),
        ];
        for shape in &shapes {
            assert_cq_agrees(&g, shape);
        }
    }

    #[test]
    fn nq_matches_native_neighborhoods() {
        let g = sample_graph();
        let shapes = vec![
            Shape::geq(
                1,
                p("author"),
                Shape::geq(1, p("type"), Shape::has_value(term("Student"))),
            ),
            Shape::leq(
                1,
                p("author"),
                Shape::leq(0, p("type"), Shape::has_value(term("Student"))),
            ),
            Shape::for_all(p("author"), Shape::geq(1, p("type"), Shape::True)),
            Shape::Disj(PathOrId::Path(p("friend")), iri("colleague")).not(),
            Shape::Eq(PathOrId::Path(p("friend")), iri("colleague")).not(),
            Shape::Eq(PathOrId::Path(p("friend")), iri("colleague")),
            Shape::Eq(PathOrId::Id, iri("p")).not(),
            Shape::Disj(PathOrId::Id, iri("p")).not(),
            Shape::Closed([iri("type")].into()).not(),
            Shape::geq(1, p("author"), Shape::True).and(Shape::geq(
                1,
                p("type"),
                Shape::has_value(term("Paper")),
            )),
            Shape::geq(1, p("author"), Shape::True).or(Shape::geq(1, p("friend"), Shape::True)),
        ];
        for shape in &shapes {
            assert_nq_agrees(&g, shape);
        }
    }

    #[test]
    fn nq_with_complex_paths() {
        let g = Graph::from_triples([
            t("paper", "author", "ann"),
            t("ann", "type", "PhD"),
            t("PhD", "sub", "Student"),
            t("paper", "author", "bo"),
            t("bo", "type", "Student"),
        ]);
        let shape = Shape::geq(
            1,
            p("author"),
            Shape::geq(
                1,
                p("type").then(p("sub").star()),
                Shape::has_value(term("Student")),
            ),
        );
        assert_nq_agrees(&g, &shape);
    }

    #[test]
    fn nq_not_less_than() {
        let mut g = Graph::new();
        g.insert(Triple::new(
            term("v"),
            iri("e"),
            Term::Literal(Literal::integer(5)),
        ));
        g.insert(Triple::new(
            term("v"),
            iri("p"),
            Term::Literal(Literal::integer(3)),
        ));
        g.insert(Triple::new(
            term("v"),
            iri("p"),
            Term::Literal(Literal::integer(9)),
        ));
        assert_nq_agrees(&g, &Shape::LessThan(p("e"), iri("p")).not());
        assert_nq_agrees(&g, &Shape::LessThanEq(p("e"), iri("p")).not());
    }

    #[test]
    fn nq_not_unique_lang() {
        let mut g = Graph::new();
        for (lex, lang) in [("hi", "en"), ("hello", "en"), ("hallo", "de")] {
            g.insert(Triple::new(
                term("v"),
                iri("label"),
                Term::Literal(Literal::lang_string(lex, lang)),
            ));
        }
        assert_nq_agrees(&g, &Shape::UniqueLang(p("label")).not());
    }

    #[test]
    fn fragment_query_agrees_with_native_fragment() {
        let g = sample_graph();
        let shapes = vec![
            Shape::geq(
                1,
                p("author"),
                Shape::geq(1, p("type"), Shape::has_value(term("Student"))),
            ),
            Shape::Disj(PathOrId::Path(p("friend")), iri("colleague")).not(),
        ];
        let schema = Schema::empty();
        let via_sparql = fragment_via_sparql(&schema, &g, &shapes, &EvalConfig::indexed()).unwrap();
        let native = crate::fragment::fragment(&schema, &g, &shapes);
        assert_eq!(via_sparql, native);
    }

    #[test]
    fn example_5_6_friends_like_pingpong() {
        // ∀p.≥1 q.hasValue(c): "all my friends like ping-pong".
        let g = Graph::from_triples([
            t("me", "friend", "f1"),
            t("f1", "likes", "pingpong"),
            t("me", "friend", "f2"),
            t("f2", "likes", "pingpong"),
            t("f2", "likes", "chess"),
            t("you", "friend", "f3"),
            t("f3", "likes", "chess"),
        ]);
        let shape = Shape::for_all(
            p("friend"),
            Shape::geq(1, p("likes"), Shape::has_value(term("pingpong"))),
        );
        assert_cq_agrees(&g, &shape);
        assert_nq_agrees(&g, &shape);
        let schema = Schema::empty();
        let frag = fragment_via_sparql(&schema, &g, &[shape], &EvalConfig::indexed()).unwrap();
        // me conforms: friend edges + likes-pingpong edges. f3's owner fails.
        assert!(frag.contains(&t("me", "friend", "f1")));
        assert!(frag.contains(&t("f1", "likes", "pingpong")));
        assert!(!frag.contains(&t("you", "friend", "f3")));
        // Note f2's chess like is NOT in the neighborhood… it is, actually:
        // B(f2, ≥1 likes.hasValue(pingpong)) traces only pingpong paths.
        assert!(!frag.contains(&t("f2", "likes", "chess")));
    }

    #[test]
    fn generated_query_sizes_are_linear_ish() {
        // The printed query grows with the shape but stays bounded (the
        // linear-size claim of Prop 5.3, with counts in unary).
        let small =
            neighborhood_query(&Schema::empty(), &Shape::geq(1, p("a"), Shape::True)).to_string();
        let big = neighborhood_query(
            &Schema::empty(),
            &Shape::geq(
                1,
                p("a"),
                Shape::geq(1, p("b"), Shape::geq(1, p("c"), Shape::True)),
            ),
        )
        .to_string();
        assert!(small.len() < big.len());
        assert!(big.len() < 40 * small.len());
    }

    #[test]
    fn generated_queries_reparse() {
        // Corollary 5.5 queries print to concrete SPARQL that our parser
        // accepts and that evaluates identically.
        let g = sample_graph();
        let schema = Schema::empty();
        let shapes = [Shape::geq(
            1,
            p("author"),
            Shape::geq(1, p("type"), Shape::has_value(term("Student"))),
        )];
        let q = fragment_query(&schema, &shapes);
        let printed = q.to_string();
        let reparsed = shapefrag_sparql::parser::parse_select(&printed)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
        let r1 = eval_select(&g, &q, &EvalConfig::indexed()).unwrap();
        let r2 = eval_select(&g, &reparsed, &EvalConfig::indexed()).unwrap();
        let s1: std::collections::BTreeSet<_> = r1.into_iter().collect();
        let s2: std::collections::BTreeSet<_> = r2.into_iter().collect();
        assert_eq!(s1, s2);
    }
}
