//! Shape fragments (§4): subgraph retrieval via shapes.
//!
//! `Frag(G, S) = ⋃ { B(v, G, φ) | v ∈ N, φ ∈ S }` — the union of the
//! neighborhoods of all nodes for a set of *request shapes*. Since
//! neighborhoods are subgraphs of `G`, it suffices to range over `N(G)`.
//!
//! For a schema `H`, `Frag(G, H) = Frag(G, { φ ∧ τ | (s, φ, τ) ∈ H })`
//! (each shape conjoined with its target). The Conformance theorem
//! (Theorem 4.1) guarantees that `Frag(G, H)` still conforms to `H` when
//! `G` does and all targets are monotone.

use std::collections::BTreeSet;
use std::sync::Arc;

use shapefrag_govern::{EngineError, ExecCtx};
use shapefrag_rdf::{Graph, GraphAccess, TermId};
use shapefrag_shacl::validator::{ConformanceMemo, Context};
use shapefrag_shacl::{Nnf, Schema, Shape};

use crate::neighborhood::{
    collect_neighborhood_many, materialize, neighborhood_nnf_ids, IdTriples,
};

/// Computes the shape fragment `Frag(G, S)` for request shapes `S`.
pub fn fragment<G: GraphAccess>(schema: &Schema, graph: &G, shapes: &[Shape]) -> Graph {
    materialize(graph, &fragment_ids(schema, graph, shapes))
}

/// Computes `Frag(G, H)`: the fragment for a schema's request shapes
/// `{ φ ∧ τ | (s, φ, τ) ∈ H }`.
pub fn schema_fragment<G: GraphAccess>(schema: &Schema, graph: &G) -> Graph {
    fragment(schema, graph, &schema.request_shapes())
}

/// Id-triple form of [`fragment`]. Runs set-at-a-time: per request shape,
/// all graph nodes are decided in one batch (with a shared memo for
/// `hasShape` sub-shapes) and the conforming nodes' neighborhoods are
/// collected by the batched Table 2 collector.
pub fn fragment_ids<G: GraphAccess>(schema: &Schema, graph: &G, shapes: &[Shape]) -> IdTriples {
    let memo = Arc::new(ConformanceMemo::new());
    let mut ctx = Context::with_memo(schema, graph, memo);
    let nodes: Vec<TermId> = graph.node_ids().into_iter().collect();
    let mut out = IdTriples::default();
    for shape in shapes {
        let nnf = Nnf::from_shape(shape);
        let decisions = ctx.conforms_all_nnf(&nodes, &nnf);
        let conforming: Vec<TermId> = nodes
            .iter()
            .zip(decisions)
            .filter(|(_, ok)| *ok)
            .map(|(&v, _)| v)
            .collect();
        collect_neighborhood_many(&mut ctx, &conforming, &nnf, &mut out);
    }
    out
}

/// Resource-governed [`fragment`]: computes `Frag(G, S)` under a deadline /
/// step / memory / depth / cancellation governor, surfacing the first trip
/// as an [`EngineError`] instead of a silently incomplete fragment.
pub fn fragment_governed<G: GraphAccess>(
    schema: &Schema,
    graph: &G,
    shapes: &[Shape],
    exec: ExecCtx,
) -> Result<Graph, EngineError> {
    let memo = Arc::new(ConformanceMemo::new());
    let mut ctx = Context::with_memo(schema, graph, memo).with_exec(exec);
    let nodes: Vec<TermId> = graph.node_ids().into_iter().collect();
    let mut out = IdTriples::default();
    for shape in shapes {
        let nnf = Nnf::from_shape(shape);
        let decisions = ctx.conforms_all_nnf(&nodes, &nnf);
        if let Some(e) = ctx.take_fault() {
            return Err(e);
        }
        let conforming: Vec<TermId> = nodes
            .iter()
            .zip(decisions)
            .filter(|(_, ok)| *ok)
            .map(|(&v, _)| v)
            .collect();
        collect_neighborhood_many(&mut ctx, &conforming, &nnf, &mut out);
        if let Some(e) = ctx.take_fault() {
            return Err(e);
        }
    }
    Ok(materialize(graph, &out))
}

/// Resource-governed [`schema_fragment`].
pub fn schema_fragment_governed<G: GraphAccess>(
    schema: &Schema,
    graph: &G,
    exec: ExecCtx,
) -> Result<Graph, EngineError> {
    fragment_governed(schema, graph, &schema.request_shapes(), exec)
}

/// Per-node reference implementation of [`fragment_ids`] (one neighborhood
/// computation per (node, shape) pair); baseline for benchmarks and
/// agreement tests.
pub fn fragment_ids_per_node<G: GraphAccess>(
    schema: &Schema,
    graph: &G,
    shapes: &[Shape],
) -> IdTriples {
    let mut ctx = Context::new(schema, graph);
    let nodes = graph.node_ids();
    let mut out = IdTriples::default();
    for shape in shapes {
        let nnf = Nnf::from_shape(shape);
        for &v in &nodes {
            out.extend(neighborhood_nnf_ids(&mut ctx, v, &nnf));
        }
    }
    out
}

/// Parallel fragment computation: a thin wrapper over the cost-routed
/// work-stealing engine ([`crate::parallel::fragment_ids_par`]), kept for
/// source compatibility. Produces exactly the same fragment as
/// [`fragment`] — neighborhoods are independent per (node, shape) pair and
/// the id-triple union is order-free.
pub fn fragment_par<G: GraphAccess>(
    schema: &Schema,
    graph: &G,
    shapes: &[Shape],
    workers: usize,
) -> Graph {
    materialize(
        graph,
        &crate::parallel::fragment_ids_par(schema, graph, shapes, workers),
    )
}

/// The set of nodes conforming to a shape — a shape viewed as a unary query
/// (used when comparing with SPARQL and TPF).
pub fn conforming_nodes<G: GraphAccess>(
    schema: &Schema,
    graph: &G,
    shape: &Shape,
) -> BTreeSet<TermId> {
    let mut ctx = Context::new(schema, graph);
    graph
        .node_ids()
        .into_iter()
        .filter(|&v| ctx.conforms(v, shape))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use shapefrag_rdf::{Iri, Term, Triple};
    use shapefrag_shacl::path::PathExpr;
    use shapefrag_shacl::validator::validate;
    use shapefrag_shacl::ShapeDef;

    fn iri(n: &str) -> Iri {
        Iri::new(format!("http://e/{n}"))
    }

    fn term(n: &str) -> Term {
        Term::iri(format!("http://e/{n}"))
    }

    fn t(s: &str, p: &str, o: &str) -> Triple {
        Triple::new(term(s), iri(p), term(o))
    }

    fn p(n: &str) -> PathExpr {
        PathExpr::Prop(iri(n))
    }

    #[test]
    fn fragment_unions_neighborhoods_over_all_nodes() {
        let g = Graph::from_triples([
            t("p1", "author", "alice"),
            t("alice", "type", "Student"),
            t("p2", "author", "bob"),
            t("bob", "type", "Professor"),
            t("x", "unrelated", "y"),
        ]);
        let shape = Shape::geq(
            1,
            p("author"),
            Shape::geq(1, p("type"), Shape::has_value(term("Student"))),
        );
        let frag = fragment(&Schema::empty(), &g, &[shape]);
        let expected =
            Graph::from_triples([t("p1", "author", "alice"), t("alice", "type", "Student")]);
        assert_eq!(frag, expected);
    }

    #[test]
    fn example_1_3_schema_fragment_conforms() {
        let schema = Schema::new([ShapeDef::new(
            term("WorkshopShape"),
            Shape::geq(
                1,
                p("author"),
                Shape::geq(1, p("type"), Shape::has_value(term("Student"))),
            ),
            Shape::geq(1, p("type"), Shape::has_value(term("Paper"))),
        )])
        .unwrap();
        let g = Graph::from_triples([
            t("p1", "type", "Paper"),
            t("p1", "author", "alice"),
            t("alice", "type", "Student"),
            t("noise", "type", "Venue"),
        ]);
        assert!(validate(&schema, &g).conforms());
        let frag = schema_fragment(&schema, &g);
        // Conformance theorem: the fragment conforms too.
        assert!(validate(&schema, &frag).conforms());
        // And it contains the target triple plus the neighborhood.
        assert!(frag.contains(&t("p1", "type", "Paper")));
        assert!(frag.contains(&t("p1", "author", "alice")));
        assert!(frag.contains(&t("alice", "type", "Student")));
        assert!(!frag.contains(&t("noise", "type", "Venue")));
    }

    #[test]
    fn example_4_3_non_monotone_converse_fails() {
        // φ = ≤0 p.⊤ on G = {(a,p,b)}: fragment is empty, a conforms in
        // the fragment but not in G.
        let g = Graph::from_triples([t("a", "p", "b")]);
        let shape = Shape::leq(0, p("p"), Shape::True);
        let frag = fragment(&Schema::empty(), &g, std::slice::from_ref(&shape));
        assert!(frag.is_empty());
        let schema = Schema::empty();
        let mut ctx_g = Context::new(&schema, &g);
        let a = g.id_of(&term("a")).unwrap();
        assert!(!ctx_g.conforms(a, &shape));
        // In the (empty) fragment, a trivially conforms.
        let mut f2 = frag.clone();
        let a_f = f2.intern(&term("a"));
        let mut ctx_f = Context::new(&schema, &f2);
        assert!(ctx_f.conforms(a_f, &shape));
    }

    #[test]
    fn corollary_4_2_sufficiency_for_fragments() {
        // Every conforming node still conforms in the fragment.
        let g = Graph::from_triples([
            t("a", "p", "b"),
            t("b", "p", "c"),
            t("c", "q", "d"),
            t("e", "p", "a"),
        ]);
        let shapes = vec![
            Shape::geq(1, p("p").then(p("p")), Shape::True),
            Shape::for_all(p("q"), Shape::True),
        ];
        let schema = Schema::empty();
        let frag = fragment(&schema, &g, &shapes);
        let mut ctx_g = Context::new(&schema, &g);
        for shape in &shapes {
            let conforming: Vec<TermId> = g
                .node_ids()
                .into_iter()
                .filter(|&v| ctx_g.conforms(v, shape))
                .collect();
            for v in conforming {
                let vt = g.term(v).clone();
                let mut frag2 = frag.clone();
                let vf = frag2.intern(&vt);
                let mut ctx_f = Context::new(&schema, &frag2);
                assert!(
                    ctx_f.conforms(vf, shape),
                    "{vt} lost conformance to {shape}"
                );
            }
        }
    }

    #[test]
    fn parallel_fragment_equals_sequential() {
        let mut triples = Vec::new();
        for i in 0..40 {
            triples.push(t(&format!("n{i}"), "p", &format!("n{}", (i + 1) % 40)));
            if i % 3 == 0 {
                triples.push(t(&format!("n{i}"), "type", "C"));
            }
        }
        let g = Graph::from_triples(triples);
        let shapes = vec![
            Shape::geq(
                1,
                p("p"),
                Shape::geq(1, p("type"), Shape::has_value(term("C"))),
            ),
            Shape::for_all(p("type"), Shape::has_value(term("C"))),
        ];
        let schema = Schema::empty();
        let seq = fragment(&schema, &g, &shapes);
        let par = fragment_par(&schema, &g, &shapes, 4);
        assert_eq!(seq, par);
    }

    #[test]
    fn conforming_nodes_as_query() {
        let g = Graph::from_triples([t("a", "p", "x"), t("b", "q", "x")]);
        let nodes = conforming_nodes(&Schema::empty(), &g, &Shape::geq(1, p("p"), Shape::True));
        assert_eq!(nodes.len(), 1);
        assert_eq!(g.term(*nodes.iter().next().unwrap()), &term("a"));
    }
}
