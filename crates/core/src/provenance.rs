//! High-level provenance API: why and why-not explanations.
//!
//! Thanks to negation (Remark 3.7), the neighborhood mechanism yields both
//! kinds of provenance: if `v` conforms to φ, `B(v, G, φ)` explains *why*;
//! if it does not, `B(v, G, ¬φ)` explains *why not*.

use shapefrag_rdf::{Graph, Term};
use shapefrag_shacl::validator::Context;
use shapefrag_shacl::{Schema, Shape};

use crate::neighborhood::neighborhood_term;

/// Greedily prunes a neighborhood to an inclusion-minimal *witness*: a
/// subgraph of `B(v, G, φ)` in which `v` still conforms to φ and from which
/// no single triple can be removed without breaking conformance.
///
/// Remark 3.6 of the paper observes that `B(v, G, φ)` is deliberately
/// **not** minimal — e.g. `≥1 a.⊤` keeps *all* `a`-triples because choosing
/// one would be nondeterministic. This utility makes that choice
/// deterministically (triples are tried in sorted order), which is useful
/// for debugging ("show me one reason") but, unlike the neighborhood, the
/// result is not canonical provenance: different orders give different
/// minimal witnesses, and for non-monotone shapes a witness need not stay
/// sufficient when other triples of `G` are added back.
///
/// Returns `None` when `v` does not conform to φ in `G`.
pub fn minimal_witness(
    schema: &Schema,
    graph: &Graph,
    node: &Term,
    shape: &Shape,
) -> Option<Graph> {
    let mut ctx = Context::new(schema, graph);
    if !ctx.conforms_term(node, shape) {
        return None;
    }
    let mut current = neighborhood_term(&mut ctx, node, shape);
    let mut triples: Vec<_> = current.iter().collect();
    triples.sort();
    for t in triples {
        let mut candidate = current.clone();
        candidate.remove(&t);
        let mut cctx = Context::new(schema, &candidate);
        if cctx.conforms_term(node, shape) {
            current = candidate;
        }
    }
    Some(current)
}

/// Describes a node through the lens of a schema (the "DESCRIBE using
/// shapes" application sketched in §7 and the SPARQL 1.2 discussion the
/// paper cites): the union of `B(node, G, φ)` over every shape definition
/// whose shape the node conforms to, i.e. everything the schema considers
/// relevant about this node.
///
/// Unlike plain `DESCRIBE` (all incident triples), the result is exactly
/// the evidence the schema's constraints inspect — and by Sufficiency it is
/// self-contained: the node still conforms to each of those shapes within
/// the returned subgraph.
pub fn describe(schema: &Schema, graph: &Graph, node: &Term) -> Graph {
    let mut ctx = Context::new(schema, graph);
    let mut out = Graph::new();
    for def in schema.iter() {
        let shape = Shape::HasShape(def.name.clone());
        if ctx.conforms_term(node, &shape) {
            out.extend(&neighborhood_term(&mut ctx, node, &shape));
        }
    }
    out
}

/// A provenance verdict for one (node, shape) query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Explanation {
    /// The node conforms; the subgraph shows why (Sufficiency: the node
    /// still conforms when the graph is restricted to any superset of it).
    Why(Graph),
    /// The node does not conform; the subgraph is the neighborhood of ¬φ
    /// and shows why not.
    WhyNot(Graph),
}

impl Explanation {
    /// The explaining subgraph, regardless of polarity.
    pub fn subgraph(&self) -> &Graph {
        match self {
            Explanation::Why(g) | Explanation::WhyNot(g) => g,
        }
    }

    /// True iff the node conformed.
    pub fn conforms(&self) -> bool {
        matches!(self, Explanation::Why(_))
    }
}

/// Explains the conformance status of `node` with respect to `shape`:
/// returns why-provenance on conformance and why-not-provenance otherwise.
pub fn explain(schema: &Schema, graph: &Graph, node: &Term, shape: &Shape) -> Explanation {
    let mut ctx = Context::new(schema, graph);
    if ctx.conforms_term(node, shape) {
        Explanation::Why(neighborhood_term(&mut ctx, node, shape))
    } else {
        Explanation::WhyNot(neighborhood_term(&mut ctx, node, &shape.clone().not()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shapefrag_rdf::{Iri, Triple};
    use shapefrag_shacl::path::PathExpr;

    fn iri(n: &str) -> Iri {
        Iri::new(format!("http://e/{n}"))
    }

    fn term(n: &str) -> Term {
        Term::iri(format!("http://e/{n}"))
    }

    fn t(s: &str, p: &str, o: &str) -> Triple {
        Triple::new(term(s), iri(p), term(o))
    }

    fn p(n: &str) -> PathExpr {
        PathExpr::Prop(iri(n))
    }

    #[test]
    fn why_explanation_for_conforming_node() {
        let g = Graph::from_triples([t("v", "p", "x"), t("v", "q", "y")]);
        let shape = Shape::geq(1, p("p"), Shape::True);
        let e = explain(&Schema::empty(), &g, &term("v"), &shape);
        assert!(e.conforms());
        assert_eq!(e.subgraph(), &Graph::from_triples([t("v", "p", "x")]));
    }

    #[test]
    fn why_not_explanation_for_violating_node() {
        // v must have at most 1 p-edge; it has two — both are the evidence.
        let g = Graph::from_triples([t("v", "p", "x"), t("v", "p", "y")]);
        let shape = Shape::leq(1, p("p"), Shape::True);
        let e = explain(&Schema::empty(), &g, &term("v"), &shape);
        assert!(!e.conforms());
        assert_eq!(e.subgraph().len(), 2);
    }

    #[test]
    fn describe_unions_conforming_shapes() {
        use shapefrag_shacl::ShapeDef;
        let g = Graph::from_triples([
            t("v", "name", "n1"),
            t("v", "knows", "w"),
            t("w", "name", "n2"),
            t("v", "unrelated", "x"),
        ]);
        let schema = Schema::new([
            ShapeDef::new(
                term("Named"),
                Shape::geq(1, p("name"), Shape::True),
                Shape::False,
            ),
            ShapeDef::new(
                term("Social"),
                Shape::geq(1, p("knows"), Shape::geq(1, p("name"), Shape::True)),
                Shape::False,
            ),
            ShapeDef::new(
                term("Impossible"),
                Shape::geq(1, p("missing"), Shape::True),
                Shape::False,
            ),
        ])
        .unwrap();
        let d = describe(&schema, &g, &term("v"));
        // Evidence from both conforming shapes; nothing from the failing
        // one; the schema-irrelevant triple excluded.
        assert!(d.contains(&t("v", "name", "n1")));
        assert!(d.contains(&t("v", "knows", "w")));
        assert!(d.contains(&t("w", "name", "n2")));
        assert!(!d.contains(&t("v", "unrelated", "x")));
        // Self-contained: v still conforms to both shapes inside d.
        let mut dctx = Context::new(&schema, &d);
        assert!(dctx.conforms_term(&term("v"), &Shape::HasShape(term("Named"))));
        assert!(dctx.conforms_term(&term("v"), &Shape::HasShape(term("Social"))));
    }

    #[test]
    fn minimal_witness_prunes_redundant_evidence() {
        // Remark 3.6: two addresses both witness ≥1 a.⊤; the neighborhood
        // keeps both, the minimal witness keeps exactly one
        // (deterministically, the sorted-first one).
        let g = Graph::from_triples([t("v", "a", "x"), t("v", "a", "y")]);
        let shape = Shape::geq(1, p("a"), Shape::True);
        let schema = Schema::empty();
        let e = explain(&schema, &g, &term("v"), &shape);
        assert_eq!(e.subgraph().len(), 2, "neighborhood keeps all witnesses");
        let w1 = minimal_witness(&schema, &g, &term("v"), &shape).unwrap();
        assert_eq!(w1.len(), 1);
        let w2 = minimal_witness(&schema, &g, &term("v"), &shape).unwrap();
        assert_eq!(w1, w2, "pruning is deterministic");
        assert!(w1.is_subgraph_of(e.subgraph()));
    }

    #[test]
    fn minimal_witness_of_nonconforming_node_is_none() {
        let g = Graph::from_triples([t("v", "b", "x")]);
        let shape = Shape::geq(1, p("a"), Shape::True);
        assert!(minimal_witness(&Schema::empty(), &g, &term("v"), &shape).is_none());
    }

    #[test]
    fn minimal_witness_keeps_essential_triples() {
        // Example 3.5's essential triple survives pruning.
        let g = Graph::from_triples([t("v", "auth", "bob"), t("bob", "type", "student")]);
        let shape = Shape::leq(
            1,
            p("auth"),
            Shape::leq(0, p("type"), Shape::has_value(term("student"))),
        );
        let w = minimal_witness(&Schema::empty(), &g, &term("v"), &shape).unwrap();
        // ≤-shapes hold in the empty graph too: the minimal witness is
        // empty even though the neighborhood is not.
        assert!(w.is_empty());
        // For a shape that *requires* the student typing, both triples on
        // the evidence chain are essential and survive pruning.
        let needs_student = Shape::geq(
            1,
            p("auth"),
            Shape::geq(1, p("type"), Shape::has_value(term("student"))),
        );
        let w2 = minimal_witness(&Schema::empty(), &g, &term("v"), &needs_student).unwrap();
        assert!(w2.contains(&t("v", "auth", "bob")));
        assert!(w2.contains(&t("bob", "type", "student")));
        assert_eq!(w2.len(), 2);
    }

    #[test]
    fn why_not_for_missing_property_is_empty() {
        // "why is there no p-edge" has no witnessing triples.
        let g = Graph::from_triples([t("v", "q", "x")]);
        let shape = Shape::geq(1, p("p"), Shape::True);
        let e = explain(&Schema::empty(), &g, &term("v"), &shape);
        assert!(!e.conforms());
        assert!(e.subgraph().is_empty());
    }
}
