//! # shapefrag-core
//!
//! Data provenance for SHACL (EDBT 2023): the paper's primary contribution.
//!
//! - [`neighborhood()`] — the φ-neighborhood `B(v, G, φ)` of a node (Table 2),
//!   the provenance of `v` conforming to φ, with the Sufficiency guarantee
//!   (Theorem 3.4).
//! - [`fragment()`] — shape fragments `Frag(G, S)` / `Frag(G, H)` (§4), a
//!   subgraph-retrieval mechanism with the Conformance guarantee
//!   (Theorem 4.1).
//! - [`instrumented`] — validation with simultaneous provenance extraction
//!   (§5.2, the pySHACL-fragments strategy).
//! - [`provenance`] — why / why-not explanations (Remark 3.7).
//! - [`to_sparql`] — translation of neighborhoods and fragments to SPARQL
//!   (§5.1: Lemma 5.1, Proposition 5.3, Corollary 5.5).
//!
//! ```
//! use shapefrag_core::{explain, fragment};
//! use shapefrag_rdf::{turtle, Term, Iri};
//! use shapefrag_shacl::{PathExpr, Schema, Shape};
//!
//! let data = turtle::parse(r#"
//!     @prefix ex: <http://example.org/> .
//!     ex:p1 ex:author ex:alice . ex:alice ex:type ex:Student .
//!     ex:p2 ex:author ex:bob .   ex:bob ex:type ex:Professor .
//! "#).unwrap();
//!
//! // "Has at least one student author" (the paper's WorkshopShape).
//! let shape = Shape::geq(
//!     1,
//!     PathExpr::prop(Iri::new("http://example.org/author")),
//!     Shape::geq(
//!         1,
//!         PathExpr::prop(Iri::new("http://example.org/type")),
//!         Shape::has_value(Term::iri("http://example.org/Student")),
//!     ),
//! );
//! let schema = Schema::empty();
//!
//! // Why does p1 conform? The two evidence triples.
//! let e = explain(&schema, &data, &Term::iri("http://example.org/p1"), &shape);
//! assert!(e.conforms());
//! assert_eq!(e.subgraph().len(), 2);
//!
//! // The shape fragment collects that evidence for every conforming node.
//! let frag = fragment(&schema, &data, std::slice::from_ref(&shape));
//! assert_eq!(frag, e.subgraph().clone());
//! ```
#![forbid(unsafe_code)]

pub mod fragment;
pub mod incremental;
pub mod instrumented;
pub mod neighborhood;
pub mod parallel;
pub mod provenance;
pub mod to_sparql;

pub use fragment::{
    conforming_nodes, fragment, fragment_governed, fragment_ids, fragment_ids_per_node,
    fragment_par, schema_fragment, schema_fragment_governed,
};
pub use incremental::{EditOp, EditScript, IncrementalValidator};
pub use instrumented::{
    validate_extract_fragment, validate_extract_fragment_per_node,
    validate_extract_fragment_simplified, validate_extract_fragment_with_memo, validate_par,
    validate_with_provenance, ProvenancedReport, SchemaFragment,
};
pub use neighborhood::{
    collect_neighborhood_many, conforms_and_collect, neighborhood, neighborhood_governed,
    neighborhood_term, IdTriples,
};
pub use parallel::{
    fragment_ids_par, fragment_ids_par_stats, validate_batch_par, validate_batch_par_containment,
    validate_batch_par_governed, validate_batch_par_stats, validate_extract_fragment_par,
    validate_extract_fragment_par_stats,
};
pub use provenance::{describe, explain, minimal_witness, Explanation};
