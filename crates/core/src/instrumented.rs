//! Instrumented validation (§5.2): validation that also returns provenance.
//!
//! This is the Rust analogue of the paper's pySHACL-fragments: a validation
//! engine adapted so that, in the same pass that checks each target node,
//! it also extracts the node's neighborhood. The overhead experiment
//! (Figure 1) compares [`validate_extract_fragment`] against plain
//! [`shapefrag_shacl::validator::validate`].
//!
//! Two cost considerations shape the implementation:
//!
//! - The neighborhood of a request shape `φ ∧ τ` splits as
//!   `B(v, φ) ∪ B(v, τ)`. The target part is the same for every node of a
//!   target class, so the evidence for the standard SHACL target forms is
//!   **precomputed once per shape definition** (`TargetEvidence`) instead
//!   of being re-traced per node — mirroring how a validator resolves
//!   targets once.
//! - [`validate_extract_fragment`] accumulates the union fragment only
//!   (the §5.3.1 measurement); [`validate_with_provenance`] additionally
//!   materializes one neighborhood graph per (shape, node) pair for
//!   API consumers.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

use shapefrag_analyze::{shape_shares_work, Diagnostic, SimplifyLevel};
use shapefrag_rdf::{Graph, GraphAccess, Term, TermId};
use shapefrag_shacl::path::PathExpr;
use shapefrag_shacl::validator::{ConformanceMemo, Context, ValidationReport, Violation};
use shapefrag_shacl::{Nnf, Schema, Shape};

use crate::neighborhood::{
    collect_neighborhood_many, conforms_and_collect, materialize, neighborhood_nnf_ids, IdTriples,
};

/// The fragment collected by [`validate_extract_fragment`], kept as interned
/// id triples (the cheap form an instrumented validator accumulates);
/// materialize with [`SchemaFragment::to_graph`].
#[derive(Debug, Clone)]
pub struct SchemaFragment {
    triples: IdTriples,
}

impl SchemaFragment {
    /// Number of collected triples.
    pub fn len(&self) -> usize {
        self.triples.len()
    }

    /// True iff no triples were collected.
    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }

    /// Materializes the fragment as a standalone [`Graph`] (`graph` must be
    /// the graph the fragment was extracted from).
    pub fn to_graph<G: GraphAccess>(&self, graph: &G) -> Graph {
        materialize(graph, &self.triples)
    }

    /// Wraps an already-collected id-triple set (the parallel engine's
    /// merge step).
    pub(crate) fn from_ids(triples: IdTriples) -> SchemaFragment {
        SchemaFragment { triples }
    }
}

/// The outcome of instrumented validation: the ordinary report, plus
/// per-(shape, focus node) neighborhoods, plus their union (the shape
/// fragment of the schema restricted to target nodes).
#[derive(Debug, Clone)]
pub struct ProvenancedReport {
    pub report: ValidationReport,
    /// `(shape name, focus node) → neighborhood` for every *conforming*
    /// target node.
    pub neighborhoods: BTreeMap<(Term, Term), Graph>,
    /// The union of all neighborhoods: `Frag(G, H)` when the graph
    /// conforms (target triples are included via the `φ ∧ τ` request
    /// shapes).
    pub fragment: Graph,
}

/// Precomputed `B(v, τ)` evidence for the standard SHACL target forms.
pub(crate) enum TargetEvidence {
    /// Node targets (`hasValue`): no triples.
    Empty,
    /// Subjects-of targets `≥1 p.⊤`: all outgoing `p`-triples of `v`.
    SubjectsOf(TermId),
    /// Objects-of targets `≥1 p⁻.⊤`: all incoming `p`-triples of `v`.
    ObjectsOf(TermId),
    /// Class targets `≥1 type/sub*.hasValue(C)`: the `(v, type, c)` edges
    /// into classes reaching `C`, plus each class's (shared, precomputed)
    /// subclass chain.
    Class {
        type_pid: TermId,
        chains: HashMap<TermId, Vec<(TermId, TermId, TermId)>>,
    },
    /// Anything else: fall back to the generic Table 2 machinery.
    Generic(Box<Nnf>),
}

impl TargetEvidence {
    pub(crate) fn analyze<G: GraphAccess>(
        ctx: &mut Context<'_, G>,
        target: &Shape,
    ) -> TargetEvidence {
        match target {
            Shape::HasValue(_) => TargetEvidence::Empty,
            Shape::Geq(1, path, inner) => match (path, inner.as_ref()) {
                (PathExpr::Prop(p), Shape::True) => match ctx.graph.id_of_iri(p) {
                    Some(pid) => TargetEvidence::SubjectsOf(pid),
                    None => TargetEvidence::Empty,
                },
                (PathExpr::Inverse(inv), Shape::True) => match inv.as_ref() {
                    PathExpr::Prop(p) => match ctx.graph.id_of_iri(p) {
                        Some(pid) => TargetEvidence::ObjectsOf(pid),
                        None => TargetEvidence::Empty,
                    },
                    _ => TargetEvidence::generic(target),
                },
                (PathExpr::Seq(first, rest), Shape::HasValue(c)) => {
                    let (PathExpr::Prop(type_p), PathExpr::ZeroOrMore(sub)) =
                        (first.as_ref(), rest.as_ref())
                    else {
                        return TargetEvidence::generic(target);
                    };
                    let PathExpr::Prop(sub_p) = sub.as_ref() else {
                        return TargetEvidence::generic(target);
                    };
                    let (Some(type_pid), Some(cid)) =
                        (ctx.graph.id_of_iri(type_p), ctx.graph.id_of(c))
                    else {
                        return TargetEvidence::Empty;
                    };
                    // All classes reaching C via sub*, each with its chain
                    // of subclass triples traced once.
                    let back = PathExpr::Prop(sub_p.clone()).inverse().star();
                    let classes = ctx.eval_path(&back, cid);
                    let sub_star = PathExpr::Prop(sub_p.clone()).star();
                    let mut chains = HashMap::new();
                    let target_set = BTreeSet::from([cid]);
                    for class in classes {
                        let chain: Vec<_> = ctx
                            .trace_path(&sub_star, class, &target_set)
                            .into_iter()
                            .collect();
                        chains.insert(class, chain);
                    }
                    TargetEvidence::Class { type_pid, chains }
                }
                (PathExpr::Prop(type_p), Shape::HasValue(c)) => {
                    let (Some(type_pid), Some(cid)) =
                        (ctx.graph.id_of_iri(type_p), ctx.graph.id_of(c))
                    else {
                        return TargetEvidence::Empty;
                    };
                    TargetEvidence::Class {
                        type_pid,
                        chains: HashMap::from([(cid, Vec::new())]),
                    }
                }
                _ => TargetEvidence::generic(target),
            },
            _ => TargetEvidence::generic(target),
        }
    }

    fn generic(target: &Shape) -> TargetEvidence {
        TargetEvidence::Generic(Box::new(Nnf::from_shape(target)))
    }

    /// Appends `B(v, τ)` to `out`.
    pub(crate) fn collect<G: GraphAccess>(
        &self,
        ctx: &mut Context<'_, G>,
        v: TermId,
        out: &mut IdTriples,
    ) {
        match self {
            TargetEvidence::Empty => {}
            TargetEvidence::SubjectsOf(pid) => {
                let objs: Vec<TermId> = ctx.graph.objects_ids(v, *pid).collect();
                out.extend(objs.into_iter().map(|o| (v, *pid, o)));
            }
            TargetEvidence::ObjectsOf(pid) => {
                let subs: Vec<TermId> = ctx.graph.subjects_ids(v, *pid).collect();
                out.extend(subs.into_iter().map(|s| (s, *pid, v)));
            }
            TargetEvidence::Class { type_pid, chains } => {
                let types: Vec<TermId> = ctx.graph.objects_ids(v, *type_pid).collect();
                for c in types {
                    if let Some(chain) = chains.get(&c) {
                        out.insert((v, *type_pid, c));
                        out.extend(chain.iter().copied());
                    }
                }
            }
            TargetEvidence::Generic(nnf) => {
                out.extend(neighborhood_nnf_ids(ctx, v, nnf));
            }
        }
    }
}

/// Parallel validation: a thin wrapper over the cost-routed work-stealing
/// engine ([`crate::parallel::validate_batch_par`]), kept for source
/// compatibility. Produces exactly the report of
/// [`shapefrag_shacl::validator::validate`], with violations in a
/// canonical `(shape, focus)` order.
pub fn validate_par<G: GraphAccess>(
    schema: &Schema,
    graph: &G,
    workers: usize,
) -> ValidationReport {
    let mut report = crate::parallel::validate_batch_par(schema, graph, workers);
    report
        .violations
        .sort_by(|a, b| (&a.shape, &a.focus).cmp(&(&b.shape, &b.focus)));
    report
}

/// Validates and, in the same pass, extracts the schema's shape fragment
/// `Frag(G, H)` (the union of `B(v, φ ∧ τ)` over all conforming target
/// nodes). This is the configuration the Figure 1 overhead experiment
/// measures against plain validation.
///
/// Runs set-at-a-time: each definition's targets are decided in one
/// [`Context::conforms_all_nnf`] batch over a fresh shared memo and the
/// conforming nodes' neighborhoods are collected by the batched Table 2
/// collector. Produces exactly the report and fragment of
/// [`validate_extract_fragment_per_node`].
pub fn validate_extract_fragment<G: GraphAccess>(
    schema: &Schema,
    graph: &G,
) -> (ValidationReport, SchemaFragment) {
    validate_extract_fragment_with_memo(schema, graph, Arc::new(ConformanceMemo::new()))
}

/// Below this many target nodes per definition, the single-pass per-node
/// collector ([`conforms_and_collect`]) beats the two-pass batch driver
/// (decide-all, then re-evaluate the paths to collect): the multi-source
/// kernel's sharing cannot amortize evaluating every path twice.
pub(crate) const BATCH_MIN_TARGETS: usize = 16;

/// Like [`validate_extract_fragment`], but first runs the static
/// analyzer's fragment-level simplification over the schema
/// ([`shapefrag_analyze::simplify`]) and validates the simplified schema.
/// The rewrites are semantics-preserving for both the report and the
/// extracted fragment (the fragment-level polarity gates only apply
/// rewrites that cannot change any collected neighborhood), so the result
/// agrees with [`validate_extract_fragment`] on the original schema. The
/// diagnostics gathered during simplification are returned alongside.
pub fn validate_extract_fragment_simplified<G: GraphAccess>(
    schema: &Schema,
    graph: &G,
) -> (ValidationReport, SchemaFragment, Vec<Diagnostic>) {
    let (simplified, diags) = shapefrag_analyze::simplify(schema, SimplifyLevel::Fragment);
    let (report, fragment) = validate_extract_fragment(&simplified, graph);
    (report, fragment, diags)
}

pub fn validate_extract_fragment_with_memo<G: GraphAccess>(
    schema: &Schema,
    graph: &G,
    memo: Arc<ConformanceMemo>,
) -> (ValidationReport, SchemaFragment) {
    let mut ctx = Context::with_memo(schema, graph, memo);
    let mut report = ValidationReport::default();
    let mut all = IdTriples::default();
    let mut journal: Vec<(TermId, TermId, TermId)> = Vec::new();
    for def in schema.iter() {
        let shape_nnf = Nnf::from_shape(&def.shape);
        let targets: Vec<TermId> = ctx.target_nodes(&def.target).into_iter().collect();
        let evidence = TargetEvidence::analyze(&mut ctx, &def.target);
        report.checked += targets.len();
        if targets.len() < BATCH_MIN_TARGETS || !shape_shares_work(schema, &shape_nnf) {
            // Small target set, or a shape the batch kernels cannot share
            // any work on: one instrumented traversal per node, producing
            // the identical verdicts and union.
            for &node in &targets {
                journal.clear();
                if conforms_and_collect(&mut ctx, node, &shape_nnf, &mut journal) {
                    all.extend(journal.iter().copied());
                    evidence.collect(&mut ctx, node, &mut all);
                } else {
                    report.violations.push(Violation {
                        shape: def.name.clone(),
                        focus: graph.term(node).clone(),
                    });
                }
            }
            continue;
        }
        let decisions = ctx.conforms_all_nnf(&targets, &shape_nnf);
        let mut conforming: Vec<TermId> = Vec::with_capacity(targets.len());
        for (node, ok) in targets.iter().zip(decisions) {
            if ok {
                conforming.push(*node);
                evidence.collect(&mut ctx, *node, &mut all);
            } else {
                report.violations.push(Violation {
                    shape: def.name.clone(),
                    focus: graph.term(*node).clone(),
                });
            }
        }
        collect_neighborhood_many(&mut ctx, &conforming, &shape_nnf, &mut all);
    }
    (report, SchemaFragment { triples: all })
}

/// The per-node reference implementation of [`validate_extract_fragment`]:
/// one instrumented [`conforms_and_collect`] traversal per (definition,
/// target) pair. Kept as the baseline for the batch-vs-per-node benchmark
/// and the agreement property tests.
pub fn validate_extract_fragment_per_node<G: GraphAccess>(
    schema: &Schema,
    graph: &G,
) -> (ValidationReport, SchemaFragment) {
    let mut ctx = Context::new(schema, graph);
    let mut report = ValidationReport::default();
    let mut all = IdTriples::default();
    let mut journal: Vec<(TermId, TermId, TermId)> = Vec::new();
    for def in schema.iter() {
        let shape_nnf = Nnf::from_shape(&def.shape);
        let targets = ctx.target_nodes(&def.target);
        let evidence = TargetEvidence::analyze(&mut ctx, &def.target);
        for node in targets {
            report.checked += 1;
            journal.clear();
            if conforms_and_collect(&mut ctx, node, &shape_nnf, &mut journal) {
                all.extend(journal.iter().copied());
                evidence.collect(&mut ctx, node, &mut all);
            } else {
                report.violations.push(Violation {
                    shape: def.name.clone(),
                    focus: graph.term(node).clone(),
                });
            }
        }
    }
    (report, SchemaFragment { triples: all })
}

/// Validates and simultaneously extracts per-node provenance (the
/// neighborhood of `φ ∧ τ` for every conforming target node) plus the
/// union fragment.
pub fn validate_with_provenance<G: GraphAccess>(schema: &Schema, graph: &G) -> ProvenancedReport {
    let mut ctx = Context::new(schema, graph);
    let mut report = ValidationReport::default();
    let mut neighborhoods = BTreeMap::new();
    let mut all = IdTriples::default();
    for def in schema.iter() {
        let shape_nnf = Nnf::from_shape(&def.shape);
        let targets = ctx.target_nodes(&def.target);
        let evidence = TargetEvidence::analyze(&mut ctx, &def.target);
        for node in targets {
            report.checked += 1;
            if ctx.conforms(node, &def.shape) {
                let mut ids = neighborhood_nnf_ids(&mut ctx, node, &shape_nnf);
                evidence.collect(&mut ctx, node, &mut ids);
                all.extend(ids.iter().copied());
                neighborhoods.insert(
                    (def.name.clone(), graph.term(node).clone()),
                    materialize(graph, &ids),
                );
            } else {
                report.violations.push(Violation {
                    shape: def.name.clone(),
                    focus: graph.term(node).clone(),
                });
            }
        }
    }
    ProvenancedReport {
        report,
        neighborhoods,
        fragment: materialize(graph, &all),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragment::schema_fragment;
    use shapefrag_rdf::{Iri, Triple};
    use shapefrag_shacl::validator::validate;
    use shapefrag_shacl::ShapeDef;

    fn iri(n: &str) -> Iri {
        Iri::new(format!("http://e/{n}"))
    }

    fn term(n: &str) -> Term {
        Term::iri(format!("http://e/{n}"))
    }

    fn t(s: &str, p: &str, o: &str) -> Triple {
        Triple::new(term(s), iri(p), term(o))
    }

    fn p(n: &str) -> PathExpr {
        PathExpr::Prop(iri(n))
    }

    fn workshop_schema() -> Schema {
        Schema::new([ShapeDef::new(
            term("WorkshopShape"),
            Shape::geq(
                1,
                p("author"),
                Shape::geq(1, p("type"), Shape::has_value(term("Student"))),
            ),
            Shape::geq(1, p("type"), Shape::has_value(term("Paper"))),
        )])
        .unwrap()
    }

    #[test]
    fn report_matches_plain_validation() {
        let schema = workshop_schema();
        let g = Graph::from_triples([
            t("p1", "type", "Paper"),
            t("p1", "author", "alice"),
            t("alice", "type", "Student"),
            t("p2", "type", "Paper"),
            t("p2", "author", "bob"),
        ]);
        let plain = validate(&schema, &g);
        let instrumented = validate_with_provenance(&schema, &g);
        assert_eq!(plain, instrumented.report);
        assert_eq!(instrumented.report.violations.len(), 1);
        let (fast_report, fast_fragment) = validate_extract_fragment(&schema, &g);
        assert_eq!(plain, fast_report);
        assert_eq!(fast_fragment.to_graph(&g), instrumented.fragment);
    }

    #[test]
    fn per_node_neighborhoods_recorded() {
        let schema = workshop_schema();
        let g = Graph::from_triples([
            t("p1", "type", "Paper"),
            t("p1", "author", "alice"),
            t("alice", "type", "Student"),
        ]);
        let out = validate_with_provenance(&schema, &g);
        let key = (term("WorkshopShape"), term("p1"));
        let b = out.neighborhoods.get(&key).expect("neighborhood recorded");
        assert_eq!(b.len(), 3); // target triple + author + student-type
        assert!(b.contains(&t("p1", "type", "Paper")));
    }

    #[test]
    fn fragment_matches_schema_fragment_on_conforming_graph() {
        let schema = workshop_schema();
        let g = Graph::from_triples([
            t("p1", "type", "Paper"),
            t("p1", "author", "alice"),
            t("alice", "type", "Student"),
            t("noise", "x", "y"),
        ]);
        let out = validate_with_provenance(&schema, &g);
        assert!(out.report.conforms());
        assert_eq!(out.fragment, schema_fragment(&schema, &g));
        let (_, fast) = validate_extract_fragment(&schema, &g);
        assert_eq!(fast.to_graph(&g), out.fragment);
    }

    #[test]
    fn class_target_evidence_includes_subclass_chains() {
        // Target class Publication, instance typed via a subclass chain:
        // the evidence must include the chain triples (they are part of
        // B(v, ≥1 type/sub*.hasValue(Publication))).
        let schema = Schema::new([ShapeDef::new(
            term("S"),
            Shape::True,
            Shape::geq(
                1,
                p("type").then(p("sub").star()),
                Shape::has_value(term("Publication")),
            ),
        )])
        .unwrap();
        let g = Graph::from_triples([
            t("x", "type", "Paper"),
            t("Paper", "sub", "Publication"),
            t("unrelated", "type", "Venue"),
        ]);
        let (report, fragment) = validate_extract_fragment(&schema, &g);
        assert!(report.conforms());
        let fragment = fragment.to_graph(&g);
        assert_eq!(fragment, schema_fragment(&schema, &g));
        assert!(fragment.contains(&t("x", "type", "Paper")));
        assert!(fragment.contains(&t("Paper", "sub", "Publication")));
        assert!(!fragment.contains(&t("unrelated", "type", "Venue")));
    }

    #[test]
    fn subjects_and_objects_of_targets_fast_paths() {
        for target in [
            Shape::geq(1, p("q"), Shape::True),
            Shape::geq(1, p("q").inverse(), Shape::True),
            Shape::has_value(term("a")),
        ] {
            let schema = Schema::new([ShapeDef::new(term("S"), Shape::True, target)]).unwrap();
            let g = Graph::from_triples([t("a", "q", "b"), t("a", "q", "c"), t("z", "r", "a")]);
            let (_, fast) = validate_extract_fragment(&schema, &g);
            assert_eq!(fast.to_graph(&g), schema_fragment(&schema, &g));
        }
    }

    #[test]
    fn generic_target_fallback_agrees() {
        // An unusual target form (∀-based) exercises the generic path.
        let schema = Schema::new([ShapeDef::new(
            term("S"),
            Shape::geq(1, p("q"), Shape::True),
            Shape::geq(2, p("q"), Shape::True),
        )])
        .unwrap();
        let g = Graph::from_triples([t("a", "q", "b"), t("a", "q", "c"), t("d", "q", "e")]);
        let (_, fast) = validate_extract_fragment(&schema, &g);
        assert_eq!(fast.to_graph(&g), schema_fragment(&schema, &g));
    }

    #[test]
    fn parallel_validation_matches_sequential() {
        // A multi-definition schema with mixed outcomes.
        let schema = Schema::new([
            ShapeDef::new(
                term("S1"),
                Shape::geq(1, p("author"), Shape::True),
                Shape::geq(1, p("type"), Shape::has_value(term("Paper"))),
            ),
            ShapeDef::new(
                term("S2"),
                Shape::geq(1, p("title"), Shape::True),
                Shape::geq(1, p("type"), Shape::has_value(term("Paper"))),
            ),
            ShapeDef::new(
                term("S3"),
                Shape::leq(1, p("author"), Shape::True),
                Shape::geq(1, p("author"), Shape::True),
            ),
        ])
        .unwrap();
        let g = Graph::from_triples([
            t("p1", "type", "Paper"),
            t("p1", "author", "a"),
            t("p1", "author", "b"),
            t("p2", "type", "Paper"),
            t("p2", "title", "x"),
        ]);
        let mut sequential = validate(&schema, &g);
        sequential
            .violations
            .sort_by(|a, b| (&a.shape, &a.focus).cmp(&(&b.shape, &b.focus)));
        for workers in [1, 2, 4] {
            let parallel = validate_par(&schema, &g, workers);
            assert_eq!(sequential, parallel, "workers = {workers}");
        }
    }

    #[test]
    fn violating_nodes_get_no_neighborhood() {
        let schema = workshop_schema();
        let g = Graph::from_triples([t("p2", "type", "Paper"), t("p2", "author", "bob")]);
        let out = validate_with_provenance(&schema, &g);
        assert!(!out.report.conforms());
        assert!(out.neighborhoods.is_empty());
        assert!(out.fragment.is_empty());
    }
}
