//! Cost-routed work-stealing parallel validation and extraction (DESIGN.md
//! §12).
//!
//! The engines here partition work by **shape × target-chunk** over a
//! shared graph snapshot (typically an `Arc<FrozenGraph>` deref) and run
//! the chunks on the [`shapefrag_sched`] work-stealing scheduler. Each
//! unit's static cost is the analyze crate's per-shape cost class
//! ([`shape_cost`]) scaled by chunk size, so product-graph BFS shapes are
//! dispatched before cheap local lookups and stragglers backfill via
//! steals.
//!
//! Determinism: planning happens sequentially (per-definition target
//! resolution, NNF conversion, target-evidence analysis) and every unit is
//! tagged with its planning-order sequence number. Workers record results
//! per unit; the merge sorts by sequence number, which reproduces the
//! single-threaded batch drivers' reports **exactly** — same `checked`
//! count, same violations in the same (definition-major, target-minor)
//! order. Fragments are id-triple *sets*, so their union is order-free by
//! construction.
//!
//! Sharing: all workers validate against one lock-striped
//! [`ConformanceMemo`], so a `hasShape` sub-shape referenced from units on
//! different workers is still decided at most once per (shape, node) —
//! modulo benign races where two workers decide the same pair
//! concurrently (both compute the same value).
//!
//! Governance: the governed engine gives every worker its own [`ExecCtx`]
//! carrying `budget.split(threads)` and a clone of the caller's
//! [`CancelToken`]. Budgets are per-context counters, not a shared pool,
//! so the split is an approximation: a parallel run may trip a step budget
//! a single-threaded run would squeak under (and vice versa), but the
//! *kind* of enforcement — steps, memory, deadline, depth, cancellation —
//! and the error taxonomy are preserved. When several workers fault, the
//! fault attached to the lowest planning sequence number wins, mirroring
//! "first fault in definition order" from the sequential driver.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use shapefrag_analyze::{shape_cost, shape_shares_work, PathClass};
use shapefrag_govern::{Budget, CancelToken, EngineError, ExecCtx};
use shapefrag_rdf::{GraphAccess, Term, TermId};
use shapefrag_sched::{run, RunStats, WorkUnit};
use shapefrag_shacl::validator::{
    ConformanceMemo, ContainmentIndex, Context, ValidationReport, Violation,
};
use shapefrag_shacl::{Nnf, Schema, Shape, ShapeDef};

use crate::instrumented::{SchemaFragment, TargetEvidence, BATCH_MIN_TARGETS};
use crate::neighborhood::{collect_neighborhood_many, conforms_and_collect, IdTriples};

/// One schedulable span: a contiguous slice `[lo, hi)` of one
/// definition's (or request shape's) sorted target list, tagged with its
/// planning-order sequence number for the deterministic merge.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Span {
    pub(crate) seq: usize,
    pub(crate) def: usize,
    pub(crate) lo: usize,
    pub(crate) hi: usize,
}

/// Static unit priority: the shape's fan-out class (a Kleene-closure BFS
/// outranks bounded adjacency scans outranks single lookups), doubled when
/// batch evaluation shares work across the chunk's nodes, scaled by chunk
/// length.
pub(crate) fn unit_cost(schema: &Schema, nnf: &Nnf, len: usize) -> u64 {
    let cost = shape_cost(schema, nnf);
    let base: u64 = match cost.fan_out {
        Some(PathClass::Traversing) => 16,
        Some(PathClass::Local) => 4,
        Some(PathClass::Simple) => 2,
        None => 1,
    };
    let shared: u64 = if cost.shares_work { 2 } else { 1 };
    base * shared * len.max(1) as u64
}

/// Chunk length for a target list: about four units per worker for steal
/// granularity, but never so small that per-unit overhead dominates. With
/// one thread the whole list is a single unit (the engine then matches the
/// sequential driver call-for-call).
pub(crate) fn chunk_len(total: usize, threads: usize) -> usize {
    if threads <= 1 {
        total.max(1)
    } else {
        (total / (threads * 4)).clamp(64, 2048)
    }
}

pub(crate) fn spans_for(
    targets: usize,
    chunk: usize,
    def: usize,
    seq: &mut usize,
    out: &mut Vec<Span>,
) {
    let mut lo = 0;
    while lo < targets {
        let hi = (lo + chunk).min(targets);
        out.push(Span {
            seq: *seq,
            def,
            lo,
            hi,
        });
        *seq += 1;
        lo = hi;
    }
}

fn violation<G: GraphAccess>(graph: &G, name: &Term, node: TermId) -> Violation {
    Violation {
        shape: name.clone(),
        focus: graph.term(node).clone(),
    }
}

/// Per-unit validation result: `(seq, checked, violations)`.
type UnitOut = (usize, usize, Vec<Violation>);

fn merge_report(per_worker: Vec<Vec<UnitOut>>) -> ValidationReport {
    let mut units: Vec<UnitOut> = per_worker.into_iter().flatten().collect();
    units.sort_by_key(|(seq, _, _)| *seq);
    let mut report = ValidationReport::default();
    for (_, checked, violations) in units {
        report.checked += checked;
        report.violations.extend(violations);
    }
    report
}

struct DefPlan<'a> {
    name: &'a Term,
    /// Top-level check routed through the *named* path
    /// (`hasShape(def.name)` ≡ the definition's shape), so definition-level
    /// bits land in the shared memo where subsumption derivation and
    /// cross-definition reuse can see them.
    shape: Shape,
    targets: Vec<TermId>,
}

fn plan_defs<'a, G: GraphAccess>(
    schema: &'a Schema,
    ctx: &mut Context<'_, G>,
    threads: usize,
) -> (Vec<DefPlan<'a>>, Vec<WorkUnit<Span>>) {
    let mut plans = Vec::new();
    let mut units = Vec::new();
    let mut seq = 0;
    for (d, def) in schema.iter().enumerate() {
        let nnf = Nnf::from_shape(&def.shape);
        let targets: Vec<TermId> = ctx.target_nodes(&def.target).into_iter().collect();
        let chunk = chunk_len(targets.len(), threads);
        let mut spans = Vec::new();
        spans_for(targets.len(), chunk, d, &mut seq, &mut spans);
        for s in spans {
            units.push(WorkUnit {
                cost: unit_cost(schema, &nnf, s.hi - s.lo),
                item: s,
            });
        }
        plans.push(DefPlan {
            name: &def.name,
            shape: Shape::HasShape(def.name.clone()),
            targets,
        });
    }
    (plans, units)
}

/// Parallel [`shapefrag_shacl::validate_batch`]: identical report (same
/// `checked` count, same violation order), computed by `threads` workers
/// over shape × target-chunk units with cost-ordered work stealing.
pub fn validate_batch_par<G: GraphAccess>(
    schema: &Schema,
    graph: &G,
    threads: usize,
) -> ValidationReport {
    validate_batch_par_stats(schema, graph, threads).0
}

/// [`validate_batch_par`] plus the scheduler's run counters.
pub fn validate_batch_par_stats<G: GraphAccess>(
    schema: &Schema,
    graph: &G,
    threads: usize,
) -> (ValidationReport, RunStats) {
    let threads = threads.max(1);
    let memo = Arc::new(ConformanceMemo::new());
    let mut plan_ctx = Context::with_memo(schema, graph, Arc::clone(&memo));
    let (plans, units) = plan_defs(schema, &mut plan_ctx, threads);
    drop(plan_ctx);
    let (per_worker, stats) = run(
        units,
        threads,
        |_| {
            (
                Context::with_memo(schema, graph, Arc::clone(&memo)),
                Vec::<UnitOut>::new(),
            )
        },
        |(ctx, out), span: Span| {
            let plan = &plans[span.def];
            let nodes = &plan.targets[span.lo..span.hi];
            let decisions = ctx.conforms_all(nodes, &plan.shape);
            let mut violations = Vec::new();
            for (node, ok) in nodes.iter().zip(decisions) {
                if !ok {
                    violations.push(violation(graph, plan.name, *node));
                }
            }
            out.push((span.seq, nodes.len(), violations));
        },
        |_, (_, out)| out,
    );
    (merge_report(per_worker), stats)
}

/// Containment-aware [`validate_batch_par_stats`]: the planner dedupes
/// syntactically identical target lists, withholds definitions whose
/// answers are fully derivable from an earlier *equivalent* definition
/// (mutual containment edges + identical target), and attaches `index` to
/// the shared memo so workers derive answers through containment edges.
/// The report is bit-identical to [`shapefrag_shacl::validate_batch`];
/// `RunStats` carries `shapes_skipped` / `checks_derived` /
/// `targets_deduped`.
pub fn validate_batch_par_containment<G: GraphAccess>(
    schema: &Schema,
    graph: &G,
    threads: usize,
    index: Arc<ContainmentIndex>,
) -> (ValidationReport, RunStats) {
    let threads = threads.max(1);
    let memo = Arc::new(ConformanceMemo::new());
    let mut plan_ctx = Context::with_memo(schema, graph, Arc::clone(&memo));
    // Attach after `with_memo` has bound the fingerprint, so an index from
    // a different schema is refused (the run then proceeds underived).
    let attached = memo.attach_containment(Arc::clone(&index));
    let defs: Vec<&ShapeDef> = schema.iter().collect();
    // Dedupe target resolution across definitions with syntactically
    // identical target shapes (resolution is deterministic, so reuse is
    // exact).
    let mut targets_deduped = 0u64;
    let mut target_lists: Vec<Vec<TermId>> = Vec::with_capacity(defs.len());
    for (i, def) in defs.iter().enumerate() {
        match defs[..i].iter().position(|e| e.target == def.target) {
            Some(j) => {
                targets_deduped += 1;
                let reused = target_lists[j].clone();
                target_lists.push(reused);
            }
            None => target_lists.push(plan_ctx.target_nodes(&def.target).into_iter().collect()),
        }
    }
    drop(plan_ctx);
    // A definition is covered when an earlier, not-itself-covered
    // definition has a provably equivalent shape and the same target: all
    // its bits will derive from that representative's.
    let mut covered = vec![false; defs.len()];
    if attached {
        for i in 0..defs.len() {
            for j in 0..i {
                if !covered[j]
                    && defs[i].target == defs[j].target
                    && index.supers_of(i as u32).contains(&(j as u32))
                    && index.subs_of(i as u32).contains(&(j as u32))
                {
                    covered[i] = true;
                    break;
                }
            }
        }
    }
    let mut plans = Vec::new();
    let mut units = Vec::new();
    let mut seq = 0usize;
    // Covered definitions reserve one sequence slot each (report rows are
    // merged by seq, so their violations land in definition order) but
    // emit no work units; their rows are resolved from memo bits after
    // the run.
    let mut deferred: Vec<(usize, usize)> = Vec::new();
    for (d, def) in defs.iter().enumerate() {
        let targets = std::mem::take(&mut target_lists[d]);
        if covered[d] {
            deferred.push((seq, d));
            seq += 1;
        } else {
            let nnf = Nnf::from_shape(&def.shape);
            let chunk = chunk_len(targets.len(), threads);
            let mut spans = Vec::new();
            spans_for(targets.len(), chunk, d, &mut seq, &mut spans);
            for s in spans {
                units.push(WorkUnit {
                    cost: unit_cost(schema, &nnf, s.hi - s.lo),
                    item: s,
                });
            }
        }
        plans.push(DefPlan {
            name: &def.name,
            shape: Shape::HasShape(def.name.clone()),
            targets,
        });
    }
    let (per_worker, mut stats) = run(
        units,
        threads,
        |_| {
            (
                Context::with_memo(schema, graph, Arc::clone(&memo)),
                Vec::<UnitOut>::new(),
            )
        },
        |(ctx, out), span: Span| {
            let plan = &plans[span.def];
            let nodes = &plan.targets[span.lo..span.hi];
            let decisions = ctx.conforms_all(nodes, &plan.shape);
            let mut violations = Vec::new();
            for (node, ok) in nodes.iter().zip(decisions) {
                if !ok {
                    violations.push(violation(graph, plan.name, *node));
                }
            }
            out.push((span.seq, nodes.len(), violations));
        },
        |_, (_, out)| out,
    );
    let mut rows = per_worker;
    if !deferred.is_empty() {
        let mut ctx = Context::with_memo(schema, graph, Arc::clone(&memo));
        let mut extra: Vec<UnitOut> = Vec::new();
        for (slot, d) in deferred {
            let plan = &plans[d];
            let mut violations = Vec::new();
            for &node in &plan.targets {
                let ok = match memo.lookup_or_derive(d as u32, node) {
                    Some(v) => v,
                    // Defensive: the representative should have decided
                    // every shared target, but an underivable pair is
                    // simply evaluated (still exact).
                    None => ctx.conforms_all(&[node], &plan.shape)[0],
                };
                if !ok {
                    violations.push(violation(graph, plan.name, node));
                }
            }
            extra.push((slot, plan.targets.len(), violations));
        }
        rows.push(extra);
    }
    stats.shapes_skipped = covered.iter().filter(|&&c| c).count() as u64;
    stats.checks_derived = memo.containment_counters().0;
    stats.targets_deduped = targets_deduped;
    (merge_report(rows), stats)
}

/// Resource-governed [`validate_batch_par`]: every worker runs under its
/// own [`ExecCtx`] carrying `budget.split(threads)` and the shared
/// cancellation token; the first fault in planning order is surfaced as
/// the result. With one thread this is exactly
/// [`shapefrag_shacl::validator::validate_batch_governed`].
pub fn validate_batch_par_governed<G: GraphAccess>(
    schema: &Schema,
    graph: &G,
    threads: usize,
    budget: Budget,
    cancel: Option<&CancelToken>,
) -> Result<ValidationReport, EngineError> {
    let attach = |mut exec: ExecCtx| {
        if let Some(token) = cancel {
            exec = exec.with_cancel(token);
        }
        exec
    };
    let threads = threads.max(1);
    if threads == 1 {
        return shapefrag_shacl::validator::validate_batch_governed(
            schema,
            graph,
            attach(ExecCtx::with_budget(budget)),
        );
    }
    let memo = Arc::new(ConformanceMemo::new());
    // Planning (target resolution) runs sequentially under the full
    // budget, exactly like the sequential driver's per-definition prelude.
    let mut plan_ctx = Context::with_memo(schema, graph, Arc::clone(&memo))
        .with_exec(attach(ExecCtx::with_budget(budget)));
    let mut plans = Vec::new();
    let mut units = Vec::new();
    let mut seq = 0;
    for (d, def) in schema.iter().enumerate() {
        plan_ctx.exec().check_now()?;
        let nnf = Nnf::from_shape(&def.shape);
        let targets: Vec<TermId> = plan_ctx.target_nodes(&def.target).into_iter().collect();
        if let Some(e) = plan_ctx.take_fault() {
            return Err(e);
        }
        let chunk = chunk_len(targets.len(), threads);
        let mut spans = Vec::new();
        spans_for(targets.len(), chunk, d, &mut seq, &mut spans);
        for s in spans {
            units.push(WorkUnit {
                cost: unit_cost(schema, &nnf, s.hi - s.lo),
                item: s,
            });
        }
        plans.push(DefPlan {
            name: &def.name,
            shape: Shape::HasShape(def.name.clone()),
            targets,
        });
    }
    drop(plan_ctx);
    let worker_budget = budget.split(threads);
    let fault: Mutex<Option<(usize, EngineError)>> = Mutex::new(None);
    let abort = AtomicBool::new(false);
    let record_fault = |seq: usize, e: EngineError| {
        let mut slot = fault.lock().expect("fault slot poisoned");
        match &*slot {
            Some((s, _)) if *s <= seq => {}
            _ => *slot = Some((seq, e)),
        }
        abort.store(true, Ordering::Release);
    };
    let (per_worker, _) = run(
        units,
        threads,
        |_| {
            (
                Context::with_memo(schema, graph, Arc::clone(&memo))
                    .with_exec(attach(ExecCtx::with_budget(worker_budget))),
                Vec::<UnitOut>::new(),
            )
        },
        |(ctx, out), span: Span| {
            if abort.load(Ordering::Acquire) {
                return;
            }
            let plan = &plans[span.def];
            let nodes = &plan.targets[span.lo..span.hi];
            let decisions = ctx.conforms_all(nodes, &plan.shape);
            if let Some(e) = ctx.take_fault() {
                record_fault(span.seq, e);
                return;
            }
            let mut violations = Vec::new();
            for (node, ok) in nodes.iter().zip(decisions) {
                if !ok {
                    violations.push(violation(graph, plan.name, *node));
                }
            }
            out.push((span.seq, nodes.len(), violations));
        },
        |_, (_, out)| out,
    );
    if let Some((_, e)) = fault.into_inner().expect("fault slot poisoned") {
        return Err(e);
    }
    Ok(merge_report(per_worker))
}

struct ExtractPlan<'a> {
    name: &'a Term,
    nnf: Nnf,
    targets: Vec<TermId>,
    evidence: TargetEvidence,
    /// Route of the *whole definition* (decided on the full target count,
    /// matching the sequential driver): below [`BATCH_MIN_TARGETS`] or
    /// without shared work, units run the single-pass per-node collector.
    per_node: bool,
}

/// Parallel [`crate::validate_extract_fragment`]: identical report and
/// fragment, with neighborhoods collected by the workers and unioned.
pub fn validate_extract_fragment_par<G: GraphAccess>(
    schema: &Schema,
    graph: &G,
    threads: usize,
) -> (ValidationReport, SchemaFragment) {
    let (report, fragment, _) = validate_extract_fragment_par_stats(schema, graph, threads);
    (report, fragment)
}

/// [`validate_extract_fragment_par`] plus the scheduler's run counters.
pub fn validate_extract_fragment_par_stats<G: GraphAccess>(
    schema: &Schema,
    graph: &G,
    threads: usize,
) -> (ValidationReport, SchemaFragment, RunStats) {
    let threads = threads.max(1);
    let memo = Arc::new(ConformanceMemo::new());
    let mut plan_ctx = Context::with_memo(schema, graph, Arc::clone(&memo));
    let mut plans = Vec::new();
    let mut units = Vec::new();
    let mut seq = 0;
    for (d, def) in schema.iter().enumerate() {
        let nnf = Nnf::from_shape(&def.shape);
        let targets: Vec<TermId> = plan_ctx.target_nodes(&def.target).into_iter().collect();
        let evidence = TargetEvidence::analyze(&mut plan_ctx, &def.target);
        let per_node = targets.len() < BATCH_MIN_TARGETS || !shape_shares_work(schema, &nnf);
        let chunk = chunk_len(targets.len(), threads);
        let mut spans = Vec::new();
        spans_for(targets.len(), chunk, d, &mut seq, &mut spans);
        for s in spans {
            units.push(WorkUnit {
                cost: unit_cost(schema, &nnf, s.hi - s.lo),
                item: s,
            });
        }
        plans.push(ExtractPlan {
            name: &def.name,
            nnf,
            targets,
            evidence,
            per_node,
        });
    }
    drop(plan_ctx);
    struct State<'a, G: GraphAccess> {
        ctx: Context<'a, G>,
        journal: Vec<(TermId, TermId, TermId)>,
        triples: IdTriples,
        out: Vec<UnitOut>,
    }
    let (per_worker, stats) = run(
        units,
        threads,
        |_| State {
            ctx: Context::with_memo(schema, graph, Arc::clone(&memo)),
            journal: Vec::new(),
            triples: IdTriples::default(),
            out: Vec::new(),
        },
        |state, span: Span| {
            let plan = &plans[span.def];
            let nodes = &plan.targets[span.lo..span.hi];
            let mut violations = Vec::new();
            if plan.per_node {
                for &node in nodes {
                    state.journal.clear();
                    if conforms_and_collect(&mut state.ctx, node, &plan.nnf, &mut state.journal) {
                        state.triples.extend(state.journal.iter().copied());
                        plan.evidence
                            .collect(&mut state.ctx, node, &mut state.triples);
                    } else {
                        violations.push(violation(graph, plan.name, node));
                    }
                }
            } else {
                let decisions = state.ctx.conforms_all_nnf(nodes, &plan.nnf);
                let mut conforming: Vec<TermId> = Vec::with_capacity(nodes.len());
                for (node, ok) in nodes.iter().zip(decisions) {
                    if ok {
                        conforming.push(*node);
                        plan.evidence
                            .collect(&mut state.ctx, *node, &mut state.triples);
                    } else {
                        violations.push(violation(graph, plan.name, *node));
                    }
                }
                collect_neighborhood_many(
                    &mut state.ctx,
                    &conforming,
                    &plan.nnf,
                    &mut state.triples,
                );
            }
            state.out.push((span.seq, nodes.len(), violations));
        },
        |_, state| (state.out, state.triples),
    );
    let mut all = IdTriples::default();
    let mut outs = Vec::new();
    for (out, triples) in per_worker {
        all.extend(triples);
        outs.push(out);
    }
    (merge_report(outs), SchemaFragment::from_ids(all), stats)
}

/// Parallel [`crate::fragment_ids`]: the fragment for request shapes `S`,
/// partitioned by shape × node-chunk. The result is the identical id-triple
/// set (fragments are sets, so the union is order-free).
pub fn fragment_ids_par<G: GraphAccess>(
    schema: &Schema,
    graph: &G,
    shapes: &[Shape],
    threads: usize,
) -> IdTriples {
    fragment_ids_par_stats(schema, graph, shapes, threads).0
}

/// [`fragment_ids_par`] plus the scheduler's run counters.
pub fn fragment_ids_par_stats<G: GraphAccess>(
    schema: &Schema,
    graph: &G,
    shapes: &[Shape],
    threads: usize,
) -> (IdTriples, RunStats) {
    let threads = threads.max(1);
    let memo = Arc::new(ConformanceMemo::new());
    let nodes: Vec<TermId> = graph.node_ids().into_iter().collect();
    let nnfs: Vec<Nnf> = shapes.iter().map(Nnf::from_shape).collect();
    let mut units = Vec::new();
    let mut seq = 0;
    for (d, nnf) in nnfs.iter().enumerate() {
        let chunk = chunk_len(nodes.len(), threads);
        let mut spans = Vec::new();
        spans_for(nodes.len(), chunk, d, &mut seq, &mut spans);
        for s in spans {
            units.push(WorkUnit {
                cost: unit_cost(schema, nnf, s.hi - s.lo),
                item: s,
            });
        }
    }
    let (per_worker, stats) = run(
        units,
        threads,
        |_| {
            (
                Context::with_memo(schema, graph, Arc::clone(&memo)),
                IdTriples::default(),
            )
        },
        |(ctx, triples), span: Span| {
            let nnf = &nnfs[span.def];
            let chunk = &nodes[span.lo..span.hi];
            let decisions = ctx.conforms_all_nnf(chunk, nnf);
            let conforming: Vec<TermId> = chunk
                .iter()
                .zip(decisions)
                .filter(|(_, ok)| *ok)
                .map(|(&v, _)| v)
                .collect();
            collect_neighborhood_many(ctx, &conforming, nnf, triples);
        },
        |_, (_, triples)| triples,
    );
    let mut all = IdTriples::default();
    for triples in per_worker {
        all.extend(triples);
    }
    (all, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragment::fragment_ids;
    use crate::instrumented::validate_extract_fragment;
    use shapefrag_rdf::{Graph, Iri, Triple};
    use shapefrag_shacl::path::PathExpr;
    use shapefrag_shacl::ShapeDef;

    fn iri(n: &str) -> Iri {
        Iri::new(format!("http://e/{n}"))
    }

    fn term(n: &str) -> Term {
        Term::iri(format!("http://e/{n}"))
    }

    fn t(s: &str, p: &str, o: &str) -> Triple {
        Triple::new(term(s), iri(p), term(o))
    }

    fn p(n: &str) -> PathExpr {
        PathExpr::Prop(iri(n))
    }

    /// A chain graph with typed nodes: big enough to split into several
    /// chunks at 4–8 threads, with both conforming and violating targets.
    fn chain_graph(n: usize) -> Graph {
        let mut triples = Vec::new();
        for i in 0..n {
            triples.push(t(&format!("n{i}"), "next", &format!("n{}", (i + 1) % n)));
            triples.push(t(&format!("n{i}"), "type", "Node"));
            if i % 3 != 0 {
                triples.push(t(&format!("n{i}"), "label", &format!("l{i}")));
            }
        }
        Graph::from_triples(triples)
    }

    fn chain_schema() -> Schema {
        Schema::new([
            ShapeDef::new(
                term("Labelled"),
                Shape::geq(1, p("label"), Shape::True),
                Shape::geq(1, p("type"), Shape::has_value(term("Node"))),
            ),
            ShapeDef::new(
                term("Reaches"),
                Shape::geq(1, p("next").star(), Shape::has_value(term("n0"))),
                Shape::geq(1, p("type"), Shape::has_value(term("Node"))),
            ),
        ])
        .unwrap()
    }

    #[test]
    fn parallel_report_is_bit_identical_to_batch() {
        let g = chain_graph(300).freeze();
        let schema = chain_schema();
        let sequential = shapefrag_shacl::validate_batch(&schema, &g);
        for threads in [1, 2, 4, 8] {
            let (parallel, stats) = validate_batch_par_stats(&schema, &g, threads);
            assert_eq!(sequential, parallel, "threads = {threads}");
            assert!(stats.units > 0);
        }
    }

    #[test]
    fn containment_parallel_is_bit_identical_and_skips() {
        let g = chain_graph(300).freeze();
        // Labelled2 duplicates Labelled; Labelled1of2 is weaker than both.
        let target = Shape::geq(1, p("type"), Shape::has_value(term("Node")));
        let schema = Schema::new([
            ShapeDef::new(
                term("Labelled"),
                Shape::geq(2, p("label").or(p("alt")), Shape::True),
                target.clone(),
            ),
            ShapeDef::new(
                term("Labelled1of2"),
                Shape::geq(1, p("label").or(p("alt")), Shape::True),
                target.clone(),
            ),
            ShapeDef::new(
                term("Labelled2"),
                Shape::geq(2, p("label").or(p("alt")), Shape::True),
                target.clone(),
            ),
            ShapeDef::new(
                term("Reaches"),
                Shape::geq(1, p("next").star(), Shape::has_value(term("n0"))),
                target,
            ),
        ])
        .unwrap();
        let matrix = shapefrag_analyze::ContainmentMatrix::of_schema(&schema);
        let index = Arc::new(matrix.to_index(&schema));
        let sequential = shapefrag_shacl::validate_batch(&schema, &g);
        for threads in [1, 2, 4] {
            let (report, stats) =
                validate_batch_par_containment(&schema, &g, threads, Arc::clone(&index));
            assert_eq!(sequential, report, "threads = {threads}");
            assert_eq!(stats.shapes_skipped, 1, "threads = {threads}");
            assert_eq!(stats.targets_deduped, 3, "threads = {threads}");
            assert!(stats.checks_derived > 0, "threads = {threads}");
        }
        // A mismatched index is refused and the run stays exact.
        let other = Schema::new([ShapeDef::new(
            term("Only"),
            Shape::geq(1, p("label"), Shape::True),
            Shape::True,
        )])
        .unwrap();
        let stale =
            Arc::new(shapefrag_analyze::ContainmentMatrix::of_schema(&other).to_index(&other));
        let (report, stats) = validate_batch_par_containment(&schema, &g, 2, stale);
        assert_eq!(sequential, report);
        assert_eq!(stats.shapes_skipped, 0);
    }

    #[test]
    fn parallel_extract_matches_sequential() {
        let g = chain_graph(200).freeze();
        let schema = chain_schema();
        let (seq_report, seq_frag) = validate_extract_fragment(&schema, &g);
        for threads in [1, 2, 4, 8] {
            let (report, frag) = validate_extract_fragment_par(&schema, &g, threads);
            assert_eq!(seq_report, report, "threads = {threads}");
            assert_eq!(
                seq_frag.to_graph(&g),
                frag.to_graph(&g),
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn parallel_fragment_ids_match_sequential() {
        let g = chain_graph(150).freeze();
        let schema = chain_schema();
        let shapes = schema.request_shapes();
        let sequential = fragment_ids(&schema, &g, &shapes);
        for threads in [1, 2, 4, 8] {
            let parallel = fragment_ids_par(&schema, &g, &shapes, threads);
            assert_eq!(sequential, parallel, "threads = {threads}");
        }
    }

    #[test]
    fn governed_parallel_agrees_when_unconstrained() {
        let g = chain_graph(120).freeze();
        let schema = chain_schema();
        let sequential = shapefrag_shacl::validate_batch(&schema, &g);
        for threads in [1, 2, 4] {
            let report =
                validate_batch_par_governed(&schema, &g, threads, Budget::unlimited(), None)
                    .expect("unlimited budget cannot fault");
            assert_eq!(sequential, report, "threads = {threads}");
        }
    }

    #[test]
    fn governed_parallel_surfaces_budget_fault() {
        let g = chain_graph(200).freeze();
        let schema = chain_schema();
        for threads in [2, 4] {
            let err = validate_batch_par_governed(
                &schema,
                &g,
                threads,
                Budget::unlimited().steps(5),
                None,
            )
            .expect_err("five steps cannot validate 200 nodes");
            assert!(
                matches!(err, EngineError::BudgetExceeded { .. }),
                "threads = {threads}: {err:?}"
            );
        }
    }

    #[test]
    fn governed_parallel_observes_pre_cancelled_token() {
        let g = chain_graph(100).freeze();
        let schema = chain_schema();
        let token = CancelToken::new();
        token.cancel();
        let err = validate_batch_par_governed(&schema, &g, 4, Budget::unlimited(), Some(&token))
            .expect_err("cancelled before start");
        assert_eq!(err, EngineError::Cancelled);
    }

    #[test]
    fn empty_schema_and_empty_graph_are_fine() {
        let g = Graph::default().freeze();
        let schema = Schema::empty();
        let (report, stats) = validate_batch_par_stats(&schema, &g, 4);
        assert!(report.conforms());
        assert_eq!(report.checked, 0);
        assert_eq!(stats.units, 0);
        let (frag, _) = fragment_ids_par_stats(&schema, &g, &[], 4);
        assert!(frag.is_empty());
    }
}
