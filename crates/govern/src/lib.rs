//! # shapefrag-govern
//!
//! Resource governance for the validation stack: wall-clock deadlines, step
//! and memory-estimate budgets, recursion-depth guards, and cooperative
//! cancellation, surfaced through the unified [`EngineError`] taxonomy.
//!
//! Every long-running kernel in the workspace (RPQ product-BFS, batch
//! conformance, neighborhood collection, SPARQL evaluation) accepts an
//! [`ExecCtx`] and calls [`ExecCtx::tick`] once per unit of work (queue pop,
//! produced binding, conformance check). Ticks are counted unconditionally;
//! the *expensive* checks — reading the clock and the cancellation flag —
//! run only every [`CHECK_STRIDE`] ticks, which keeps the overhead of
//! governance below the 5% budget documented in DESIGN.md §9.
//!
//! ```
//! use std::time::Duration;
//! use shapefrag_govern::{Budget, EngineError, ExecCtx};
//!
//! let ctx = ExecCtx::with_budget(Budget::default().steps(100));
//! let mut result = Ok(());
//! for _ in 0..1000 {
//!     result = ctx.tick(1);
//!     if result.is_err() {
//!         break;
//!     }
//! }
//! assert!(matches!(result, Err(EngineError::BudgetExceeded { .. })));
//! ```
#![forbid(unsafe_code)]

use std::cell::Cell;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How many ticks pass between consultations of the clock and the
/// cancellation flag. A queue pop in the RPQ kernel costs tens of
/// nanoseconds, so a stride of 1024 bounds the observation latency for
/// deadlines and cancellation to well under a millisecond while making the
/// per-tick cost a counter decrement.
pub const CHECK_STRIDE: u32 = 1024;

/// Which budget was exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BudgetKind {
    /// The step budget (units of engine work).
    Steps,
    /// The memory-estimate budget (bytes of intermediate state).
    Memory,
}

impl fmt::Display for BudgetKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BudgetKind::Steps => write!(f, "step"),
            BudgetKind::Memory => write!(f, "memory"),
        }
    }
}

/// Machine-readable classification of parse errors, shared across the
/// Turtle, N-Triples, SPARQL, and shapes-graph parsers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorCode {
    /// Generic syntax error (the default for positioned errors).
    Syntax,
    /// A character that cannot start or continue the expected token.
    UnexpectedChar,
    /// Input ended inside a statement or token.
    UnexpectedEof,
    /// A string literal was never closed.
    UnterminatedString,
    /// An IRI reference was never closed.
    UnterminatedIri,
    /// A malformed `\`-escape inside a string or IRI.
    InvalidEscape,
    /// A malformed numeric literal.
    InvalidNumber,
    /// A prefixed name used a prefix that was never declared.
    UndeclaredPrefix,
    /// Structurally invalid input (e.g. a literal in subject position, a
    /// malformed shapes-graph description).
    BadStructure,
    /// Nesting exceeded the parser's recursion-depth guard.
    DepthLimit,
}

impl ErrorCode {
    /// Stable identifier for diagnostics and machine consumption.
    pub fn as_str(&self) -> &'static str {
        match self {
            ErrorCode::Syntax => "syntax",
            ErrorCode::UnexpectedChar => "unexpected-char",
            ErrorCode::UnexpectedEof => "unexpected-eof",
            ErrorCode::UnterminatedString => "unterminated-string",
            ErrorCode::UnterminatedIri => "unterminated-iri",
            ErrorCode::InvalidEscape => "invalid-escape",
            ErrorCode::InvalidNumber => "invalid-number",
            ErrorCode::UndeclaredPrefix => "undeclared-prefix",
            ErrorCode::BadStructure => "bad-structure",
            ErrorCode::DepthLimit => "depth-limit",
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

/// The unified error taxonomy surfaced by every governed entry point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A step or memory-estimate budget was exhausted.
    BudgetExceeded {
        /// Which budget ran out.
        kind: BudgetKind,
        /// The configured limit.
        limit: u64,
    },
    /// The wall-clock deadline passed.
    DeadlineExceeded {
        /// The configured deadline, in milliseconds.
        budget_ms: u64,
    },
    /// The request was cancelled through its [`CancelToken`].
    Cancelled,
    /// Recursion exceeded the configured depth guard.
    DepthLimit {
        /// The configured maximum depth.
        limit: u32,
    },
    /// The input could not be parsed or is structurally invalid.
    Malformed {
        /// Machine-readable classification.
        code: ErrorCode,
        /// 1-based line of the defect (0 when unknown).
        line: usize,
        /// 1-based column of the defect (0 when unknown).
        column: usize,
        /// Human-readable description.
        message: String,
    },
}

impl EngineError {
    /// Convenience constructor for positionless malformed-input errors.
    pub fn malformed(code: ErrorCode, message: impl Into<String>) -> Self {
        EngineError::Malformed {
            code,
            line: 0,
            column: 0,
            message: message.into(),
        }
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::BudgetExceeded { kind, limit } => {
                write!(f, "{kind} budget exceeded (limit {limit})")
            }
            EngineError::DeadlineExceeded { budget_ms } => {
                write!(f, "deadline exceeded ({budget_ms}ms)")
            }
            EngineError::Cancelled => write!(f, "cancelled"),
            EngineError::DepthLimit { limit } => {
                write!(f, "recursion depth limit exceeded (limit {limit})")
            }
            EngineError::Malformed {
                code,
                line,
                column,
                message,
            } => {
                if *line == 0 {
                    write!(f, "malformed input [{code}]: {message}")
                } else {
                    write!(f, "malformed input [{code}] at {line}:{column}: {message}")
                }
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// A cooperative cancellation flag, cheap to clone and share across
/// threads. Setting it makes every governed kernel holding a clone return
/// [`EngineError::Cancelled`] within one check stride.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent; may be called from any thread.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// Declarative resource limits. `None`/unset fields are unlimited.
#[derive(Debug, Clone, Copy, Default)]
pub struct Budget {
    /// Maximum engine steps (queue pops, conformance checks, bindings).
    pub steps: Option<u64>,
    /// Maximum estimated bytes of intermediate state.
    pub memory_bytes: Option<u64>,
    /// Maximum wall-clock duration, measured from [`ExecCtx`] creation.
    pub deadline: Option<Duration>,
    /// Maximum recursion depth for shape/data traversal.
    pub max_depth: Option<u32>,
}

impl Budget {
    /// No limits at all (identical to `Budget::default()`).
    pub fn unlimited() -> Self {
        Budget::default()
    }

    /// Caps engine steps.
    pub fn steps(mut self, steps: u64) -> Self {
        self.steps = Some(steps);
        self
    }

    /// Caps the memory estimate, in bytes.
    pub fn memory_bytes(mut self, bytes: u64) -> Self {
        self.memory_bytes = Some(bytes);
        self
    }

    /// Sets a wall-clock deadline relative to context creation.
    pub fn deadline(mut self, d: Duration) -> Self {
        self.deadline = Some(d);
        self
    }

    /// Caps recursion depth.
    pub fn max_depth(mut self, depth: u32) -> Self {
        self.max_depth = Some(depth);
        self
    }

    /// Splits the budget across `n` parallel workers: step and memory
    /// limits are divided (floored at 1 so a worker can always fault with
    /// a meaningful limit), while the deadline and depth limit — which are
    /// per-worker properties of wall-clock and recursion, not shared
    /// resources — carry over unchanged.
    pub fn split(&self, n: usize) -> Budget {
        let n = n.max(1) as u64;
        Budget {
            steps: self.steps.map(|s| (s / n).max(1)),
            memory_bytes: self.memory_bytes.map(|m| (m / n).max(1)),
            deadline: self.deadline,
            max_depth: self.max_depth,
        }
    }
}

/// Per-request execution context: a [`Budget`], an optional
/// [`CancelToken`], and the live counters. Single-threaded by design (the
/// counters are `Cell`s); share the *token* across threads, not the
/// context.
#[derive(Debug)]
pub struct ExecCtx {
    deadline: Option<Instant>,
    deadline_ms: u64,
    step_limit: u64,
    mem_limit: u64,
    depth_limit: u32,
    cancel: Option<CancelToken>,
    steps: Cell<u64>,
    mem: Cell<u64>,
    depth: Cell<u32>,
    until_check: Cell<u32>,
}

impl Default for ExecCtx {
    fn default() -> Self {
        ExecCtx::unbounded()
    }
}

impl ExecCtx {
    /// A context with no limits and no cancellation: `tick`/`charge`/`enter`
    /// can never fail. Used by the legacy (ungoverned) entry points.
    pub fn unbounded() -> Self {
        ExecCtx::with_budget(Budget::unlimited())
    }

    /// A context enforcing the given budget.
    pub fn with_budget(budget: Budget) -> Self {
        ExecCtx {
            deadline: budget.deadline.map(|d| Instant::now() + d),
            deadline_ms: budget.deadline.map(|d| d.as_millis() as u64).unwrap_or(0),
            step_limit: budget.steps.unwrap_or(u64::MAX),
            mem_limit: budget.memory_bytes.unwrap_or(u64::MAX),
            depth_limit: budget.max_depth.unwrap_or(u32::MAX),
            cancel: None,
            steps: Cell::new(0),
            mem: Cell::new(0),
            depth: Cell::new(0),
            until_check: Cell::new(CHECK_STRIDE),
        }
    }

    /// Attaches a cancellation token (builder style).
    pub fn with_cancel(mut self, token: &CancelToken) -> Self {
        self.cancel = Some(token.clone());
        self
    }

    /// Steps consumed so far.
    pub fn steps_used(&self) -> u64 {
        self.steps.get()
    }

    /// Estimated bytes charged so far.
    pub fn memory_used(&self) -> u64 {
        self.mem.get()
    }

    /// Current recursion depth.
    pub fn depth(&self) -> u32 {
        self.depth.get()
    }

    /// Records `n` units of work. Fails once the step budget is exhausted;
    /// every [`CHECK_STRIDE`] ticks it also consults the cancellation flag
    /// and the wall clock.
    #[inline]
    pub fn tick(&self, n: u64) -> Result<(), EngineError> {
        let steps = self.steps.get().saturating_add(n);
        self.steps.set(steps);
        if steps > self.step_limit {
            return Err(EngineError::BudgetExceeded {
                kind: BudgetKind::Steps,
                limit: self.step_limit,
            });
        }
        let until = u64::from(self.until_check.get());
        if until > n {
            self.until_check.set((until - n) as u32);
            Ok(())
        } else {
            self.until_check.set(CHECK_STRIDE);
            self.check_now()
        }
    }

    /// Consults the cancellation flag and the deadline immediately,
    /// bypassing the stride. Used at phase boundaries (per target shape,
    /// per source chunk) so even tick-free stretches stay responsive.
    pub fn check_now(&self) -> Result<(), EngineError> {
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                return Err(EngineError::Cancelled);
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(EngineError::DeadlineExceeded {
                    budget_ms: self.deadline_ms,
                });
            }
        }
        Ok(())
    }

    /// Charges `bytes` against the memory-estimate budget.
    #[inline]
    pub fn charge(&self, bytes: u64) -> Result<(), EngineError> {
        let mem = self.mem.get().saturating_add(bytes);
        self.mem.set(mem);
        if mem > self.mem_limit {
            return Err(EngineError::BudgetExceeded {
                kind: BudgetKind::Memory,
                limit: self.mem_limit,
            });
        }
        Ok(())
    }

    /// Releases `bytes` of the memory estimate (freed intermediate state).
    #[inline]
    pub fn release(&self, bytes: u64) {
        self.mem.set(self.mem.get().saturating_sub(bytes));
    }

    /// Enters one recursion level; pair with [`ExecCtx::leave`] on every
    /// exit path. Also counts one step.
    #[inline]
    pub fn enter(&self) -> Result<(), EngineError> {
        let d = self.depth.get() + 1;
        if d > self.depth_limit {
            return Err(EngineError::DepthLimit {
                limit: self.depth_limit,
            });
        }
        self.depth.set(d);
        self.tick(1)
    }

    /// Leaves one recursion level.
    #[inline]
    pub fn leave(&self) {
        let d = self.depth.get();
        self.depth.set(d.saturating_sub(1));
    }
}

/// Scoped memory accounting: charges accumulate against the context and are
/// released automatically when the guard drops, on success and error paths
/// alike. Kernels create one guard per traversal whose intermediate
/// structures (visited sets, bit matrices, queues) die with the call.
pub struct MemGuard<'a> {
    ctx: &'a ExecCtx,
    bytes: u64,
}

impl<'a> MemGuard<'a> {
    /// A guard with nothing charged yet.
    pub fn new(ctx: &'a ExecCtx) -> Self {
        MemGuard { ctx, bytes: 0 }
    }

    /// Charges `bytes`, remembering them for release on drop.
    #[inline]
    pub fn charge(&mut self, bytes: u64) -> Result<(), EngineError> {
        self.bytes += bytes;
        self.ctx.charge(bytes)
    }

    /// Bytes charged through this guard so far.
    pub fn charged(&self) -> u64 {
        self.bytes
    }
}

impl Drop for MemGuard<'_> {
    fn drop(&mut self) {
        self.ctx.release(self.bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_never_fails() {
        let ctx = ExecCtx::unbounded();
        for _ in 0..10_000 {
            ctx.tick(7).unwrap();
        }
        ctx.charge(u64::MAX / 2).unwrap();
        ctx.enter().unwrap();
        ctx.leave();
    }

    #[test]
    fn split_divides_shared_limits_and_keeps_per_worker_ones() {
        let b = Budget::unlimited()
            .steps(100)
            .memory_bytes(64)
            .deadline(Duration::from_secs(5))
            .max_depth(9);
        let s = b.split(4);
        assert_eq!(s.steps, Some(25));
        assert_eq!(s.memory_bytes, Some(16));
        assert_eq!(s.deadline, Some(Duration::from_secs(5)));
        assert_eq!(s.max_depth, Some(9));
        // Tiny budgets floor at 1 instead of 0 (which would mean "unlimited
        // minus everything" ambiguity); unlimited fields stay unlimited.
        let tiny = Budget::unlimited().steps(2).split(8);
        assert_eq!(tiny.steps, Some(1));
        assert_eq!(tiny.memory_bytes, None);
        // n = 0 is treated as 1.
        assert_eq!(b.split(0).steps, Some(100));
    }

    #[test]
    fn split_edge_cases() {
        // split(1) is the identity on every field.
        let b = Budget::unlimited()
            .steps(10)
            .memory_bytes(1024)
            .deadline(Duration::from_millis(250))
            .max_depth(4);
        let s = b.split(1);
        assert_eq!(s.steps, b.steps);
        assert_eq!(s.memory_bytes, b.memory_bytes);
        assert_eq!(s.deadline, b.deadline);
        assert_eq!(s.max_depth, b.max_depth);

        // Remainders are dropped, never redistributed: 10 steps over 3
        // workers is 3 each (9 total — conservative, the pool can only
        // spend less than the parent budget, never more).
        assert_eq!(Budget::unlimited().steps(10).split(3).steps, Some(3));

        // More workers than steps floors at 1 per worker rather than 0,
        // which `steps(0)` would make indistinguishable from a context
        // that faults before doing anything at all.
        assert_eq!(Budget::unlimited().steps(2).split(1000).steps, Some(1));
        assert_eq!(
            Budget::unlimited().memory_bytes(3).split(64).memory_bytes,
            Some(1)
        );

        // A fully unlimited budget splits to a fully unlimited budget.
        let open = Budget::unlimited().split(16);
        assert_eq!(open.steps, None);
        assert_eq!(open.memory_bytes, None);
        assert_eq!(open.deadline, None);
        assert_eq!(open.max_depth, None);

        // The split budget is live: a context built from it faults at the
        // per-worker limit, reporting the *split* limit, not the parent's.
        let ctx = ExecCtx::with_budget(Budget::unlimited().steps(10).split(3));
        ctx.tick(3).unwrap();
        assert_eq!(
            ctx.tick(1),
            Err(EngineError::BudgetExceeded {
                kind: BudgetKind::Steps,
                limit: 3
            })
        );
    }

    #[test]
    fn step_budget_trips() {
        let ctx = ExecCtx::with_budget(Budget::unlimited().steps(10));
        let mut last = Ok(());
        for _ in 0..20 {
            last = ctx.tick(1);
            if last.is_err() {
                break;
            }
        }
        assert_eq!(
            last,
            Err(EngineError::BudgetExceeded {
                kind: BudgetKind::Steps,
                limit: 10
            })
        );
    }

    #[test]
    fn memory_budget_trips_and_releases() {
        let ctx = ExecCtx::with_budget(Budget::unlimited().memory_bytes(100));
        ctx.charge(60).unwrap();
        ctx.release(30);
        ctx.charge(60).unwrap();
        assert!(matches!(
            ctx.charge(60),
            Err(EngineError::BudgetExceeded {
                kind: BudgetKind::Memory,
                ..
            })
        ));
    }

    #[test]
    fn deadline_trips() {
        let ctx = ExecCtx::with_budget(Budget::unlimited().deadline(Duration::from_millis(0)));
        std::thread::sleep(Duration::from_millis(2));
        assert!(matches!(
            ctx.check_now(),
            Err(EngineError::DeadlineExceeded { .. })
        ));
        // The strided path sees it within one stride.
        let mut last = Ok(());
        for _ in 0..=CHECK_STRIDE {
            last = ctx.tick(1);
            if last.is_err() {
                break;
            }
        }
        assert!(matches!(last, Err(EngineError::DeadlineExceeded { .. })));
    }

    #[test]
    fn cancellation_observed_within_one_stride() {
        let token = CancelToken::new();
        let ctx = ExecCtx::unbounded().with_cancel(&token);
        ctx.tick(1).unwrap();
        token.cancel();
        let mut ticks = 0u32;
        let mut last = Ok(());
        while ticks <= 2 * CHECK_STRIDE {
            last = ctx.tick(1);
            ticks += 1;
            if last.is_err() {
                break;
            }
        }
        assert_eq!(last, Err(EngineError::Cancelled));
        assert!(ticks <= CHECK_STRIDE + 1);
    }

    #[test]
    fn depth_guard_trips() {
        let ctx = ExecCtx::with_budget(Budget::unlimited().max_depth(3));
        ctx.enter().unwrap();
        ctx.enter().unwrap();
        ctx.enter().unwrap();
        assert_eq!(ctx.enter(), Err(EngineError::DepthLimit { limit: 3 }));
        ctx.leave();
        ctx.leave();
        ctx.leave();
        assert_eq!(ctx.depth(), 0);
        ctx.enter().unwrap();
    }

    #[test]
    fn large_tick_still_checks() {
        let token = CancelToken::new();
        token.cancel();
        let ctx = ExecCtx::unbounded().with_cancel(&token);
        // A single tick larger than the stride must not skip the check.
        assert_eq!(
            ctx.tick(u64::from(CHECK_STRIDE) * 4),
            Err(EngineError::Cancelled)
        );
    }

    #[test]
    fn mem_guard_releases_on_drop() {
        let ctx = ExecCtx::with_budget(Budget::unlimited().memory_bytes(100));
        {
            let mut guard = MemGuard::new(&ctx);
            guard.charge(80).unwrap();
            assert_eq!(ctx.memory_used(), 80);
            assert!(guard.charge(80).is_err());
        }
        assert_eq!(ctx.memory_used(), 0);
        ctx.charge(90).unwrap();
    }

    #[test]
    fn errors_render() {
        assert_eq!(EngineError::Cancelled.to_string(), "cancelled");
        assert!(EngineError::malformed(ErrorCode::UnexpectedEof, "eof")
            .to_string()
            .contains("unexpected-eof"));
        assert!(EngineError::DepthLimit { limit: 5 }
            .to_string()
            .contains('5'));
    }
}
