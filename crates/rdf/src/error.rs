//! Parse errors for the RDF syntaxes.

use std::fmt;

/// An error while parsing N-Triples or Turtle, carrying the 1-based line and
/// column where it was detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub line: usize,
    pub column: usize,
    pub message: String,
}

impl ParseError {
    pub fn new(line: usize, column: usize, message: impl Into<String>) -> Self {
        ParseError {
            line,
            column,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at {}:{}: {}",
            self.line, self.column, self.message
        )
    }
}

impl std::error::Error for ParseError {}
