//! Parse errors and lossy-load reports for the RDF syntaxes.

use std::fmt;

use shapefrag_govern::{EngineError, ErrorCode};

use crate::graph::Graph;

/// An error while parsing N-Triples or Turtle, carrying the 1-based line and
/// column where it was detected plus a machine-readable [`ErrorCode`]
/// shared with the SPARQL and shapes-graph parsers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub line: usize,
    pub column: usize,
    pub code: ErrorCode,
    pub message: String,
}

impl ParseError {
    /// A generic syntax error ([`ErrorCode::Syntax`]) at a position.
    pub fn new(line: usize, column: usize, message: impl Into<String>) -> Self {
        ParseError::with_code(ErrorCode::Syntax, line, column, message)
    }

    /// A classified error at a position.
    pub fn with_code(
        code: ErrorCode,
        line: usize,
        column: usize,
        message: impl Into<String>,
    ) -> Self {
        ParseError {
            line,
            column,
            code,
            message: message.into(),
        }
    }

    /// Reclassifies the error (builder style).
    pub fn code(mut self, code: ErrorCode) -> Self {
        self.code = code;
        self
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error [{}] at {}:{}: {}",
            self.code, self.line, self.column, self.message
        )
    }
}

impl std::error::Error for ParseError {}

impl From<ParseError> for EngineError {
    fn from(e: ParseError) -> Self {
        EngineError::Malformed {
            code: e.code,
            line: e.line,
            column: e.column,
            message: e.message,
        }
    }
}

/// The result of an error-recovering (*lossy*) load: the triples of every
/// statement that parsed, plus one positioned diagnostic per skipped
/// region. See DESIGN.md §9 for the recovery rules.
#[derive(Debug, Clone, Default)]
pub struct LossyLoad {
    /// Everything that parsed.
    pub graph: Graph,
    /// One entry per failed statement, in document order.
    pub diagnostics: Vec<ParseError>,
    /// Statements (triples or directives) that parsed cleanly.
    pub statements_ok: usize,
    /// Statements skipped after a parse error.
    pub statements_skipped: usize,
}

impl LossyLoad {
    /// True when nothing was skipped.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}
