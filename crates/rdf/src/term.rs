//! RDF terms: IRIs, blank nodes, and literals.
//!
//! Following the paper's preliminaries (§2), we assume three pairwise
//! disjoint sets *I* (IRIs), *L* (literals) and *B* (blank nodes); the set
//! of nodes is `N = I ∪ B ∪ L`. An RDF triple is an element of
//! `(I ∪ B) × I × N`.

use std::fmt;
use std::sync::Arc;

use crate::value::LiteralValue;
use crate::vocab::xsd;

/// An IRI (Internationalized Resource Identifier).
///
/// IRIs are stored as shared strings so cloning a term is cheap; graphs and
/// engines additionally intern terms into dense integer ids (see
/// [`crate::graph::TermId`]).
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Iri(Arc<str>);

impl Iri {
    /// Creates an IRI from its string form. No resolution is performed; the
    /// string is used verbatim as the identifier.
    pub fn new(iri: impl Into<Arc<str>>) -> Self {
        Iri(iri.into())
    }

    /// The IRI string.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Debug for Iri {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{}>", self.0)
    }
}

impl fmt::Display for Iri {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{}>", self.0)
    }
}

impl From<&str> for Iri {
    fn from(s: &str) -> Self {
        Iri::new(s)
    }
}

impl From<String> for Iri {
    fn from(s: String) -> Self {
        Iri::new(s)
    }
}

/// A blank node, identified by its label.
///
/// Labels are only meaningful within a single graph; parsers keep document
/// labels, generated blank nodes use a `b<counter>` scheme.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlankNode(Arc<str>);

impl BlankNode {
    /// Creates a blank node with the given label (without the `_:` prefix).
    pub fn new(label: impl Into<Arc<str>>) -> Self {
        BlankNode(label.into())
    }

    /// The blank node label (without the `_:` prefix).
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Debug for BlankNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "_:{}", self.0)
    }
}

impl fmt::Display for BlankNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "_:{}", self.0)
    }
}

/// An RDF literal: a lexical form plus either a language tag or a datatype.
///
/// The paper abstracts literals by an equivalence `~` ("same language tag")
/// and a strict partial order `<` (numeric / string / dateTime comparisons);
/// both are realized through the parsed [`LiteralValue`] obtained with
/// [`Literal::value`].
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Literal {
    lexical: Arc<str>,
    /// Language tag, lower-cased, for `rdf:langString` literals.
    language: Option<Arc<str>>,
    /// Datatype IRI. `xsd:string` for plain literals, `rdf:langString` when a
    /// language tag is present.
    datatype: Iri,
}

impl Literal {
    /// A simple `xsd:string` literal.
    pub fn string(lexical: impl Into<Arc<str>>) -> Self {
        Literal {
            lexical: lexical.into(),
            language: None,
            datatype: xsd::string(),
        }
    }

    /// A language-tagged string (`rdf:langString`). Tags compare
    /// case-insensitively, so the tag is lower-cased on construction.
    pub fn lang_string(lexical: impl Into<Arc<str>>, lang: &str) -> Self {
        Literal {
            lexical: lexical.into(),
            language: Some(lang.to_ascii_lowercase().into()),
            datatype: crate::vocab::rdf::lang_string(),
        }
    }

    /// A literal with an explicit datatype.
    pub fn typed(lexical: impl Into<Arc<str>>, datatype: Iri) -> Self {
        Literal {
            lexical: lexical.into(),
            language: None,
            datatype,
        }
    }

    /// An `xsd:integer` literal.
    pub fn integer(value: i64) -> Self {
        Literal::typed(value.to_string(), xsd::integer())
    }

    /// An `xsd:decimal` literal.
    pub fn decimal(value: f64) -> Self {
        Literal::typed(format!("{value}"), xsd::decimal())
    }

    /// An `xsd:double` literal.
    pub fn double(value: f64) -> Self {
        Literal::typed(format!("{value}"), xsd::double())
    }

    /// An `xsd:boolean` literal.
    pub fn boolean(value: bool) -> Self {
        Literal::typed(if value { "true" } else { "false" }, xsd::boolean())
    }

    /// The lexical form.
    pub fn lexical(&self) -> &str {
        &self.lexical
    }

    /// The language tag (lower-cased), if any.
    pub fn language(&self) -> Option<&str> {
        self.language.as_deref()
    }

    /// The datatype IRI.
    pub fn datatype(&self) -> &Iri {
        &self.datatype
    }

    /// Parses the lexical form according to the datatype, yielding the typed
    /// value used for ordering and filtering. Returns
    /// [`LiteralValue::Other`] for unrecognized datatypes or ill-formed
    /// lexical forms.
    pub fn value(&self) -> LiteralValue {
        LiteralValue::parse(&self.lexical, &self.datatype)
    }

    /// The paper's `~` relation: both literals carry a language tag and the
    /// tags are equal (case-insensitive).
    pub fn same_language(&self, other: &Literal) -> bool {
        matches!((&self.language, &other.language), (Some(a), Some(b)) if a == b)
    }
}

impl fmt::Debug for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "\"{}\"", escape_literal(&self.lexical))?;
        if let Some(lang) = &self.language {
            write!(f, "@{lang}")
        } else if self.datatype.as_str() != crate::vocab::XSD_STRING {
            write!(f, "^^{}", self.datatype)
        } else {
            Ok(())
        }
    }
}

/// Escapes a literal's lexical form for N-Triples/Turtle output.
pub fn escape_literal(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            _ => out.push(c),
        }
    }
    out
}

/// A node: an element of `N = I ∪ B ∪ L`.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    Iri(Iri),
    Blank(BlankNode),
    Literal(Literal),
}

impl Term {
    /// Convenience constructor for an IRI term.
    pub fn iri(iri: impl Into<Arc<str>>) -> Self {
        Term::Iri(Iri::new(iri))
    }

    /// Convenience constructor for a blank node term.
    pub fn blank(label: impl Into<Arc<str>>) -> Self {
        Term::Blank(BlankNode::new(label))
    }

    /// True iff this term is an IRI.
    pub fn is_iri(&self) -> bool {
        matches!(self, Term::Iri(_))
    }

    /// True iff this term is a blank node.
    pub fn is_blank(&self) -> bool {
        matches!(self, Term::Blank(_))
    }

    /// True iff this term is a literal.
    pub fn is_literal(&self) -> bool {
        matches!(self, Term::Literal(_))
    }

    /// The IRI, if this term is one.
    pub fn as_iri(&self) -> Option<&Iri> {
        match self {
            Term::Iri(iri) => Some(iri),
            _ => None,
        }
    }

    /// The literal, if this term is one.
    pub fn as_literal(&self) -> Option<&Literal> {
        match self {
            Term::Literal(lit) => Some(lit),
            _ => None,
        }
    }

    /// True iff this term may appear in subject position (`I ∪ B`).
    pub fn is_subject(&self) -> bool {
        !self.is_literal()
    }
}

impl fmt::Debug for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Iri(v) => fmt::Debug::fmt(v, f),
            Term::Blank(v) => fmt::Debug::fmt(v, f),
            Term::Literal(v) => fmt::Debug::fmt(v, f),
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Iri(v) => fmt::Display::fmt(v, f),
            Term::Blank(v) => fmt::Display::fmt(v, f),
            Term::Literal(v) => fmt::Display::fmt(v, f),
        }
    }
}

impl From<Iri> for Term {
    fn from(iri: Iri) -> Self {
        Term::Iri(iri)
    }
}

impl From<BlankNode> for Term {
    fn from(b: BlankNode) -> Self {
        Term::Blank(b)
    }
}

impl From<Literal> for Term {
    fn from(l: Literal) -> Self {
        Term::Literal(l)
    }
}

/// An RDF triple `(s, p, o) ∈ (I ∪ B) × I × N`.
///
/// The subject is stored as a [`Term`] with the invariant (enforced by
/// [`Triple::new`] and the graph store) that it is never a literal.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Triple {
    pub subject: Term,
    pub predicate: Iri,
    pub object: Term,
}

impl Triple {
    /// Creates a triple. Panics if `subject` is a literal — such a triple is
    /// not an RDF triple (§2); parsers reject this earlier with a proper
    /// error.
    pub fn new(
        subject: impl Into<Term>,
        predicate: impl Into<Iri>,
        object: impl Into<Term>,
    ) -> Self {
        let subject = subject.into();
        assert!(
            subject.is_subject(),
            "triple subject must be an IRI or blank node, got literal {subject}"
        );
        Triple {
            subject,
            predicate: predicate.into(),
            object: object.into(),
        }
    }
}

impl fmt::Debug for Triple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {} .", self.subject, self.predicate, self.object)
    }
}

impl fmt::Display for Triple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {} .", self.subject, self.predicate, self.object)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iri_display_and_eq() {
        let a = Iri::new("http://example.org/a");
        let b = Iri::new("http://example.org/a");
        assert_eq!(a, b);
        assert_eq!(a.to_string(), "<http://example.org/a>");
    }

    #[test]
    fn lang_tags_are_case_insensitive() {
        let a = Literal::lang_string("chat", "FR");
        let b = Literal::lang_string("cat", "fr");
        assert!(a.same_language(&b));
        assert_eq!(a.language(), Some("fr"));
    }

    #[test]
    fn plain_literals_have_no_language() {
        let a = Literal::string("x");
        let b = Literal::string("x");
        assert!(!a.same_language(&b));
    }

    #[test]
    fn literal_display_forms() {
        assert_eq!(Literal::string("hi").to_string(), "\"hi\"");
        assert_eq!(Literal::lang_string("hi", "en").to_string(), "\"hi\"@en");
        assert_eq!(
            Literal::integer(42).to_string(),
            "\"42\"^^<http://www.w3.org/2001/XMLSchema#integer>"
        );
    }

    #[test]
    fn literal_escaping() {
        assert_eq!(
            Literal::string("a\"b\\c\nd").to_string(),
            "\"a\\\"b\\\\c\\nd\""
        );
    }

    #[test]
    #[should_panic(expected = "subject must be an IRI or blank node")]
    fn literal_subject_rejected() {
        let _ = Triple::new(
            Term::Literal(Literal::string("x")),
            Iri::new("p"),
            Term::iri("o"),
        );
    }

    #[test]
    fn term_kind_predicates() {
        assert!(Term::iri("a").is_iri());
        assert!(Term::blank("b").is_blank());
        assert!(Term::Literal(Literal::string("c")).is_literal());
        assert!(Term::iri("a").is_subject());
        assert!(!Term::Literal(Literal::string("c")).is_subject());
    }
}
