//! In-memory indexed RDF graph store.
//!
//! A [`Graph`] is a finite set of triples with set semantics. Terms are
//! interned into dense [`TermId`]s; three indexes (subject→predicate→objects,
//! object→predicate→subjects, predicate→(subject,object) pairs) support the
//! access paths needed by path evaluation, validation, and SPARQL:
//!
//! - `objects(s, p)` / `subjects(o, p)` — forward/backward edge steps,
//! - `predicates_out(s)` — all outgoing properties (closedness constraints),
//! - `edges_with_predicate(p)` — predicate scans.
//!
//! Sets are `BTreeSet`s over ids so iteration order is deterministic for a
//! given insertion sequence, which keeps experiments reproducible.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::Arc;

use crate::term::{Iri, Term, Triple};

/// A minimal FxHash-style hasher for the id-keyed indexes: ids are dense
/// `u32`s, so the default SipHash costs dominate hot lookups otherwise.
#[derive(Default)]
pub struct IntHasher(u64);

impl Hasher for IntHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x100000001b3);
        }
    }

    fn write_u32(&mut self, v: u32) {
        self.0 = (self.0 ^ v as u64).wrapping_mul(0x9E3779B97F4A7C15);
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0 ^ v).wrapping_mul(0x9E3779B97F4A7C15);
    }
}

/// A hash map keyed by integer-like keys using [`IntHasher`].
pub type IntMap<K, V> = HashMap<K, V, BuildHasherDefault<IntHasher>>;

/// A dense identifier for an interned [`Term`] within one [`Graph`].
///
/// Ids are only meaningful relative to the graph that issued them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TermId(pub u32);

/// Both the id→term table and the term→id map point at one shared
/// allocation per distinct term (`Arc<Term>`; `Arc<Term>: Borrow<Term>`
/// keeps map lookups allocation-free), instead of storing every term twice.
#[derive(Debug, Default, Clone)]
pub(crate) struct Interner {
    pub(crate) lookup: HashMap<Arc<Term>, TermId>,
    pub(crate) terms: Vec<Arc<Term>>,
}

impl Interner {
    pub(crate) fn intern(&mut self, term: &Term) -> TermId {
        if let Some(&id) = self.lookup.get(term) {
            return id;
        }
        let shared = Arc::new(term.clone());
        let id = TermId(self.terms.len() as u32);
        self.terms.push(Arc::clone(&shared));
        self.lookup.insert(shared, id);
        id
    }

    pub(crate) fn get(&self, term: &Term) -> Option<TermId> {
        self.lookup.get(term).copied()
    }

    pub(crate) fn resolve(&self, id: TermId) -> &Term {
        &self.terms[id.0 as usize]
    }

    /// Number of interned terms (the id space is `0..len`).
    pub(crate) fn len(&self) -> usize {
        self.terms.len()
    }
}

/// An in-memory RDF graph (a finite set of triples) with set semantics.
#[derive(Default, Clone)]
pub struct Graph {
    pub(crate) terms: Interner,
    /// s → p → {o}
    pub(crate) spo: IntMap<TermId, BTreeMap<TermId, BTreeSet<TermId>>>,
    /// o → p → {s}
    pub(crate) ops: IntMap<TermId, BTreeMap<TermId, BTreeSet<TermId>>>,
    /// p → {(s, o)}
    pub(crate) pso: IntMap<TermId, BTreeSet<(TermId, TermId)>>,
    pub(crate) len: usize,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Graph::default()
    }

    /// Builds a graph from an iterator of triples, pre-sizing the interner
    /// and indexes from the iterator's size hint.
    pub fn from_triples(triples: impl IntoIterator<Item = Triple>) -> Self {
        let iter = triples.into_iter();
        let mut g = Graph::new();
        g.reserve(iter.size_hint().0);
        for t in iter {
            g.insert(t);
        }
        g
    }

    /// Pre-reserves capacity for roughly `triples` additional triples.
    ///
    /// Sizing heuristic: a graph of `n` triples interns at most `2n + p`
    /// terms but real corpora share most subjects/objects; `n` term slots
    /// and `n / 2` subject/object index slots avoid the worst rehash
    /// cascades without overshooting small graphs.
    pub fn reserve(&mut self, triples: usize) {
        self.terms.lookup.reserve(triples);
        self.terms.terms.reserve(triples);
        self.spo.reserve(triples / 2);
        self.ops.reserve(triples / 2);
    }

    /// Number of triples.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff the graph has no triples.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts a triple; returns `true` if it was not already present.
    pub fn insert(&mut self, triple: Triple) -> bool {
        assert!(
            triple.subject.is_subject(),
            "triple subject must be an IRI or blank node"
        );
        let s = self.terms.intern(&triple.subject);
        let p = self.terms.intern(&Term::Iri(triple.predicate.clone()));
        let o = self.terms.intern(&triple.object);
        self.insert_ids(s, p, o)
    }

    /// Inserts by pre-interned ids (ids must come from this graph).
    pub(crate) fn insert_ids(&mut self, s: TermId, p: TermId, o: TermId) -> bool {
        let added = self
            .spo
            .entry(s)
            .or_default()
            .entry(p)
            .or_default()
            .insert(o);
        if added {
            self.ops
                .entry(o)
                .or_default()
                .entry(p)
                .or_default()
                .insert(s);
            self.pso.entry(p).or_default().insert((s, o));
            self.len += 1;
        }
        added
    }

    /// Removes a triple; returns `true` if it was present.
    pub fn remove(&mut self, triple: &Triple) -> bool {
        let (Some(s), Some(p), Some(o)) = (
            self.terms.get(&triple.subject),
            self.terms.get(&Term::Iri(triple.predicate.clone())),
            self.terms.get(&triple.object),
        ) else {
            return false;
        };
        let removed = self
            .spo
            .get_mut(&s)
            .and_then(|m| m.get_mut(&p))
            .map(|set| set.remove(&o))
            .unwrap_or(false);
        if removed {
            let m = self.spo.get_mut(&s).expect("spo entry exists");
            if m.get(&p).is_some_and(|set| set.is_empty()) {
                m.remove(&p);
            }
            if m.is_empty() {
                self.spo.remove(&s);
            }
            if let Some(m) = self.ops.get_mut(&o) {
                if let Some(set) = m.get_mut(&p) {
                    set.remove(&s);
                    if set.is_empty() {
                        m.remove(&p);
                    }
                }
                if m.is_empty() {
                    self.ops.remove(&o);
                }
            }
            if let Some(set) = self.pso.get_mut(&p) {
                set.remove(&(s, o));
                if set.is_empty() {
                    self.pso.remove(&p);
                }
            }
            self.len -= 1;
        }
        removed
    }

    /// True iff the triple is in the graph.
    pub fn contains(&self, triple: &Triple) -> bool {
        let (Some(s), Some(p), Some(o)) = (
            self.terms.get(&triple.subject),
            self.terms.get(&Term::Iri(triple.predicate.clone())),
            self.terms.get(&triple.object),
        ) else {
            return false;
        };
        self.contains_ids(s, p, o)
    }

    /// True iff the id-level triple is in the graph.
    pub fn contains_ids(&self, s: TermId, p: TermId, o: TermId) -> bool {
        self.spo
            .get(&s)
            .and_then(|m| m.get(&p))
            .map(|set| set.contains(&o))
            .unwrap_or(false)
    }

    /// Extends the graph with all triples of `other`.
    ///
    /// Each distinct term of `other` is resolved against this graph's
    /// interner exactly once (via an id→id translation table) instead of
    /// re-interning a cloned [`Term`] per triple occurrence.
    pub fn extend(&mut self, other: &Graph) {
        self.reserve(other.len);
        let mut map: Vec<Option<TermId>> = vec![None; other.terms.len()];
        for (s, p, o) in other.iter_ids() {
            let s = self.translate_id(other, &mut map, s);
            let p = self.translate_id(other, &mut map, p);
            let o = self.translate_id(other, &mut map, o);
            self.insert_ids(s, p, o);
        }
    }

    /// Resolves `other`'s id into this graph's id space, caching the answer
    /// in `map` so each distinct term is interned at most once.
    fn translate_id(&mut self, other: &Graph, map: &mut [Option<TermId>], id: TermId) -> TermId {
        if let Some(mapped) = map[id.0 as usize] {
            return mapped;
        }
        let mapped = self.terms.intern(other.term(id));
        map[id.0 as usize] = Some(mapped);
        mapped
    }

    /// The id of a term, if it has been interned (i.e. appears in some
    /// triple or was interned explicitly).
    pub fn id_of(&self, term: &Term) -> Option<TermId> {
        self.terms.get(term)
    }

    /// The id of an IRI used as a predicate or node.
    pub fn id_of_iri(&self, iri: &Iri) -> Option<TermId> {
        self.terms.get(&Term::Iri(iri.clone()))
    }

    /// Interns a term without adding any triple (useful for focus nodes not
    /// yet mentioned in the graph).
    pub fn intern(&mut self, term: &Term) -> TermId {
        self.terms.intern(term)
    }

    /// Resolves an id back to its term.
    pub fn term(&self, id: TermId) -> &Term {
        self.terms.resolve(id)
    }

    /// Iterates all triples (deterministic order per index structure).
    pub fn iter(&self) -> impl Iterator<Item = Triple> + '_ {
        self.iter_ids()
            .map(move |(s, p, o)| self.triple_of(s, p, o))
    }

    /// Iterates all triples as id tuples.
    pub fn iter_ids(&self) -> impl Iterator<Item = (TermId, TermId, TermId)> + '_ {
        let mut subjects: Vec<_> = self.spo.keys().copied().collect();
        subjects.sort_unstable();
        subjects.into_iter().flat_map(move |s| {
            self.spo[&s]
                .iter()
                .flat_map(move |(p, objs)| objs.iter().map(move |o| (s, *p, *o)))
        })
    }

    /// Materializes an id triple into a [`Triple`].
    pub fn triple_of(&self, s: TermId, p: TermId, o: TermId) -> Triple {
        let Term::Iri(pred) = self.term(p).clone() else {
            unreachable!("predicate ids always resolve to IRIs");
        };
        Triple {
            subject: self.term(s).clone(),
            predicate: pred,
            object: self.term(o).clone(),
        }
    }

    /// Objects of `(s, p, ?)` as ids.
    pub fn objects_ids(&self, s: TermId, p: TermId) -> impl Iterator<Item = TermId> + '_ {
        self.spo
            .get(&s)
            .and_then(|m| m.get(&p))
            .into_iter()
            .flat_map(|set| set.iter().copied())
    }

    /// Subjects of `(?, p, o)` as ids.
    pub fn subjects_ids(&self, o: TermId, p: TermId) -> impl Iterator<Item = TermId> + '_ {
        self.ops
            .get(&o)
            .and_then(|m| m.get(&p))
            .into_iter()
            .flat_map(|set| set.iter().copied())
    }

    /// Outgoing `(predicate, object)` id pairs of a subject.
    pub fn out_edges_ids(&self, s: TermId) -> impl Iterator<Item = (TermId, TermId)> + '_ {
        self.spo.get(&s).into_iter().flat_map(|m| {
            m.iter()
                .flat_map(|(p, objs)| objs.iter().map(move |o| (*p, *o)))
        })
    }

    /// Incoming `(predicate, subject)` id pairs of an object.
    pub fn in_edges_ids(&self, o: TermId) -> impl Iterator<Item = (TermId, TermId)> + '_ {
        self.ops.get(&o).into_iter().flat_map(|m| {
            m.iter()
                .flat_map(|(p, subs)| subs.iter().map(move |s| (*p, *s)))
        })
    }

    /// All `(s, o)` id pairs with predicate `p`.
    pub fn edges_with_predicate_ids(
        &self,
        p: TermId,
    ) -> impl Iterator<Item = (TermId, TermId)> + '_ {
        self.pso
            .get(&p)
            .into_iter()
            .flat_map(|set| set.iter().copied())
    }

    /// Objects of `(s, p, ?)` as terms; empty if `s` or `p` unknown.
    pub fn objects_for<'a>(&'a self, s: &Term, p: &Iri) -> Vec<&'a Term> {
        match (self.id_of(s), self.id_of_iri(p)) {
            (Some(s), Some(p)) => self.objects_ids(s, p).map(|o| self.term(o)).collect(),
            _ => Vec::new(),
        }
    }

    /// Subjects of `(?, p, o)` as terms; empty if `o` or `p` unknown.
    pub fn subjects_for<'a>(&'a self, o: &Term, p: &Iri) -> Vec<&'a Term> {
        match (self.id_of(o), self.id_of_iri(p)) {
            (Some(o), Some(p)) => self.subjects_ids(o, p).map(|s| self.term(s)).collect(),
            _ => Vec::new(),
        }
    }

    /// Triples matching an optional pattern on each position.
    pub fn triples_matching(
        &self,
        s: Option<&Term>,
        p: Option<&Iri>,
        o: Option<&Term>,
    ) -> Vec<Triple> {
        let sid = s.map(|t| self.id_of(t));
        let pid = p.map(|t| self.id_of_iri(t));
        let oid = o.map(|t| self.id_of(t));
        // Any bound-but-unknown term means no matches.
        if sid == Some(None) || pid == Some(None) || oid == Some(None) {
            return Vec::new();
        }
        let sid = sid.flatten();
        let pid = pid.flatten();
        let oid = oid.flatten();
        let mut out = Vec::new();
        match (sid, pid, oid) {
            (Some(s), Some(p), Some(o)) => {
                if self.contains_ids(s, p, o) {
                    out.push(self.triple_of(s, p, o));
                }
            }
            (Some(s), Some(p), None) => {
                for o in self.objects_ids(s, p) {
                    out.push(self.triple_of(s, p, o));
                }
            }
            (Some(s), None, oid) => {
                for (p, o) in self.out_edges_ids(s) {
                    if oid.is_none_or(|x| x == o) {
                        out.push(self.triple_of(s, p, o));
                    }
                }
            }
            (None, Some(p), Some(o)) => {
                for s in self.subjects_ids(o, p) {
                    out.push(self.triple_of(s, p, o));
                }
            }
            (None, Some(p), None) => {
                for (s, o) in self.edges_with_predicate_ids(p) {
                    out.push(self.triple_of(s, p, o));
                }
            }
            (None, None, Some(o)) => {
                for (p, s) in self.in_edges_ids(o) {
                    out.push(self.triple_of(s, p, o));
                }
            }
            (None, None, None) => {
                for (s, p, o) in self.iter_ids() {
                    out.push(self.triple_of(s, p, o));
                }
            }
        }
        out
    }

    /// All nodes of the graph (subjects and objects of triples), i.e. the
    /// paper's `N(G)`, as ids.
    pub fn node_ids(&self) -> BTreeSet<TermId> {
        let mut nodes = BTreeSet::new();
        for (s, _p, o) in self.iter_ids() {
            nodes.insert(s);
            nodes.insert(o);
        }
        nodes
    }

    /// All nodes of the graph as terms.
    pub fn nodes(&self) -> Vec<&Term> {
        self.node_ids()
            .into_iter()
            .map(|id| self.term(id))
            .collect()
    }

    /// All distinct predicates.
    pub fn predicates(&self) -> Vec<&Iri> {
        let mut ids: Vec<_> = self.pso.keys().copied().collect();
        ids.sort_unstable();
        ids.iter()
            .filter_map(|p| match self.term(*p) {
                Term::Iri(iri) => Some(iri),
                _ => None,
            })
            .collect()
    }

    /// Distinct outgoing predicates of a subject, as ids.
    pub fn predicates_out_ids(&self, s: TermId) -> impl Iterator<Item = TermId> + '_ {
        self.spo.get(&s).into_iter().flat_map(|m| m.keys().copied())
    }

    /// True iff `other` contains every triple of `self`.
    pub fn is_subgraph_of(&self, other: &Graph) -> bool {
        self.iter().all(|t| other.contains(&t))
    }
}

impl PartialEq for Graph {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.is_subgraph_of(other)
    }
}

impl Eq for Graph {}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Graph({} triples) {{", self.len)?;
        let mut triples: Vec<_> = self.iter().collect();
        triples.sort();
        for t in triples {
            writeln!(f, "  {t}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<Triple> for Graph {
    fn from_iter<I: IntoIterator<Item = Triple>>(iter: I) -> Self {
        Graph::from_triples(iter)
    }
}

impl Extend<Triple> for Graph {
    fn extend<I: IntoIterator<Item = Triple>>(&mut self, iter: I) {
        for t in iter {
            self.insert(t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::{Iri, Term, Triple};

    fn t(s: &str, p: &str, o: &str) -> Triple {
        Triple::new(Term::iri(s), Iri::new(p), Term::iri(o))
    }

    #[test]
    fn insert_is_set_semantics() {
        let mut g = Graph::new();
        assert!(g.insert(t("a", "p", "b")));
        assert!(!g.insert(t("a", "p", "b")));
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn remove_updates_all_indexes() {
        let mut g = Graph::from_triples([t("a", "p", "b"), t("a", "p", "c")]);
        assert!(g.remove(&t("a", "p", "b")));
        assert!(!g.remove(&t("a", "p", "b")));
        assert_eq!(g.len(), 1);
        assert!(!g.contains(&t("a", "p", "b")));
        assert_eq!(g.objects_for(&Term::iri("a"), &Iri::new("p")).len(), 1);
        assert_eq!(g.subjects_for(&Term::iri("b"), &Iri::new("p")).len(), 0);
        assert_eq!(
            g.triples_matching(None, Some(&Iri::new("p")), None).len(),
            1
        );
    }

    #[test]
    fn forward_and_backward_lookup() {
        let g = Graph::from_triples([t("a", "p", "b"), t("a", "p", "c"), t("d", "p", "b")]);
        assert_eq!(g.objects_for(&Term::iri("a"), &Iri::new("p")).len(), 2);
        assert_eq!(g.subjects_for(&Term::iri("b"), &Iri::new("p")).len(), 2);
        assert!(g.objects_for(&Term::iri("zzz"), &Iri::new("p")).is_empty());
    }

    #[test]
    fn triples_matching_all_patterns() {
        let g = Graph::from_triples([t("a", "p", "b"), t("a", "q", "c"), t("b", "p", "c")]);
        assert_eq!(g.triples_matching(None, None, None).len(), 3);
        assert_eq!(
            g.triples_matching(Some(&Term::iri("a")), None, None).len(),
            2
        );
        assert_eq!(
            g.triples_matching(None, Some(&Iri::new("p")), None).len(),
            2
        );
        assert_eq!(
            g.triples_matching(None, None, Some(&Term::iri("c"))).len(),
            2
        );
        assert_eq!(
            g.triples_matching(Some(&Term::iri("a")), Some(&Iri::new("p")), None)
                .len(),
            1
        );
        assert_eq!(
            g.triples_matching(
                Some(&Term::iri("a")),
                Some(&Iri::new("p")),
                Some(&Term::iri("b"))
            )
            .len(),
            1
        );
        assert!(g
            .triples_matching(Some(&Term::iri("nope")), None, None)
            .is_empty());
    }

    #[test]
    fn nodes_and_predicates() {
        let g = Graph::from_triples([t("a", "p", "b"), t("b", "q", "a")]);
        assert_eq!(g.nodes().len(), 2);
        assert_eq!(g.predicates().len(), 2);
    }

    #[test]
    fn graph_equality_is_set_equality() {
        let g1 = Graph::from_triples([t("a", "p", "b"), t("b", "p", "c")]);
        let g2 = Graph::from_triples([t("b", "p", "c"), t("a", "p", "b")]);
        assert_eq!(g1, g2);
        let g3 = Graph::from_triples([t("a", "p", "b")]);
        assert_ne!(g1, g3);
        assert!(g3.is_subgraph_of(&g1));
        assert!(!g1.is_subgraph_of(&g3));
    }

    #[test]
    fn literals_as_objects() {
        use crate::term::Literal;
        let mut g = Graph::new();
        g.insert(Triple::new(
            Term::iri("a"),
            Iri::new("p"),
            Term::Literal(Literal::integer(5)),
        ));
        assert_eq!(g.len(), 1);
        let objs = g.objects_for(&Term::iri("a"), &Iri::new("p"));
        assert!(objs[0].is_literal());
    }

    #[test]
    fn interner_shares_one_allocation_per_term() {
        let mut i = Interner::default();
        let id = i.intern(&Term::iri("shared"));
        assert_eq!(i.intern(&Term::iri("shared")), id);
        // The `terms` slot and the `lookup` key are the same allocation.
        assert_eq!(Arc::strong_count(&i.terms[id.0 as usize]), 2);
        assert_eq!(i.resolve(id), &Term::iri("shared"));
    }

    #[test]
    fn intern_unknown_focus_node() {
        let mut g = Graph::new();
        let id = g.intern(&Term::iri("lonely"));
        assert_eq!(g.term(id), &Term::iri("lonely"));
        assert_eq!(g.len(), 0);
    }
}
