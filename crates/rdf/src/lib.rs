//! # shapefrag-rdf
//!
//! RDF substrate for the shape-fragments workspace: terms, typed literal
//! values with the paper's `<` partial order and `~` language-tag relation,
//! an indexed in-memory [`Graph`] store, and N-Triples / Turtle I/O.
//!
//! This crate is self-contained (no external RDF dependencies) and provides
//! the data model assumed by the paper's preliminaries (§2): nodes
//! `N = I ∪ B ∪ L` and RDF triples `(I ∪ B) × I × N`.
//!
//! ```
//! use shapefrag_rdf::{turtle, ntriples, Term, Iri};
//!
//! let graph = turtle::parse(r#"
//!     @prefix ex: <http://example.org/> .
//!     ex:alice a ex:Person ; ex:age 30 ; ex:name "Alice"@en .
//! "#).unwrap();
//! assert_eq!(graph.len(), 3);
//!
//! let ages = graph.objects_for(
//!     &Term::iri("http://example.org/alice"),
//!     &Iri::new("http://example.org/age"),
//! );
//! assert_eq!(ages[0].as_literal().unwrap().lexical(), "30");
//!
//! // Round-trip through N-Triples.
//! let reloaded = ntriples::parse(&ntriples::serialize(&graph)).unwrap();
//! assert_eq!(reloaded, graph);
//! ```
#![forbid(unsafe_code)]

pub mod access;
pub mod delta;
pub mod error;
pub mod frozen;
pub mod graph;
pub mod ntriples;
pub mod span;
pub mod term;
pub mod turtle;
pub mod value;
pub mod vocab;

pub use access::GraphAccess;
pub use delta::DeltaGraph;
pub use error::{LossyLoad, ParseError};
pub use frozen::FrozenGraph;
pub use graph::{Graph, TermId};
pub use shapefrag_govern::{EngineError, ErrorCode};
pub use span::{Span, TripleSpans};
pub use term::{BlankNode, Iri, Literal, Term, Triple};
pub use value::{DateTimeValue, LiteralValue};
