//! Line-oriented N-Triples reader and writer.
//!
//! N-Triples is the exchange format used by the experiment harness for data
//! graphs (one triple per line, absolute IRIs only), which makes loading
//! large generated graphs fast and allocation-light compared to full Turtle.

use shapefrag_govern::ErrorCode;

use crate::error::{LossyLoad, ParseError};
use crate::graph::Graph;
use crate::term::{BlankNode, Iri, Literal, Term, Triple};
use crate::vocab::XSD_STRING;

/// Statement-count estimate for pre-sizing the graph: the format is
/// line-oriented, so the newline count bounds the triple count.
fn estimated_statements(input: &str) -> usize {
    bytecount_newlines(input) + 1
}

fn bytecount_newlines(input: &str) -> usize {
    input.as_bytes().iter().filter(|&&b| b == b'\n').count()
}

/// Parses an N-Triples document into a [`Graph`].
pub fn parse(input: &str) -> Result<Graph, ParseError> {
    let mut graph = Graph::new();
    graph.reserve(estimated_statements(input));
    for (lineno, line) in input.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let triple = parse_line(line, lineno + 1)?;
        graph.insert(triple);
    }
    Ok(graph)
}

/// Error-recovering parse: the format is line-oriented, so recovery is
/// simply per-line — each malformed line yields one positioned diagnostic
/// and is skipped, every well-formed line contributes its triple.
pub fn parse_lossy(input: &str) -> LossyLoad {
    let mut report = LossyLoad::default();
    report.graph.reserve(estimated_statements(input));
    for (lineno, line) in input.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match parse_line(line, lineno + 1) {
            Ok(triple) => {
                report.graph.insert(triple);
                report.statements_ok += 1;
            }
            Err(e) => {
                report.diagnostics.push(e);
                report.statements_skipped += 1;
            }
        }
    }
    report
}

/// Parses one N-Triples statement.
pub fn parse_line(line: &str, lineno: usize) -> Result<Triple, ParseError> {
    let mut cursor = Cursor {
        chars: line.char_indices().collect(),
        pos: 0,
        lineno,
    };
    cursor.skip_ws();
    let subject = cursor.parse_term()?;
    if subject.is_literal() {
        return Err(cursor
            .err("literal in subject position")
            .code(ErrorCode::BadStructure));
    }
    cursor.skip_ws();
    let predicate = match cursor.parse_term()? {
        Term::Iri(iri) => iri,
        other => {
            return Err(cursor
                .err(format!("predicate must be an IRI, got {other}"))
                .code(ErrorCode::BadStructure))
        }
    };
    cursor.skip_ws();
    let object = cursor.parse_term()?;
    cursor.skip_ws();
    match cursor.peek() {
        Some('.') => {
            cursor.pos += 1;
            cursor.skip_ws();
            match cursor.peek() {
                None | Some('#') => Ok(Triple {
                    subject,
                    predicate,
                    object,
                }),
                Some(c) => Err(cursor.err(format!("trailing content '{c}' after '.'"))),
            }
        }
        _ => Err(cursor.err("expected '.' at end of statement")),
    }
}

struct Cursor {
    chars: Vec<(usize, char)>,
    pos: usize,
    lineno: usize,
}

impl Cursor {
    fn err(&self, msg: impl Into<String>) -> ParseError {
        let col = self
            .chars
            .get(self.pos)
            .map(|(i, _)| i + 1)
            .unwrap_or(self.chars.len() + 1);
        ParseError::new(self.lineno, col, msg)
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).map(|&(_, c)| c)
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        Some(c)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace()) {
            self.pos += 1;
        }
    }

    fn parse_term(&mut self) -> Result<Term, ParseError> {
        match self.peek() {
            Some('<') => {
                self.bump();
                let mut iri = String::new();
                loop {
                    match self.bump() {
                        Some('>') => break,
                        Some('\\') => match self.bump() {
                            Some('u') => iri.push(self.unicode_escape(4)?),
                            Some('U') => iri.push(self.unicode_escape(8)?),
                            _ => {
                                return Err(self
                                    .err("invalid IRI escape")
                                    .code(ErrorCode::InvalidEscape))
                            }
                        },
                        Some(c) => iri.push(c),
                        None => {
                            return Err(self
                                .err("unterminated IRI")
                                .code(ErrorCode::UnterminatedIri))
                        }
                    }
                }
                Ok(Term::Iri(Iri::new(iri)))
            }
            Some('_') => {
                self.bump();
                if self.bump() != Some(':') {
                    return Err(self.err("expected ':' after '_'"));
                }
                let mut label = String::new();
                while let Some(c) = self.peek() {
                    if c.is_alphanumeric() || c == '_' || c == '-' {
                        label.push(c);
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                if label.is_empty() {
                    return Err(self.err("empty blank node label"));
                }
                Ok(Term::Blank(BlankNode::new(label)))
            }
            Some('"') => {
                self.bump();
                let mut lexical = String::new();
                loop {
                    match self.bump() {
                        Some('"') => break,
                        Some('\\') => {
                            let esc = self.bump().ok_or_else(|| {
                                self.err("bad escape").code(ErrorCode::InvalidEscape)
                            })?;
                            lexical.push(match esc {
                                't' => '\t',
                                'n' => '\n',
                                'r' => '\r',
                                'b' => '\u{8}',
                                'f' => '\u{c}',
                                '"' => '"',
                                '\'' => '\'',
                                '\\' => '\\',
                                'u' => self.unicode_escape(4)?,
                                'U' => self.unicode_escape(8)?,
                                c => {
                                    return Err(self
                                        .err(format!("invalid escape '\\{c}'"))
                                        .code(ErrorCode::InvalidEscape))
                                }
                            });
                        }
                        Some(c) => lexical.push(c),
                        None => {
                            return Err(self
                                .err("unterminated literal")
                                .code(ErrorCode::UnterminatedString))
                        }
                    }
                }
                match self.peek() {
                    Some('@') => {
                        self.bump();
                        let mut lang = String::new();
                        while let Some(c) = self.peek() {
                            if c.is_ascii_alphanumeric() || c == '-' {
                                lang.push(c);
                                self.pos += 1;
                            } else {
                                break;
                            }
                        }
                        if lang.is_empty() {
                            return Err(self.err("empty language tag"));
                        }
                        Ok(Term::Literal(Literal::lang_string(lexical, &lang)))
                    }
                    Some('^') => {
                        self.bump();
                        if self.bump() != Some('^') {
                            return Err(self.err("expected '^^'"));
                        }
                        match self.parse_term()? {
                            Term::Iri(dt) => Ok(Term::Literal(Literal::typed(lexical, dt))),
                            _ => Err(self.err("datatype must be an IRI")),
                        }
                    }
                    _ => Ok(Term::Literal(Literal::string(lexical))),
                }
            }
            Some(c) => Err(self
                .err(format!("unexpected character '{c}'"))
                .code(ErrorCode::UnexpectedChar)),
            None => Err(self
                .err("unexpected end of line")
                .code(ErrorCode::UnexpectedEof)),
        }
    }

    fn unicode_escape(&mut self, digits: usize) -> Result<char, ParseError> {
        let mut v: u32 = 0;
        for _ in 0..digits {
            let c = self.bump().ok_or_else(|| {
                self.err("short unicode escape")
                    .code(ErrorCode::InvalidEscape)
            })?;
            let d = c
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit").code(ErrorCode::InvalidEscape))?;
            v = v * 16 + d;
        }
        char::from_u32(v).ok_or_else(|| {
            self.err("invalid code point")
                .code(ErrorCode::InvalidEscape)
        })
    }
}

/// Serializes one term in N-Triples syntax.
fn write_term(out: &mut String, term: &Term) {
    match term {
        Term::Iri(iri) => {
            out.push('<');
            out.push_str(iri.as_str());
            out.push('>');
        }
        Term::Blank(b) => {
            out.push_str("_:");
            out.push_str(b.as_str());
        }
        Term::Literal(lit) => {
            out.push('"');
            out.push_str(&crate::term::escape_literal(lit.lexical()));
            out.push('"');
            if let Some(lang) = lit.language() {
                out.push('@');
                out.push_str(lang);
            } else if lit.datatype().as_str() != XSD_STRING {
                out.push_str("^^<");
                out.push_str(lit.datatype().as_str());
                out.push('>');
            }
        }
    }
}

/// Serializes a graph as N-Triples (sorted, deterministic).
pub fn serialize(graph: &Graph) -> String {
    let mut triples: Vec<_> = graph.iter().collect();
    triples.sort();
    let mut out = String::with_capacity(triples.len() * 64);
    for t in triples {
        write_term(&mut out, &t.subject);
        out.push(' ');
        write_term(&mut out, &Term::Iri(t.predicate.clone()));
        out.push(' ');
        write_term(&mut out, &t.object);
        out.push_str(" .\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocab::xsd;

    #[test]
    fn parse_basic() {
        let g =
            parse("<http://e/a> <http://e/p> <http://e/b> .\n<http://e/a> <http://e/q> \"lit\" .")
                .unwrap();
        assert_eq!(g.len(), 2);
    }

    #[test]
    fn parse_typed_and_lang_literals() {
        let g = parse(
            "<http://e/a> <http://e/p> \"5\"^^<http://www.w3.org/2001/XMLSchema#integer> .\n<http://e/a> <http://e/q> \"hi\"@en-GB .",
        )
        .unwrap();
        let objs = g.objects_for(&Term::iri("http://e/a"), &Iri::new("http://e/p"));
        assert_eq!(objs[0].as_literal().unwrap().datatype(), &xsd::integer());
        let objs = g.objects_for(&Term::iri("http://e/a"), &Iri::new("http://e/q"));
        assert_eq!(objs[0].as_literal().unwrap().language(), Some("en-gb"));
    }

    #[test]
    fn parse_blank_nodes() {
        let g = parse("_:a <http://e/p> _:b .").unwrap();
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn comments_and_blank_lines() {
        let g = parse("# comment\n\n<http://e/a> <http://e/p> <http://e/b> . # tail\n").unwrap();
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn error_reports_line() {
        let err = parse("<http://e/a> <http://e/p> <http://e/b> .\nbogus").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn missing_dot_is_error() {
        assert!(parse("<http://e/a> <http://e/p> <http://e/b>").is_err());
    }

    #[test]
    fn literal_subject_is_error() {
        assert!(parse("\"x\" <http://e/p> <http://e/b> .").is_err());
    }

    #[test]
    fn escapes_round_trip() {
        let mut g = Graph::new();
        g.insert(Triple::new(
            Term::iri("http://e/a"),
            Iri::new("http://e/p"),
            Term::Literal(Literal::string("a\"b\\c\nd\te")),
        ));
        let text = serialize(&g);
        let g2 = parse(&text).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn serialize_round_trip() {
        let input = "<http://e/a> <http://e/p> <http://e/b> .\n<http://e/a> <http://e/q> \"5\"^^<http://www.w3.org/2001/XMLSchema#integer> .\n_:x <http://e/p> \"hi\"@en .\n";
        let g = parse(input).unwrap();
        let g2 = parse(&serialize(&g)).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn lossy_skips_bad_lines() {
        let report = parse_lossy(
            "<http://e/a> <http://e/p> <http://e/b> .\n\
             totally bogus line\n\
             <http://e/c> <http://e/p> \"x\" .\n\
             \"lit\" <http://e/p> <http://e/d> .\n\
             <http://e/e> <http://e/p> <http://e/f> .",
        );
        assert_eq!(report.graph.len(), 3);
        assert_eq!(report.statements_ok, 3);
        assert_eq!(report.statements_skipped, 2);
        assert_eq!(report.diagnostics.len(), 2);
        assert_eq!(report.diagnostics[0].line, 2);
        assert_eq!(report.diagnostics[1].line, 4);
        assert_eq!(report.diagnostics[1].code, ErrorCode::BadStructure);
    }

    #[test]
    fn lossy_clean_input() {
        let report = parse_lossy("<http://e/a> <http://e/p> <http://e/b> .\n# comment\n");
        assert!(report.is_clean());
        assert_eq!(report.statements_ok, 1);
        assert_eq!(report.graph.len(), 1);
    }

    #[test]
    fn unicode_escape_in_literal() {
        let g = parse("<http://e/a> <http://e/p> \"caf\\u00E9\" .").unwrap();
        let objs = g.objects_for(&Term::iri("http://e/a"), &Iri::new("http://e/p"));
        assert_eq!(objs[0].as_literal().unwrap().lexical(), "café");
    }
}
