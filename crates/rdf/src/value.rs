//! Typed literal values and the partial order `<` on literals.
//!
//! The paper (§2) assumes a strict partial order `<` on *L* abstracting
//! comparisons between numeric values, strings, dateTime values, etc. This
//! module realizes that order: values of the same *value category* compare;
//! values of different categories (or unparseable values) are incomparable.

use std::cmp::Ordering;

use crate::term::Iri;
use crate::vocab::{XSD_NS, XSD_STRING};

/// The parsed value of a literal's lexical form under its datatype.
#[derive(Debug, Clone, PartialEq)]
pub enum LiteralValue {
    /// Any `xsd` numeric type (`integer`, `int`, `long`, `decimal`,
    /// `double`, `float`, `nonNegativeInteger`). Integers are preserved
    /// exactly; fractional values fall back to `f64`.
    Integer(i64),
    /// Fractional numerics.
    Double(f64),
    /// `xsd:string` and `rdf:langString` (string comparison is codepoint
    /// order of the lexical form).
    String(String),
    /// `xsd:boolean` (false < true).
    Boolean(bool),
    /// `xsd:dateTime` / `xsd:date`, normalized to a comparable key
    /// (seconds-since-epoch-like lexicographic tuple).
    DateTime(DateTimeValue),
    /// Unrecognized datatype or ill-formed lexical form: incomparable.
    Other,
}

/// A parsed `xsd:dateTime` or `xsd:date`, comparable componentwise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct DateTimeValue {
    pub year: i32,
    pub month: u8,
    pub day: u8,
    pub hour: u8,
    pub minute: u8,
    /// Seconds scaled by 1000 to keep millisecond precision without floats.
    pub millisecond_of_minute: u32,
}

impl LiteralValue {
    /// Parses a lexical form according to a datatype IRI.
    pub fn parse(lexical: &str, datatype: &Iri) -> LiteralValue {
        let dt = datatype.as_str();
        if dt == XSD_STRING || dt == "http://www.w3.org/1999/02/22-rdf-syntax-ns#langString" {
            return LiteralValue::String(lexical.to_owned());
        }
        let Some(local) = dt.strip_prefix(XSD_NS) else {
            return LiteralValue::Other;
        };
        match local {
            "integer" | "int" | "long" | "short" | "byte" | "nonNegativeInteger"
            | "positiveInteger" | "negativeInteger" | "nonPositiveInteger" | "unsignedInt"
            | "unsignedLong" => lexical
                .trim()
                .parse::<i64>()
                .map(LiteralValue::Integer)
                .unwrap_or(LiteralValue::Other),
            "decimal" | "double" | "float" => {
                let t = lexical.trim();
                if let Ok(i) = t.parse::<i64>() {
                    LiteralValue::Integer(i)
                } else {
                    t.parse::<f64>()
                        .map(LiteralValue::Double)
                        .unwrap_or(LiteralValue::Other)
                }
            }
            "boolean" => match lexical.trim() {
                "true" | "1" => LiteralValue::Boolean(true),
                "false" | "0" => LiteralValue::Boolean(false),
                _ => LiteralValue::Other,
            },
            "dateTime" => parse_date_time(lexical)
                .map(LiteralValue::DateTime)
                .unwrap_or(LiteralValue::Other),
            "date" => parse_date(lexical)
                .map(LiteralValue::DateTime)
                .unwrap_or(LiteralValue::Other),
            "anyURI" => LiteralValue::String(lexical.to_owned()),
            _ => LiteralValue::Other,
        }
    }

    /// True iff the value belongs to a numeric category.
    pub fn is_numeric(&self) -> bool {
        matches!(self, LiteralValue::Integer(_) | LiteralValue::Double(_))
    }

    /// The numeric value as `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            LiteralValue::Integer(i) => Some(*i as f64),
            LiteralValue::Double(d) => Some(*d),
            _ => None,
        }
    }

    /// The paper's strict partial order `<` on literals: defined within a
    /// value category, undefined (`None`) across categories and for
    /// [`LiteralValue::Other`].
    pub fn partial_cmp_value(&self, other: &LiteralValue) -> Option<Ordering> {
        use LiteralValue::*;
        match (self, other) {
            (Integer(a), Integer(b)) => Some(a.cmp(b)),
            (Integer(a), Double(b)) => (*a as f64).partial_cmp(b),
            (Double(a), Integer(b)) => a.partial_cmp(&(*b as f64)),
            (Double(a), Double(b)) => a.partial_cmp(b),
            (String(a), String(b)) => Some(a.cmp(b)),
            (Boolean(a), Boolean(b)) => Some(a.cmp(b)),
            (DateTime(a), DateTime(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    /// SPARQL-style equality of values (numeric promotion, same-category).
    pub fn value_eq(&self, other: &LiteralValue) -> bool {
        self.partial_cmp_value(other) == Some(Ordering::Equal)
    }
}

fn split2(s: &str, sep: char) -> Option<(&str, &str)> {
    let i = s.find(sep)?;
    Some((&s[..i], &s[i + 1..]))
}

fn parse_date(lexical: &str) -> Option<DateTimeValue> {
    let t = lexical.trim();
    // [-]YYYY-MM-DD with optional timezone (ignored for ordering purposes).
    let (neg, rest) = match t.strip_prefix('-') {
        Some(r) => (true, r),
        None => (false, t),
    };
    let (y, rest) = split2(rest, '-')?;
    let (m, rest) = split2(rest, '-')?;
    let d: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
    let year: i32 = y.parse().ok()?;
    let year = if neg { -year } else { year };
    let month: u8 = m.parse().ok()?;
    let day: u8 = d.parse().ok()?;
    if !(1..=12).contains(&month) || !(1..=31).contains(&day) {
        return None;
    }
    Some(DateTimeValue {
        year,
        month,
        day,
        hour: 0,
        minute: 0,
        millisecond_of_minute: 0,
    })
}

fn parse_date_time(lexical: &str) -> Option<DateTimeValue> {
    let t = lexical.trim();
    let (date_part, time_part) = split2(t, 'T')?;
    let mut dt = parse_date(date_part)?;
    // HH:MM:SS(.fff)? with optional timezone suffix Z or ±HH:MM.
    let time_part = time_part
        .trim_end_matches('Z')
        .split(['+'])
        .next()
        .unwrap_or(time_part);
    // A negative timezone offset also starts with '-', but '-' appears in
    // the time only as an offset separator after seconds.
    let time_core = match time_part.rfind('-') {
        Some(i) if i > 7 => &time_part[..i],
        _ => time_part,
    };
    let (h, rest) = split2(time_core, ':')?;
    let (m, s) = split2(rest, ':')?;
    dt.hour = h.parse().ok()?;
    dt.minute = m.parse().ok()?;
    let secs: f64 = s.parse().ok()?;
    if dt.hour > 24 || dt.minute > 59 || !(0.0..61.0).contains(&secs) {
        return None;
    }
    dt.millisecond_of_minute = (secs * 1000.0) as u32;
    Some(dt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Literal;
    use crate::vocab::xsd;

    fn cmp(a: &Literal, b: &Literal) -> Option<Ordering> {
        a.value().partial_cmp_value(&b.value())
    }

    #[test]
    fn integer_ordering() {
        assert_eq!(
            cmp(&Literal::integer(3), &Literal::integer(5)),
            Some(Ordering::Less)
        );
        assert_eq!(
            cmp(&Literal::integer(5), &Literal::integer(5)),
            Some(Ordering::Equal)
        );
    }

    #[test]
    fn mixed_numeric_ordering() {
        let i = Literal::integer(3);
        let d = Literal::typed("3.5", xsd::decimal());
        assert_eq!(cmp(&i, &d), Some(Ordering::Less));
        let f = Literal::typed("2.5e0", xsd::double());
        assert_eq!(cmp(&f, &i), Some(Ordering::Less));
    }

    #[test]
    fn string_ordering_is_codepoint() {
        let a = Literal::string("abc");
        let b = Literal::string("abd");
        assert_eq!(cmp(&a, &b), Some(Ordering::Less));
    }

    #[test]
    fn cross_category_incomparable() {
        let s = Literal::string("10");
        let i = Literal::integer(10);
        assert_eq!(cmp(&s, &i), None);
        let o = Literal::typed("x", Iri::new("http://example.org/custom"));
        assert_eq!(cmp(&o, &o), None);
    }

    #[test]
    fn boolean_ordering() {
        assert_eq!(
            cmp(&Literal::boolean(false), &Literal::boolean(true)),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn date_time_parsing_and_ordering() {
        let a = Literal::typed("2020-01-15T10:30:00Z", xsd::date_time());
        let b = Literal::typed("2020-01-15T10:30:01Z", xsd::date_time());
        let c = Literal::typed("2021-01-01T00:00:00Z", xsd::date_time());
        assert_eq!(cmp(&a, &b), Some(Ordering::Less));
        assert_eq!(cmp(&b, &c), Some(Ordering::Less));
    }

    #[test]
    fn date_parsing() {
        let a = Literal::typed("2020-01-15", xsd::date());
        let b = Literal::typed("2020-02-01", xsd::date());
        assert_eq!(cmp(&a, &b), Some(Ordering::Less));
    }

    #[test]
    fn date_time_with_offset() {
        let a = Literal::typed("2020-01-15T10:30:00.250-05:00", xsd::date_time());
        match a.value() {
            LiteralValue::DateTime(dt) => {
                assert_eq!(dt.hour, 10);
                assert_eq!(dt.millisecond_of_minute, 250);
            }
            other => panic!("expected dateTime, got {other:?}"),
        }
    }

    #[test]
    fn malformed_values_are_other() {
        assert_eq!(
            LiteralValue::parse("not-a-number", &xsd::integer()),
            LiteralValue::Other
        );
        assert_eq!(
            LiteralValue::parse("2020-13-99", &xsd::date()),
            LiteralValue::Other
        );
    }

    #[test]
    fn value_eq_promotes_numerics() {
        let i = Literal::integer(2);
        let d = Literal::typed("2.0", xsd::double());
        assert!(i.value().value_eq(&d.value()));
    }
}
