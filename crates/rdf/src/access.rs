//! Backend abstraction over graph read paths.
//!
//! All read-only kernels (path evaluation, validation, neighborhood
//! collection, SPARQL) are generic over [`GraphAccess`], so they run
//! unchanged over the mutable [`Graph`] (hash/tree indexes, incremental
//! construction) and the immutable [`FrozenGraph`](crate::FrozenGraph)
//! (contiguous CSR arrays, built once via [`Graph::freeze`]).
//!
//! Implementations must agree exactly — same triples, same ids, same
//! deterministic iteration order (ascending by id at every level). The
//! property suite `tests/prop_frozen_agreement.rs` checks this on random
//! graphs for every accessor.

use std::collections::BTreeSet;

use crate::graph::{Graph, TermId};
use crate::term::{Iri, Term, Triple};

/// Read-only access to an id-interned RDF graph.
///
/// The `Sync` supertrait lets generic kernels share a backend across scoped
/// worker threads (parallel validation / fragment extraction).
pub trait GraphAccess: Sync {
    /// Number of triples.
    fn len(&self) -> usize;

    /// True iff the graph has no triples.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of interned terms: every valid [`TermId`] is `< term_count`,
    /// so dense per-term scratch (bitset frontiers, visited sets) can be
    /// pre-sized once per backend.
    fn term_count(&self) -> usize;

    /// True iff the id-level triple is in the graph.
    fn contains_ids(&self, s: TermId, p: TermId, o: TermId) -> bool;

    /// Objects of `(s, p, ?)` as ids, ascending.
    fn objects_ids(&self, s: TermId, p: TermId) -> impl Iterator<Item = TermId> + '_;

    /// Subjects of `(?, p, o)` as ids, ascending.
    fn subjects_ids(&self, o: TermId, p: TermId) -> impl Iterator<Item = TermId> + '_;

    /// Outgoing `(predicate, object)` id pairs of a subject, ascending.
    fn out_edges_ids(&self, s: TermId) -> impl Iterator<Item = (TermId, TermId)> + '_;

    /// Incoming `(predicate, subject)` id pairs of an object, ascending.
    fn in_edges_ids(&self, o: TermId) -> impl Iterator<Item = (TermId, TermId)> + '_;

    /// All `(s, o)` id pairs with predicate `p`, ascending.
    fn edges_with_predicate_ids(&self, p: TermId) -> impl Iterator<Item = (TermId, TermId)> + '_;

    /// Distinct outgoing predicates of a subject, ascending.
    fn predicates_out_ids(&self, s: TermId) -> impl Iterator<Item = TermId> + '_;

    /// All triples as id tuples, ascending by (s, p, o).
    fn iter_ids(&self) -> impl Iterator<Item = (TermId, TermId, TermId)> + '_;

    /// All nodes (subjects and objects) — the paper's `N(G)` — as ids.
    fn node_ids(&self) -> BTreeSet<TermId>;

    /// Resolves an id back to its term.
    fn term(&self, id: TermId) -> &Term;

    /// The id of a term, if interned.
    fn id_of(&self, term: &Term) -> Option<TermId>;

    /// The id of an IRI used as a predicate or node.
    fn id_of_iri(&self, iri: &Iri) -> Option<TermId>;

    /// Materializes an id triple into a [`Triple`].
    fn triple_of(&self, s: TermId, p: TermId, o: TermId) -> Triple {
        let Term::Iri(pred) = self.term(p).clone() else {
            unreachable!("predicate ids always resolve to IRIs");
        };
        Triple {
            subject: self.term(s).clone(),
            predicate: pred,
            object: self.term(o).clone(),
        }
    }

    /// Triples matching an optional pattern on each position.
    fn triples_matching(&self, s: Option<&Term>, p: Option<&Iri>, o: Option<&Term>) -> Vec<Triple> {
        let sid = s.map(|t| self.id_of(t));
        let pid = p.map(|t| self.id_of_iri(t));
        let oid = o.map(|t| self.id_of(t));
        // Any bound-but-unknown term means no matches.
        if sid == Some(None) || pid == Some(None) || oid == Some(None) {
            return Vec::new();
        }
        let sid = sid.flatten();
        let pid = pid.flatten();
        let oid = oid.flatten();
        let mut out = Vec::new();
        match (sid, pid, oid) {
            (Some(s), Some(p), Some(o)) => {
                if self.contains_ids(s, p, o) {
                    out.push(self.triple_of(s, p, o));
                }
            }
            (Some(s), Some(p), None) => {
                for o in self.objects_ids(s, p) {
                    out.push(self.triple_of(s, p, o));
                }
            }
            (Some(s), None, oid) => {
                for (p, o) in self.out_edges_ids(s) {
                    if oid.is_none_or(|x| x == o) {
                        out.push(self.triple_of(s, p, o));
                    }
                }
            }
            (None, Some(p), Some(o)) => {
                for s in self.subjects_ids(o, p) {
                    out.push(self.triple_of(s, p, o));
                }
            }
            (None, Some(p), None) => {
                for (s, o) in self.edges_with_predicate_ids(p) {
                    out.push(self.triple_of(s, p, o));
                }
            }
            (None, None, Some(o)) => {
                for (p, s) in self.in_edges_ids(o) {
                    out.push(self.triple_of(s, p, o));
                }
            }
            (None, None, None) => {
                for (s, p, o) in self.iter_ids() {
                    out.push(self.triple_of(s, p, o));
                }
            }
        }
        out
    }
}

impl GraphAccess for Graph {
    fn len(&self) -> usize {
        Graph::len(self)
    }

    fn term_count(&self) -> usize {
        self.terms.len()
    }

    fn contains_ids(&self, s: TermId, p: TermId, o: TermId) -> bool {
        Graph::contains_ids(self, s, p, o)
    }

    fn objects_ids(&self, s: TermId, p: TermId) -> impl Iterator<Item = TermId> + '_ {
        Graph::objects_ids(self, s, p)
    }

    fn subjects_ids(&self, o: TermId, p: TermId) -> impl Iterator<Item = TermId> + '_ {
        Graph::subjects_ids(self, o, p)
    }

    fn out_edges_ids(&self, s: TermId) -> impl Iterator<Item = (TermId, TermId)> + '_ {
        Graph::out_edges_ids(self, s)
    }

    fn in_edges_ids(&self, o: TermId) -> impl Iterator<Item = (TermId, TermId)> + '_ {
        Graph::in_edges_ids(self, o)
    }

    fn edges_with_predicate_ids(&self, p: TermId) -> impl Iterator<Item = (TermId, TermId)> + '_ {
        Graph::edges_with_predicate_ids(self, p)
    }

    fn predicates_out_ids(&self, s: TermId) -> impl Iterator<Item = TermId> + '_ {
        Graph::predicates_out_ids(self, s)
    }

    fn iter_ids(&self) -> impl Iterator<Item = (TermId, TermId, TermId)> + '_ {
        Graph::iter_ids(self)
    }

    fn node_ids(&self) -> BTreeSet<TermId> {
        Graph::node_ids(self)
    }

    fn term(&self, id: TermId) -> &Term {
        Graph::term(self, id)
    }

    fn id_of(&self, term: &Term) -> Option<TermId> {
        Graph::id_of(self, term)
    }

    fn id_of_iri(&self, iri: &Iri) -> Option<TermId> {
        Graph::id_of_iri(self, iri)
    }

    fn triple_of(&self, s: TermId, p: TermId, o: TermId) -> Triple {
        Graph::triple_of(self, s, p, o)
    }

    fn triples_matching(&self, s: Option<&Term>, p: Option<&Iri>, o: Option<&Term>) -> Vec<Triple> {
        Graph::triples_matching(self, s, p, o)
    }
}
