//! Well-known vocabularies: `rdf:`, `rdfs:`, `xsd:`, and `sh:` (SHACL).

use crate::term::Iri;

/// The `rdf:` namespace prefix.
pub const RDF_NS: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#";
/// The `rdfs:` namespace prefix.
pub const RDFS_NS: &str = "http://www.w3.org/2000/01/rdf-schema#";
/// The `xsd:` namespace prefix.
pub const XSD_NS: &str = "http://www.w3.org/2001/XMLSchema#";
/// The `sh:` (SHACL) namespace prefix.
pub const SH_NS: &str = "http://www.w3.org/ns/shacl#";

/// Full IRI of `xsd:string`, used to detect "plain" literals.
pub const XSD_STRING: &str = "http://www.w3.org/2001/XMLSchema#string";

macro_rules! vocab {
    ($ns:expr, $( $(#[$doc:meta])* $name:ident => $local:expr ),+ $(,)?) => {
        $(
            $(#[$doc])*
            pub fn $name() -> Iri {
                Iri::new(concat!($ns, $local))
            }
        )+
    };
}

/// The RDF vocabulary.
pub mod rdf {
    use super::Iri;
    vocab!("http://www.w3.org/1999/02/22-rdf-syntax-ns#",
        /// `rdf:type`
        type_ => "type",
        /// `rdf:first` (list head)
        first => "first",
        /// `rdf:rest` (list tail)
        rest => "rest",
        /// `rdf:nil` (empty list)
        nil => "nil",
        /// `rdf:langString` (datatype of language-tagged strings)
        lang_string => "langString",
    );
}

/// The RDFS vocabulary.
pub mod rdfs {
    use super::Iri;
    vocab!("http://www.w3.org/2000/01/rdf-schema#",
        /// `rdfs:subClassOf`
        sub_class_of => "subClassOf",
        /// `rdfs:label`
        label => "label",
    );
}

/// The XML Schema datatypes vocabulary.
pub mod xsd {
    use super::Iri;
    vocab!("http://www.w3.org/2001/XMLSchema#",
        /// `xsd:string`
        string => "string",
        /// `xsd:boolean`
        boolean => "boolean",
        /// `xsd:integer`
        integer => "integer",
        /// `xsd:int`
        int => "int",
        /// `xsd:long`
        long => "long",
        /// `xsd:decimal`
        decimal => "decimal",
        /// `xsd:double`
        double => "double",
        /// `xsd:float`
        float => "float",
        /// `xsd:date`
        date => "date",
        /// `xsd:dateTime`
        date_time => "dateTime",
        /// `xsd:anyURI`
        any_uri => "anyURI",
        /// `xsd:nonNegativeInteger`
        non_negative_integer => "nonNegativeInteger",
    );
}

/// The SHACL vocabulary (constraint components, targets, paths, node kinds).
pub mod sh {
    use super::Iri;
    vocab!("http://www.w3.org/ns/shacl#",
        /// `sh:NodeShape`
        node_shape => "NodeShape",
        /// `sh:PropertyShape`
        property_shape => "PropertyShape",
        /// `sh:path`
        path => "path",
        /// `sh:inversePath`
        inverse_path => "inversePath",
        /// `sh:alternativePath`
        alternative_path => "alternativePath",
        /// `sh:zeroOrMorePath`
        zero_or_more_path => "zeroOrMorePath",
        /// `sh:oneOrMorePath`
        one_or_more_path => "oneOrMorePath",
        /// `sh:zeroOrOnePath`
        zero_or_one_path => "zeroOrOnePath",
        /// `sh:node`
        node => "node",
        /// `sh:property`
        property => "property",
        /// `sh:and`
        and => "and",
        /// `sh:or`
        or => "or",
        /// `sh:not`
        not => "not",
        /// `sh:xone`
        xone => "xone",
        /// `sh:class`
        class => "class",
        /// `sh:datatype`
        datatype => "datatype",
        /// `sh:nodeKind`
        node_kind => "nodeKind",
        /// `sh:IRI`
        iri => "IRI",
        /// `sh:BlankNode`
        blank_node => "BlankNode",
        /// `sh:Literal`
        literal => "Literal",
        /// `sh:BlankNodeOrIRI`
        blank_node_or_iri => "BlankNodeOrIRI",
        /// `sh:BlankNodeOrLiteral`
        blank_node_or_literal => "BlankNodeOrLiteral",
        /// `sh:IRIOrLiteral`
        iri_or_literal => "IRIOrLiteral",
        /// `sh:minExclusive`
        min_exclusive => "minExclusive",
        /// `sh:minInclusive`
        min_inclusive => "minInclusive",
        /// `sh:maxExclusive`
        max_exclusive => "maxExclusive",
        /// `sh:maxInclusive`
        max_inclusive => "maxInclusive",
        /// `sh:minLength`
        min_length => "minLength",
        /// `sh:maxLength`
        max_length => "maxLength",
        /// `sh:pattern`
        pattern => "pattern",
        /// `sh:flags`
        flags => "flags",
        /// `sh:languageIn`
        language_in => "languageIn",
        /// `sh:uniqueLang`
        unique_lang => "uniqueLang",
        /// `sh:equals`
        equals => "equals",
        /// `sh:disjoint`
        disjoint => "disjoint",
        /// `sh:lessThan`
        less_than => "lessThan",
        /// `sh:lessThanOrEquals`
        less_than_or_equals => "lessThanOrEquals",
        /// `sh:minCount`
        min_count => "minCount",
        /// `sh:maxCount`
        max_count => "maxCount",
        /// `sh:qualifiedValueShape`
        qualified_value_shape => "qualifiedValueShape",
        /// `sh:qualifiedMinCount`
        qualified_min_count => "qualifiedMinCount",
        /// `sh:qualifiedMaxCount`
        qualified_max_count => "qualifiedMaxCount",
        /// `sh:qualifiedValueShapesDisjoint`
        qualified_value_shapes_disjoint => "qualifiedValueShapesDisjoint",
        /// `sh:closed`
        closed => "closed",
        /// `sh:ignoredProperties`
        ignored_properties => "ignoredProperties",
        /// `sh:hasValue`
        has_value => "hasValue",
        /// `sh:in`
        in_ => "in",
        /// `sh:targetNode`
        target_node => "targetNode",
        /// `sh:targetClass`
        target_class => "targetClass",
        /// `sh:targetSubjectsOf`
        target_subjects_of => "targetSubjectsOf",
        /// `sh:targetObjectsOf`
        target_objects_of => "targetObjectsOf",
        /// `sh:deactivated`
        deactivated => "deactivated",
        /// `sh:ValidationReport`
        validation_report => "ValidationReport",
        /// `sh:ValidationResult`
        validation_result => "ValidationResult",
        /// `sh:conforms`
        conforms => "conforms",
        /// `sh:result`
        result => "result",
        /// `sh:focusNode`
        focus_node => "focusNode",
        /// `sh:sourceShape`
        source_shape => "sourceShape",
        /// `sh:resultSeverity`
        result_severity => "resultSeverity",
        /// `sh:Violation`
        violation => "Violation",
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn namespaces_compose() {
        assert_eq!(rdf::type_().as_str(), format!("{RDF_NS}type"));
        assert_eq!(sh::min_count().as_str(), format!("{SH_NS}minCount"));
        assert_eq!(xsd::date_time().as_str(), format!("{XSD_NS}dateTime"));
        assert_eq!(
            rdfs::sub_class_of().as_str(),
            format!("{RDFS_NS}subClassOf")
        );
    }
}
