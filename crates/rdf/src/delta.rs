//! Write overlay over a [`FrozenGraph`]: adds and tombstones on top of an
//! immutable CSR base.
//!
//! A [`DeltaGraph`] is the continuous-ingest write path. The base snapshot
//! stays frozen and shared (`Arc`); edits land in two small tree-indexed
//! sides — `added` (triples not in the base) and `removed` (tombstones over
//! base triples) — and every read path serves the *merged* view:
//!
//! - forward/backward adjacency merges the base's sorted CSR run (minus
//!   tombstones) with the added side's sorted run, two-way, still ascending;
//! - the closed-check (`predicates_out_ids`) keeps a base predicate only
//!   while at least one of its objects survives the tombstones, and dedups
//!   against added predicates;
//! - `iter_ids` yields exactly the order the other two backends use
//!   (subject, then predicate, then object), so memo fingerprints and
//!   report orderings transfer.
//!
//! Invariants (maintained by [`DeltaGraph::insert`]/[`DeltaGraph::remove`],
//! checked by the delta cases of `tests/prop_incremental_agreement.rs`):
//!
//! - `added` is disjoint from the live base: re-adding a base triple is a
//!   no-op, re-adding a tombstoned triple just clears the tombstone;
//! - `removed` is a subset of the base: removing an added triple deletes it
//!   from `added`, removing an absent triple is a no-op;
//! - `len == base.len() - removed.len() + added.len()` at all times.
//!
//! **Id stability**: the interner starts as a clone of the base's (the
//! clone shares each term allocation), so every base id keeps its meaning
//! and new terms extend the id space densely. [`DeltaGraph::compact`]
//! re-freezes the merged view over that same interner, which is why memo
//! entries and collected id-triples survive compaction unchanged.

use std::collections::{BTreeMap, BTreeSet};
use std::iter::Peekable;
use std::sync::Arc;

use crate::access::GraphAccess;
use crate::frozen::FrozenGraph;
use crate::graph::{Graph, Interner, TermId};
use crate::term::{Iri, Term, Triple};

/// Two ascending iterators merged into one ascending iterator; equal
/// elements (possible only where the sides are allowed to overlap, e.g.
/// predicate runs) are emitted once.
struct MergeAsc<T, A, B>
where
    A: Iterator<Item = T>,
    B: Iterator<Item = T>,
{
    a: Peekable<A>,
    b: Peekable<B>,
}

impl<T, A, B> Iterator for MergeAsc<T, A, B>
where
    T: Ord + Copy,
    A: Iterator<Item = T>,
    B: Iterator<Item = T>,
{
    type Item = T;

    fn next(&mut self) -> Option<T> {
        match (self.a.peek().copied(), self.b.peek().copied()) {
            (Some(x), Some(y)) => {
                if x < y {
                    self.a.next()
                } else if y < x {
                    self.b.next()
                } else {
                    self.a.next();
                    self.b.next()
                }
            }
            (Some(_), None) => self.a.next(),
            (None, Some(_)) => self.b.next(),
            (None, None) => None,
        }
    }
}

fn merge<T: Ord + Copy>(
    a: impl Iterator<Item = T>,
    b: impl Iterator<Item = T>,
) -> impl Iterator<Item = T> {
    MergeAsc {
        a: a.peekable(),
        b: b.peekable(),
    }
}

/// One side of the delta (added triples or tombstones): the same three
/// indexes as the mutable [`Graph`], tree-keyed so every run iterates
/// ascending, but sized to the delta rather than the dataset.
#[derive(Debug, Default, Clone)]
struct DeltaIndex {
    /// s → p → {o}
    spo: BTreeMap<TermId, BTreeMap<TermId, BTreeSet<TermId>>>,
    /// o → p → {s}
    ops: BTreeMap<TermId, BTreeMap<TermId, BTreeSet<TermId>>>,
    /// p → {(s, o)}
    pso: BTreeMap<TermId, BTreeSet<(TermId, TermId)>>,
    len: usize,
}

impl DeltaIndex {
    fn insert(&mut self, s: TermId, p: TermId, o: TermId) -> bool {
        let added = self
            .spo
            .entry(s)
            .or_default()
            .entry(p)
            .or_default()
            .insert(o);
        if added {
            self.ops
                .entry(o)
                .or_default()
                .entry(p)
                .or_default()
                .insert(s);
            self.pso.entry(p).or_default().insert((s, o));
            self.len += 1;
        }
        added
    }

    fn remove(&mut self, s: TermId, p: TermId, o: TermId) -> bool {
        let removed = self
            .spo
            .get_mut(&s)
            .and_then(|m| m.get_mut(&p))
            .is_some_and(|set| set.remove(&o));
        if removed {
            let m = self.spo.get_mut(&s).expect("spo entry exists");
            if m.get(&p).is_some_and(|set| set.is_empty()) {
                m.remove(&p);
            }
            if m.is_empty() {
                self.spo.remove(&s);
            }
            if let Some(m) = self.ops.get_mut(&o) {
                if let Some(set) = m.get_mut(&p) {
                    set.remove(&s);
                    if set.is_empty() {
                        m.remove(&p);
                    }
                }
                if m.is_empty() {
                    self.ops.remove(&o);
                }
            }
            if let Some(set) = self.pso.get_mut(&p) {
                set.remove(&(s, o));
                if set.is_empty() {
                    self.pso.remove(&p);
                }
            }
            self.len -= 1;
        }
        removed
    }

    fn contains(&self, s: TermId, p: TermId, o: TermId) -> bool {
        self.spo
            .get(&s)
            .and_then(|m| m.get(&p))
            .is_some_and(|set| set.contains(&o))
    }

    fn objects(&self, s: TermId, p: TermId) -> impl Iterator<Item = TermId> + '_ {
        self.spo
            .get(&s)
            .and_then(|m| m.get(&p))
            .into_iter()
            .flat_map(|set| set.iter().copied())
    }

    fn subjects(&self, o: TermId, p: TermId) -> impl Iterator<Item = TermId> + '_ {
        self.ops
            .get(&o)
            .and_then(|m| m.get(&p))
            .into_iter()
            .flat_map(|set| set.iter().copied())
    }

    fn out_edges(&self, s: TermId) -> impl Iterator<Item = (TermId, TermId)> + '_ {
        self.spo.get(&s).into_iter().flat_map(|m| {
            m.iter()
                .flat_map(|(p, objs)| objs.iter().map(move |o| (*p, *o)))
        })
    }

    fn in_edges(&self, o: TermId) -> impl Iterator<Item = (TermId, TermId)> + '_ {
        self.ops.get(&o).into_iter().flat_map(|m| {
            m.iter()
                .flat_map(|(p, subs)| subs.iter().map(move |s| (*p, *s)))
        })
    }

    fn pred_edges(&self, p: TermId) -> impl Iterator<Item = (TermId, TermId)> + '_ {
        self.pso
            .get(&p)
            .into_iter()
            .flat_map(|set| set.iter().copied())
    }

    fn preds_out(&self, s: TermId) -> impl Iterator<Item = TermId> + '_ {
        self.spo.get(&s).into_iter().flat_map(|m| m.keys().copied())
    }
}

/// A mutable overlay over an immutable [`FrozenGraph`]; see the module docs
/// for the merge discipline and invariants.
#[derive(Debug, Clone)]
pub struct DeltaGraph {
    base: Arc<FrozenGraph>,
    /// Clone of the base interner, extended by delta-only terms. Base ids
    /// are a stable prefix of this id space.
    terms: Interner,
    added: DeltaIndex,
    removed: DeltaIndex,
    len: usize,
}

impl DeltaGraph {
    /// An empty overlay: the merged view equals the base.
    pub fn new(base: Arc<FrozenGraph>) -> DeltaGraph {
        let terms = base.interner().clone();
        let len = base.len();
        DeltaGraph {
            base,
            terms,
            added: DeltaIndex::default(),
            removed: DeltaIndex::default(),
            len,
        }
    }

    /// The frozen base this overlay extends.
    pub fn base(&self) -> &Arc<FrozenGraph> {
        &self.base
    }

    /// Triples in the added side.
    pub fn added_len(&self) -> usize {
        self.added.len
    }

    /// Tombstoned base triples.
    pub fn removed_len(&self) -> usize {
        self.removed.len
    }

    /// Total delta size (adds + tombstones) — the compaction trigger.
    pub fn delta_len(&self) -> usize {
        self.added.len + self.removed.len
    }

    /// Number of triples in the merged view.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff the merged view has no triples.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts a triple into the merged view. Returns the id triple iff the
    /// view changed (re-adding a live triple is a no-op; re-adding a
    /// tombstoned base triple clears the tombstone).
    pub fn insert(&mut self, triple: &Triple) -> Option<(TermId, TermId, TermId)> {
        assert!(
            triple.subject.is_subject(),
            "triple subject must be an IRI or blank node"
        );
        let s = self.terms.intern(&triple.subject);
        let p = self.terms.intern(&Term::Iri(triple.predicate.clone()));
        let o = self.terms.intern(&triple.object);
        self.insert_ids(s, p, o).then_some((s, p, o))
    }

    fn insert_ids(&mut self, s: TermId, p: TermId, o: TermId) -> bool {
        if self.removed.remove(s, p, o) {
            self.len += 1;
            return true;
        }
        if self.base.contains_ids(s, p, o) {
            return false;
        }
        let added = self.added.insert(s, p, o);
        if added {
            self.len += 1;
        }
        added
    }

    /// Removes a triple from the merged view. Returns the id triple iff the
    /// view changed (removing an absent triple is a no-op).
    pub fn remove(&mut self, triple: &Triple) -> Option<(TermId, TermId, TermId)> {
        let (Some(s), Some(p), Some(o)) = (
            self.terms.get(&triple.subject),
            self.terms.get(&Term::Iri(triple.predicate.clone())),
            self.terms.get(&triple.object),
        ) else {
            return None;
        };
        self.remove_ids(s, p, o).then_some((s, p, o))
    }

    fn remove_ids(&mut self, s: TermId, p: TermId, o: TermId) -> bool {
        if self.added.remove(s, p, o) {
            self.len -= 1;
            return true;
        }
        if self.base.contains_ids(s, p, o) && self.removed.insert(s, p, o) {
            self.len -= 1;
            return true;
        }
        false
    }

    /// True iff the triple is in the merged view.
    pub fn contains(&self, triple: &Triple) -> bool {
        let (Some(s), Some(p), Some(o)) = (
            self.terms.get(&triple.subject),
            self.terms.get(&Term::Iri(triple.predicate.clone())),
            self.terms.get(&triple.object),
        ) else {
            return false;
        };
        self.contains_ids(s, p, o)
    }

    /// True iff the id-level triple is in the merged view.
    pub fn contains_ids(&self, s: TermId, p: TermId, o: TermId) -> bool {
        self.added.contains(s, p, o)
            || (self.base.contains_ids(s, p, o) && !self.removed.contains(s, p, o))
    }

    /// Objects of `(s, p, ?)` as ids, ascending.
    pub fn objects_ids(&self, s: TermId, p: TermId) -> impl Iterator<Item = TermId> + '_ {
        let live_base = self
            .base
            .objects_ids(s, p)
            .filter(move |&o| !self.removed.contains(s, p, o));
        merge(live_base, self.added.objects(s, p))
    }

    /// Subjects of `(?, p, o)` as ids, ascending.
    pub fn subjects_ids(&self, o: TermId, p: TermId) -> impl Iterator<Item = TermId> + '_ {
        let live_base = self
            .base
            .subjects_ids(o, p)
            .filter(move |&s| !self.removed.contains(s, p, o));
        merge(live_base, self.added.subjects(o, p))
    }

    /// Outgoing `(predicate, object)` id pairs of a subject, ascending.
    pub fn out_edges_ids(&self, s: TermId) -> impl Iterator<Item = (TermId, TermId)> + '_ {
        let live_base = self
            .base
            .out_edges_ids(s)
            .filter(move |&(p, o)| !self.removed.contains(s, p, o));
        merge(live_base, self.added.out_edges(s))
    }

    /// Incoming `(predicate, subject)` id pairs of an object, ascending.
    pub fn in_edges_ids(&self, o: TermId) -> impl Iterator<Item = (TermId, TermId)> + '_ {
        let live_base = self
            .base
            .in_edges_ids(o)
            .filter(move |&(p, s)| !self.removed.contains(s, p, o));
        merge(live_base, self.added.in_edges(o))
    }

    /// All `(s, o)` id pairs with predicate `p`, ascending.
    pub fn edges_with_predicate_ids(
        &self,
        p: TermId,
    ) -> impl Iterator<Item = (TermId, TermId)> + '_ {
        let live_base = self
            .base
            .edges_with_predicate_ids(p)
            .filter(move |&(s, o)| !self.removed.contains(s, p, o));
        merge(live_base, self.added.pred_edges(p))
    }

    /// Distinct outgoing predicates of a subject, ascending — the closed
    /// check. A base predicate stays listed only while at least one of its
    /// objects survives the tombstones; the merge dedups predicates present
    /// on both sides.
    pub fn predicates_out_ids(&self, s: TermId) -> impl Iterator<Item = TermId> + '_ {
        let live_base = self.base.predicates_out_ids(s).filter(move |&p| {
            self.base
                .objects_ids(s, p)
                .any(|o| !self.removed.contains(s, p, o))
        });
        merge(live_base, self.added.preds_out(s))
    }

    /// All triples as id tuples, ascending by (s, p, o) — same order as the
    /// mutable and frozen backends.
    pub fn iter_ids(&self) -> impl Iterator<Item = (TermId, TermId, TermId)> + '_ {
        (0..self.terms.len() as u32).flat_map(move |s| {
            self.out_edges_ids(TermId(s))
                .map(move |(p, o)| (TermId(s), p, o))
        })
    }

    /// All nodes (subjects and objects of live triples) as ids.
    pub fn node_ids(&self) -> BTreeSet<TermId> {
        let mut nodes: BTreeSet<TermId> = self.base.node_ids_slice().iter().copied().collect();
        // Tombstones may have orphaned some base nodes: re-check liveness
        // of exactly the endpoints the tombstones touch.
        let mut candidates = BTreeSet::new();
        for (&s, by_p) in &self.removed.spo {
            candidates.insert(s);
            for objs in by_p.values() {
                candidates.extend(objs.iter().copied());
            }
        }
        for n in candidates {
            let live =
                self.out_edges_ids(n).next().is_some() || self.in_edges_ids(n).next().is_some();
            if !live {
                nodes.remove(&n);
            }
        }
        for (&s, by_p) in &self.added.spo {
            nodes.insert(s);
            for objs in by_p.values() {
                nodes.extend(objs.iter().copied());
            }
        }
        nodes
    }

    /// Resolves an id back to its term.
    pub fn term(&self, id: TermId) -> &Term {
        self.terms.resolve(id)
    }

    /// The id of a term, if interned (base or delta).
    pub fn id_of(&self, term: &Term) -> Option<TermId> {
        self.terms.get(term)
    }

    /// The id of an IRI used as a predicate or node.
    pub fn id_of_iri(&self, iri: &Iri) -> Option<TermId> {
        self.terms.get(&Term::Iri(iri.clone()))
    }

    /// Materializes an id triple into a [`Triple`].
    pub fn triple_of(&self, s: TermId, p: TermId, o: TermId) -> Triple {
        let Term::Iri(pred) = self.term(p).clone() else {
            unreachable!("predicate ids always resolve to IRIs");
        };
        Triple {
            subject: self.term(s).clone(),
            predicate: pred,
            object: self.term(o).clone(),
        }
    }

    /// Iterates all triples of the merged view.
    pub fn iter(&self) -> impl Iterator<Item = Triple> + '_ {
        self.iter_ids()
            .map(move |(s, p, o)| self.triple_of(s, p, o))
    }

    /// Re-freezes the merged view into a fresh CSR snapshot.
    ///
    /// The compacted graph keeps this overlay's interner (base ids plus
    /// delta ids, unchanged), so everything keyed by id — memo entries,
    /// compiled paths, stored target lists — remains valid against the new
    /// base. Cost is one full index rebuild, amortized by running it only
    /// when `delta_len()` crosses the caller's threshold.
    pub fn compact(&self) -> FrozenGraph {
        let mut g = Graph::new();
        g.terms = self.terms.clone();
        g.reserve(self.len);
        for (s, p, o) in self.iter_ids() {
            g.insert_ids(s, p, o);
        }
        g.freeze()
    }
}

impl GraphAccess for DeltaGraph {
    fn len(&self) -> usize {
        DeltaGraph::len(self)
    }

    fn term_count(&self) -> usize {
        self.terms.len()
    }

    fn contains_ids(&self, s: TermId, p: TermId, o: TermId) -> bool {
        DeltaGraph::contains_ids(self, s, p, o)
    }

    fn objects_ids(&self, s: TermId, p: TermId) -> impl Iterator<Item = TermId> + '_ {
        DeltaGraph::objects_ids(self, s, p)
    }

    fn subjects_ids(&self, o: TermId, p: TermId) -> impl Iterator<Item = TermId> + '_ {
        DeltaGraph::subjects_ids(self, o, p)
    }

    fn out_edges_ids(&self, s: TermId) -> impl Iterator<Item = (TermId, TermId)> + '_ {
        DeltaGraph::out_edges_ids(self, s)
    }

    fn in_edges_ids(&self, o: TermId) -> impl Iterator<Item = (TermId, TermId)> + '_ {
        DeltaGraph::in_edges_ids(self, o)
    }

    fn edges_with_predicate_ids(&self, p: TermId) -> impl Iterator<Item = (TermId, TermId)> + '_ {
        DeltaGraph::edges_with_predicate_ids(self, p)
    }

    fn predicates_out_ids(&self, s: TermId) -> impl Iterator<Item = TermId> + '_ {
        DeltaGraph::predicates_out_ids(self, s)
    }

    fn iter_ids(&self) -> impl Iterator<Item = (TermId, TermId, TermId)> + '_ {
        DeltaGraph::iter_ids(self)
    }

    fn node_ids(&self) -> BTreeSet<TermId> {
        DeltaGraph::node_ids(self)
    }

    fn term(&self, id: TermId) -> &Term {
        DeltaGraph::term(self, id)
    }

    fn id_of(&self, term: &Term) -> Option<TermId> {
        DeltaGraph::id_of(self, term)
    }

    fn id_of_iri(&self, iri: &Iri) -> Option<TermId> {
        DeltaGraph::id_of_iri(self, iri)
    }

    fn triple_of(&self, s: TermId, p: TermId, o: TermId) -> Triple {
        DeltaGraph::triple_of(self, s, p, o)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: &str, p: &str, o: &str) -> Triple {
        Triple::new(Term::iri(s), Iri::new(p), Term::iri(o))
    }

    fn base() -> Arc<FrozenGraph> {
        let g = Graph::from_triples([
            t("a", "p", "b"),
            t("a", "p", "c"),
            t("a", "q", "b"),
            t("d", "p", "b"),
        ]);
        Arc::new(g.freeze())
    }

    #[test]
    fn empty_overlay_equals_base() {
        let b = base();
        let d = DeltaGraph::new(Arc::clone(&b));
        assert_eq!(d.len(), b.len());
        assert_eq!(
            d.iter_ids().collect::<Vec<_>>(),
            b.iter_ids().collect::<Vec<_>>()
        );
        assert_eq!(GraphAccess::node_ids(&d), GraphAccess::node_ids(b.as_ref()));
    }

    #[test]
    fn insert_and_remove_maintain_invariants() {
        let mut d = DeltaGraph::new(base());
        // Adding a live base triple is a no-op.
        assert!(d.insert(&t("a", "p", "b")).is_none());
        assert_eq!(d.delta_len(), 0);
        // A genuinely new triple lands in `added`.
        assert!(d.insert(&t("a", "p", "z")).is_some());
        assert!(d.contains(&t("a", "p", "z")));
        assert_eq!((d.added_len(), d.removed_len()), (1, 0));
        // Removing a base triple tombstones it.
        assert!(d.remove(&t("a", "p", "b")).is_some());
        assert!(!d.contains(&t("a", "p", "b")));
        assert_eq!((d.added_len(), d.removed_len()), (1, 1));
        // Removing it again is a no-op.
        assert!(d.remove(&t("a", "p", "b")).is_none());
        // Re-adding clears the tombstone rather than growing `added`.
        assert!(d.insert(&t("a", "p", "b")).is_some());
        assert_eq!((d.added_len(), d.removed_len()), (1, 0));
        // Removing an added triple shrinks `added`.
        assert!(d.remove(&t("a", "p", "z")).is_some());
        assert_eq!(d.delta_len(), 0);
        assert_eq!(d.len(), d.base().len());
        // Removing an absent triple (unknown terms) is a no-op.
        assert!(d.remove(&t("nope", "p", "nope")).is_none());
    }

    #[test]
    fn merged_view_agrees_with_replayed_graph() {
        let g0 = Graph::from_triples([
            t("a", "p", "b"),
            t("a", "p", "c"),
            t("a", "q", "b"),
            t("d", "p", "b"),
        ]);
        let mut d = DeltaGraph::new(Arc::new(g0.freeze()));
        let mut g = g0;
        // Same edit sequence against both backends: same interning order,
        // so the id spaces stay identical.
        for add in [t("a", "p", "z"), t("z", "q", "a"), t("d", "r", "w")] {
            assert_eq!(d.insert(&add).is_some(), g.insert(add.clone()));
        }
        for del in [t("a", "p", "b"), t("d", "p", "b"), t("a", "p", "z")] {
            assert_eq!(d.remove(&del).is_some(), g.remove(&del));
        }
        assert_eq!(d.len(), g.len());
        assert_eq!(
            d.iter_ids().collect::<Vec<_>>(),
            g.iter_ids().collect::<Vec<_>>()
        );
        assert_eq!(DeltaGraph::node_ids(&d), g.node_ids());
        for n in 0..g.terms.len() as u32 {
            let n = TermId(n);
            assert_eq!(
                d.out_edges_ids(n).collect::<Vec<_>>(),
                g.out_edges_ids(n).collect::<Vec<_>>()
            );
            assert_eq!(
                d.in_edges_ids(n).collect::<Vec<_>>(),
                g.in_edges_ids(n).collect::<Vec<_>>()
            );
            assert_eq!(
                d.predicates_out_ids(n).collect::<Vec<_>>(),
                g.predicates_out_ids(n).collect::<Vec<_>>()
            );
            assert_eq!(
                DeltaGraph::edges_with_predicate_ids(&d, n).collect::<Vec<_>>(),
                Graph::edges_with_predicate_ids(&g, n).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn closed_check_drops_fully_tombstoned_predicates() {
        let mut d = DeltaGraph::new(base());
        let a = d.id_of(&Term::iri("a")).unwrap();
        let q = d.id_of_iri(&Iri::new("q")).unwrap();
        // "a" has predicates p and q; tombstone its only q-edge.
        assert!(d.remove(&t("a", "q", "b")).is_some());
        let preds: Vec<_> = d.predicates_out_ids(a).collect();
        assert!(!preds.contains(&q), "fully tombstoned predicate must drop");
        // p survives: only one of its two objects is gone.
        assert!(d.remove(&t("a", "p", "b")).is_some());
        let p = d.id_of_iri(&Iri::new("p")).unwrap();
        assert!(d.predicates_out_ids(a).any(|x| x == p));
    }

    #[test]
    fn compact_is_id_stable_and_equal() {
        let mut d = DeltaGraph::new(base());
        d.insert(&t("a", "p", "z"));
        d.remove(&t("d", "p", "b"));
        let compacted = d.compact();
        assert_eq!(compacted.len(), d.len());
        assert_eq!(
            compacted.iter_ids().collect::<Vec<_>>(),
            d.iter_ids().collect::<Vec<_>>()
        );
        // Ids survive: the same term resolves to the same id in both.
        for term in ["a", "b", "z"] {
            assert_eq!(d.id_of(&Term::iri(term)), compacted.id_of(&Term::iri(term)));
        }
        // And a fresh overlay on the compacted base is again the identity.
        let d2 = DeltaGraph::new(Arc::new(compacted));
        assert_eq!(d2.len(), d.len());
        assert_eq!(d2.delta_len(), 0);
    }

    #[test]
    fn node_ids_tracks_orphaned_endpoints() {
        let g = Graph::from_triples([t("a", "p", "b"), t("c", "p", "b")]);
        let mut d = DeltaGraph::new(Arc::new(g.freeze()));
        let c = d.id_of(&Term::iri("c")).unwrap();
        assert!(DeltaGraph::node_ids(&d).contains(&c));
        // Tombstoning c's only triple orphans c but keeps b (still an
        // object of a's triple).
        d.remove(&t("c", "p", "b"));
        let nodes = DeltaGraph::node_ids(&d);
        assert!(!nodes.contains(&c));
        assert!(nodes.contains(&d.id_of(&Term::iri("b")).unwrap()));
    }
}
