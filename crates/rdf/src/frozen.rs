//! Immutable compressed-sparse-row snapshot of a [`Graph`].
//!
//! [`FrozenGraph`] is built once via [`Graph::freeze`] and stores every
//! index as sorted contiguous arrays of dense `u32` ids:
//!
//! - forward `(s, p) → [o]` and backward `(o, p) → [s]` adjacency as
//!   two-level CSR (per-node predicate list + per-pair object/subject run),
//! - per-predicate `(s, o)` edge lists for predicate scans, and
//! - the per-subject sorted predicate list doubling as the `closed`-check
//!   index.
//!
//! An edge step is then a binary search over a short predicate slice plus a
//! contiguous slice iteration — no hash lookups, no tree pointer chases.
//!
//! Freeze invariants (checked by `tests/prop_frozen_agreement.rs`):
//!
//! - **Id stability**: the interner is shared with the source `Graph`
//!   (cloning bumps `Arc` refcounts, not allocations), so a `TermId` means
//!   the same term in both backends and compiled paths / memo keys can be
//!   reused across them.
//! - **Sortedness**: every adjacency run is ascending by id, and
//!   [`GraphAccess::iter_ids`] yields triples in exactly the order the
//!   mutable backend does (subject, then predicate, then object).
//! - **Same triple set**: `freeze` is a pure snapshot; later mutations of
//!   the source `Graph` are not reflected.

use std::collections::BTreeSet;

use crate::access::GraphAccess;
use crate::graph::{Graph, Interner, TermId};
use crate::term::{Iri, Term, Triple};

/// One level of a two-level CSR index: per node, a sorted run of
/// predicates; per (node, predicate) pair, a sorted run of neighbor ids.
#[derive(Debug, Default, Clone)]
struct CsrIndex {
    /// `node_offsets[n]..node_offsets[n + 1]` indexes the predicate run of
    /// node `n` in `preds` (length: id-space size + 1, monotone).
    node_offsets: Vec<u32>,
    /// Predicate ids, sorted within each node's run.
    preds: Vec<TermId>,
    /// `neighbor_starts[k]..neighbor_starts[k + 1]` indexes the neighbor
    /// run of pair `k` (global index into `preds`) in `neighbors`
    /// (length: `preds.len() + 1`, monotone).
    neighbor_starts: Vec<u32>,
    /// Neighbor ids, sorted within each pair's run.
    neighbors: Vec<TermId>,
}

impl CsrIndex {
    /// Builds one direction from the mutable backend's node → predicate →
    /// neighbor index. BTree iteration is already ascending, so every run
    /// lands pre-sorted.
    fn build(
        n_terms: usize,
        index: &crate::graph::IntMap<
            TermId,
            std::collections::BTreeMap<TermId, std::collections::BTreeSet<TermId>>,
        >,
    ) -> Self {
        let mut csr = CsrIndex {
            node_offsets: Vec::with_capacity(n_terms + 1),
            preds: Vec::new(),
            neighbor_starts: Vec::new(),
            neighbors: Vec::new(),
        };
        for n in 0..n_terms as u32 {
            csr.node_offsets.push(csr.preds.len() as u32);
            if let Some(by_pred) = index.get(&TermId(n)) {
                for (&p, neighbors) in by_pred {
                    csr.preds.push(p);
                    csr.neighbor_starts.push(csr.neighbors.len() as u32);
                    csr.neighbors.extend(neighbors.iter().copied());
                }
            }
        }
        csr.node_offsets.push(csr.preds.len() as u32);
        csr.neighbor_starts.push(csr.neighbors.len() as u32);
        csr
    }

    /// The sorted predicate run of `node` (empty for out-of-range ids,
    /// which can arise from terms interned without triples).
    fn pred_run(&self, node: TermId) -> &[TermId] {
        let n = node.0 as usize;
        if n + 1 >= self.node_offsets.len() {
            return &[];
        }
        &self.preds[self.node_offsets[n] as usize..self.node_offsets[n + 1] as usize]
    }

    /// The sorted neighbor run of `(node, pred)`, empty when absent.
    fn neighbor_run(&self, node: TermId, pred: TermId) -> &[TermId] {
        let n = node.0 as usize;
        if n + 1 >= self.node_offsets.len() {
            return &[];
        }
        let lo = self.node_offsets[n] as usize;
        let run = &self.preds[lo..self.node_offsets[n + 1] as usize];
        match run.binary_search(&pred) {
            Ok(pos) => {
                let k = lo + pos;
                &self.neighbors
                    [self.neighbor_starts[k] as usize..self.neighbor_starts[k + 1] as usize]
            }
            Err(_) => &[],
        }
    }

    /// All `(pred, neighbor)` pairs of `node`, ascending.
    fn edges(&self, node: TermId) -> impl Iterator<Item = (TermId, TermId)> + '_ {
        let n = node.0 as usize;
        let (lo, hi) = if n + 1 >= self.node_offsets.len() {
            (0, 0)
        } else {
            (
                self.node_offsets[n] as usize,
                self.node_offsets[n + 1] as usize,
            )
        };
        (lo..hi).flat_map(move |k| {
            let p = self.preds[k];
            self.neighbors[self.neighbor_starts[k] as usize..self.neighbor_starts[k + 1] as usize]
                .iter()
                .map(move |&x| (p, x))
        })
    }
}

/// An immutable CSR snapshot of a [`Graph`]; see the module docs for the
/// layout and invariants. Build with [`Graph::freeze`].
#[derive(Debug, Default, Clone)]
pub struct FrozenGraph {
    terms: Interner,
    /// Forward adjacency: `(s, p) → [o]`.
    fwd: CsrIndex,
    /// Backward adjacency: `(o, p) → [s]`.
    bwd: CsrIndex,
    /// Distinct predicate ids, ascending.
    pred_ids: Vec<TermId>,
    /// `pred_edge_starts[k]..pred_edge_starts[k + 1]` indexes the edge run
    /// of `pred_ids[k]` in `pred_edges` (length: `pred_ids.len() + 1`).
    pred_edge_starts: Vec<u32>,
    /// `(s, o)` pairs per predicate, ascending.
    pred_edges: Vec<(TermId, TermId)>,
    /// Distinct nodes (subjects and objects), ascending.
    nodes: Vec<TermId>,
    len: usize,
}

impl Graph {
    /// Builds the immutable CSR snapshot of this graph.
    ///
    /// Ids are stable: a [`TermId`] issued by this graph denotes the same
    /// term in the snapshot (the interner is shared structurally), so
    /// anything keyed by id — compiled paths, conformance memos, collected
    /// id-triples — transfers between the backends.
    pub fn freeze(&self) -> FrozenGraph {
        let n_terms = self.terms.len();
        let fwd = CsrIndex::build(n_terms, &self.spo);
        let bwd = CsrIndex::build(n_terms, &self.ops);

        let mut pred_ids: Vec<TermId> = self.pso.keys().copied().collect();
        pred_ids.sort_unstable();
        let mut pred_edge_starts = Vec::with_capacity(pred_ids.len() + 1);
        let mut pred_edges = Vec::with_capacity(self.len);
        for p in &pred_ids {
            pred_edge_starts.push(pred_edges.len() as u32);
            pred_edges.extend(self.pso[p].iter().copied());
        }
        pred_edge_starts.push(pred_edges.len() as u32);

        FrozenGraph {
            terms: self.terms.clone(),
            fwd,
            bwd,
            pred_ids,
            pred_edge_starts,
            pred_edges,
            nodes: self.node_ids().into_iter().collect(),
            len: self.len,
        }
    }
}

impl FrozenGraph {
    /// The snapshot's interner (shared id space with the source graph);
    /// the delta overlay clones it to extend the id space without
    /// renumbering.
    pub(crate) fn interner(&self) -> &Interner {
        &self.terms
    }

    /// Number of triples.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff the snapshot has no triples.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True iff the id-level triple is in the graph.
    pub fn contains_ids(&self, s: TermId, p: TermId, o: TermId) -> bool {
        self.fwd.neighbor_run(s, p).binary_search(&o).is_ok()
    }

    /// Objects of `(s, p, ?)` as ids, ascending.
    pub fn objects_ids(&self, s: TermId, p: TermId) -> impl Iterator<Item = TermId> + '_ {
        self.fwd.neighbor_run(s, p).iter().copied()
    }

    /// Subjects of `(?, p, o)` as ids, ascending.
    pub fn subjects_ids(&self, o: TermId, p: TermId) -> impl Iterator<Item = TermId> + '_ {
        self.bwd.neighbor_run(o, p).iter().copied()
    }

    /// Outgoing `(predicate, object)` id pairs of a subject, ascending.
    pub fn out_edges_ids(&self, s: TermId) -> impl Iterator<Item = (TermId, TermId)> + '_ {
        self.fwd.edges(s)
    }

    /// Incoming `(predicate, subject)` id pairs of an object, ascending.
    pub fn in_edges_ids(&self, o: TermId) -> impl Iterator<Item = (TermId, TermId)> + '_ {
        self.bwd.edges(o)
    }

    /// All `(s, o)` id pairs with predicate `p`, ascending.
    pub fn edges_with_predicate_ids(
        &self,
        p: TermId,
    ) -> impl Iterator<Item = (TermId, TermId)> + '_ {
        let run = match self.pred_ids.binary_search(&p) {
            Ok(k) => {
                &self.pred_edges
                    [self.pred_edge_starts[k] as usize..self.pred_edge_starts[k + 1] as usize]
            }
            Err(_) => &[],
        };
        run.iter().copied()
    }

    /// Distinct outgoing predicates of a subject, ascending — the `closed`
    /// constraint's scan, served from one contiguous slice.
    pub fn predicates_out_ids(&self, s: TermId) -> impl Iterator<Item = TermId> + '_ {
        self.fwd.pred_run(s).iter().copied()
    }

    /// All triples as id tuples, ascending by (s, p, o).
    pub fn iter_ids(&self) -> impl Iterator<Item = (TermId, TermId, TermId)> + '_ {
        (0..self.terms.len() as u32).flat_map(move |s| {
            self.fwd
                .edges(TermId(s))
                .map(move |(p, o)| (TermId(s), p, o))
        })
    }

    /// All nodes as a sorted slice (no allocation; prefer over
    /// [`GraphAccess::node_ids`] on the frozen backend).
    pub fn node_ids_slice(&self) -> &[TermId] {
        &self.nodes
    }

    /// Resolves an id back to its term.
    pub fn term(&self, id: TermId) -> &Term {
        self.terms.resolve(id)
    }

    /// The id of a term, if interned in the source graph at freeze time.
    pub fn id_of(&self, term: &Term) -> Option<TermId> {
        self.terms.get(term)
    }

    /// The id of an IRI used as a predicate or node.
    pub fn id_of_iri(&self, iri: &Iri) -> Option<TermId> {
        self.terms.get(&Term::Iri(iri.clone()))
    }

    /// Materializes an id triple into a [`Triple`].
    pub fn triple_of(&self, s: TermId, p: TermId, o: TermId) -> Triple {
        let Term::Iri(pred) = self.term(p).clone() else {
            unreachable!("predicate ids always resolve to IRIs");
        };
        Triple {
            subject: self.term(s).clone(),
            predicate: pred,
            object: self.term(o).clone(),
        }
    }

    /// Iterates all triples (same order as the source graph).
    pub fn iter(&self) -> impl Iterator<Item = Triple> + '_ {
        self.iter_ids()
            .map(move |(s, p, o)| self.triple_of(s, p, o))
    }
}

impl GraphAccess for FrozenGraph {
    fn len(&self) -> usize {
        FrozenGraph::len(self)
    }

    fn term_count(&self) -> usize {
        self.terms.len()
    }

    fn contains_ids(&self, s: TermId, p: TermId, o: TermId) -> bool {
        FrozenGraph::contains_ids(self, s, p, o)
    }

    fn objects_ids(&self, s: TermId, p: TermId) -> impl Iterator<Item = TermId> + '_ {
        FrozenGraph::objects_ids(self, s, p)
    }

    fn subjects_ids(&self, o: TermId, p: TermId) -> impl Iterator<Item = TermId> + '_ {
        FrozenGraph::subjects_ids(self, o, p)
    }

    fn out_edges_ids(&self, s: TermId) -> impl Iterator<Item = (TermId, TermId)> + '_ {
        FrozenGraph::out_edges_ids(self, s)
    }

    fn in_edges_ids(&self, o: TermId) -> impl Iterator<Item = (TermId, TermId)> + '_ {
        FrozenGraph::in_edges_ids(self, o)
    }

    fn edges_with_predicate_ids(&self, p: TermId) -> impl Iterator<Item = (TermId, TermId)> + '_ {
        FrozenGraph::edges_with_predicate_ids(self, p)
    }

    fn predicates_out_ids(&self, s: TermId) -> impl Iterator<Item = TermId> + '_ {
        FrozenGraph::predicates_out_ids(self, s)
    }

    fn iter_ids(&self) -> impl Iterator<Item = (TermId, TermId, TermId)> + '_ {
        FrozenGraph::iter_ids(self)
    }

    fn node_ids(&self) -> BTreeSet<TermId> {
        self.nodes.iter().copied().collect()
    }

    fn term(&self, id: TermId) -> &Term {
        FrozenGraph::term(self, id)
    }

    fn id_of(&self, term: &Term) -> Option<TermId> {
        FrozenGraph::id_of(self, term)
    }

    fn id_of_iri(&self, iri: &Iri) -> Option<TermId> {
        FrozenGraph::id_of_iri(self, iri)
    }

    fn triple_of(&self, s: TermId, p: TermId, o: TermId) -> Triple {
        FrozenGraph::triple_of(self, s, p, o)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: &str, p: &str, o: &str) -> Triple {
        Triple::new(Term::iri(s), Iri::new(p), Term::iri(o))
    }

    #[test]
    fn freeze_preserves_triples_ids_and_order() {
        let g = Graph::from_triples([
            t("a", "p", "b"),
            t("a", "p", "c"),
            t("a", "q", "b"),
            t("d", "p", "b"),
        ]);
        let f = g.freeze();
        assert_eq!(f.len(), g.len());
        let g_ids: Vec<_> = g.iter_ids().collect();
        let f_ids: Vec<_> = f.iter_ids().collect();
        assert_eq!(g_ids, f_ids);
        for term in ["a", "b", "c", "d"] {
            assert_eq!(g.id_of(&Term::iri(term)), f.id_of(&Term::iri(term)));
        }
    }

    #[test]
    fn frozen_accessors_match_mutable() {
        let g = Graph::from_triples([
            t("a", "p", "b"),
            t("b", "p", "c"),
            t("c", "q", "a"),
            t("a", "q", "a"),
        ]);
        let f = g.freeze();
        let a = g.id_of(&Term::iri("a")).unwrap();
        let b = g.id_of(&Term::iri("b")).unwrap();
        let p = g.id_of_iri(&Iri::new("p")).unwrap();
        let q = g.id_of_iri(&Iri::new("q")).unwrap();
        assert_eq!(
            g.objects_ids(a, p).collect::<Vec<_>>(),
            f.objects_ids(a, p).collect::<Vec<_>>()
        );
        assert_eq!(
            g.subjects_ids(b, p).collect::<Vec<_>>(),
            f.subjects_ids(b, p).collect::<Vec<_>>()
        );
        assert_eq!(
            g.out_edges_ids(a).collect::<Vec<_>>(),
            f.out_edges_ids(a).collect::<Vec<_>>()
        );
        assert_eq!(
            g.in_edges_ids(a).collect::<Vec<_>>(),
            f.in_edges_ids(a).collect::<Vec<_>>()
        );
        assert_eq!(
            g.edges_with_predicate_ids(q).collect::<Vec<_>>(),
            f.edges_with_predicate_ids(q).collect::<Vec<_>>()
        );
        assert_eq!(
            g.predicates_out_ids(a).collect::<Vec<_>>(),
            f.predicates_out_ids(a).collect::<Vec<_>>()
        );
        assert!(f.contains_ids(a, p, b));
        assert!(!f.contains_ids(b, q, a));
        assert_eq!(g.node_ids(), GraphAccess::node_ids(&f));
    }

    #[test]
    fn freeze_is_a_snapshot_not_a_view() {
        let mut g = Graph::from_triples([t("a", "p", "b")]);
        let f = g.freeze();
        g.insert(t("a", "p", "c"));
        assert_eq!(f.len(), 1);
        let c = g.id_of(&Term::iri("c")).unwrap();
        let a = g.id_of(&Term::iri("a")).unwrap();
        let p = g.id_of_iri(&Iri::new("p")).unwrap();
        assert!(!f.contains_ids(a, p, c));
    }

    #[test]
    fn out_of_range_ids_are_empty_not_panics() {
        let g = Graph::from_triples([t("a", "p", "b")]);
        let f = g.freeze();
        let bogus = TermId(999);
        assert_eq!(f.objects_ids(bogus, bogus).count(), 0);
        assert_eq!(f.out_edges_ids(bogus).count(), 0);
        assert_eq!(f.predicates_out_ids(bogus).count(), 0);
        assert!(!f.contains_ids(bogus, bogus, bogus));
    }
}
