//! Source positions recorded during parsing, so later analyses can point
//! diagnostics back at the document instead of at in-memory terms.

use std::collections::HashMap;
use std::fmt;

use crate::term::{Iri, Term};

/// A 1-based line/column position in a source document.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Span {
    pub line: usize,
    pub column: usize,
}

impl Span {
    pub fn new(line: usize, column: usize) -> Span {
        Span { line, column }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.column)
    }
}

/// Where each subject, and each `(subject, predicate)` pair, of a parsed
/// document appeared. The first occurrence wins: a subject split over
/// several statements keeps the position of its first mention, which is
/// where a reader would look for the definition.
#[derive(Debug, Clone, Default)]
pub struct TripleSpans {
    subjects: HashMap<Term, Span>,
    predicates: HashMap<(Term, Iri), Span>,
}

impl TripleSpans {
    /// Position of the first statement with this subject.
    pub fn subject(&self, subject: &Term) -> Option<Span> {
        self.subjects.get(subject).copied()
    }

    /// Position of the first `predicate` in a statement about `subject`.
    pub fn predicate(&self, subject: &Term, predicate: &Iri) -> Option<Span> {
        self.predicates
            .get(&(subject.clone(), predicate.clone()))
            .copied()
    }

    /// Number of recorded subject positions.
    pub fn len(&self) -> usize {
        self.subjects.len()
    }

    pub fn is_empty(&self) -> bool {
        self.subjects.is_empty()
    }

    pub(crate) fn record_subject(&mut self, subject: &Term, at: Span) {
        self.subjects.entry(subject.clone()).or_insert(at);
    }

    pub(crate) fn record_predicate(&mut self, subject: &Term, predicate: &Iri, at: Span) {
        self.predicates
            .entry((subject.clone(), predicate.clone()))
            .or_insert(at);
    }
}
