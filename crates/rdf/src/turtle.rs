//! Turtle parser and serializer.
//!
//! Supports the Turtle features needed for SHACL shapes graphs and data
//! graphs: `@prefix`/`PREFIX`, `@base`/`BASE` (used verbatim, no relative
//! resolution beyond simple concatenation), prefixed names, `a`,
//! predicate-object lists (`;`), object lists (`,`), blank node property
//! lists (`[...]`), collections (`(...)`), numeric / boolean / string
//! literal sugar, language tags, and datatype annotations.
//!
//! N-Triples documents are valid input too (Turtle is a superset for our
//! purposes); [`crate::ntriples`] offers a faster line-oriented reader.

use std::collections::HashMap;

use shapefrag_govern::ErrorCode;

use crate::error::{LossyLoad, ParseError};
use crate::graph::Graph;
use crate::span::{Span, TripleSpans};
use crate::term::{BlankNode, Iri, Literal, Term, Triple};
use crate::vocab::{rdf, xsd};

/// Deepest allowed nesting of blank-node property lists `[...]` and
/// collections `(...)`. Each level costs a handful of stack frames, so the
/// guard turns adversarially nested documents into a structured
/// [`ErrorCode::DepthLimit`] error instead of a stack overflow.
const MAX_NESTING: usize = 128;

/// Parses a Turtle document into a [`Graph`].
pub fn parse(input: &str) -> Result<Graph, ParseError> {
    let mut parser = Parser::new(input);
    parser.parse_document()?;
    Ok(parser.graph)
}

/// [`parse`], additionally recording where each subject and each
/// `(subject, predicate)` pair first appeared. The shapes-graph parser
/// threads these positions into analyzer diagnostics.
pub fn parse_with_spans(input: &str) -> Result<(Graph, TripleSpans), ParseError> {
    let mut parser = Parser::new(input);
    parser.spans = Some(TripleSpans::default());
    parser.parse_document()?;
    Ok((parser.graph, parser.spans.unwrap_or_default()))
}

/// Error-recovering parse: statements that fail are skipped up to the next
/// top-level `.` statement boundary (string literals, IRI refs, comments,
/// and bracket nesting are respected while scanning), one positioned
/// diagnostic is recorded per skipped region, and everything that parsed is
/// returned. Triples of the failed statement's already-parsed prefix are
/// kept — they are well-formed data even when a later object in the same
/// predicate-object list is not.
pub fn parse_lossy(input: &str) -> LossyLoad {
    let mut parser = Parser::new(input);
    let mut report = LossyLoad::default();
    loop {
        parser.skip_ws();
        if parser.peek().is_none() {
            break;
        }
        let before = parser.pos;
        match parser.parse_statement() {
            Ok(()) => report.statements_ok += 1,
            Err(e) => {
                report.diagnostics.push(e);
                report.statements_skipped += 1;
                parser.depth = 0;
                parser.recover_to_statement_boundary();
                if parser.pos == before {
                    // Guarantee progress even when recovery stalls at the
                    // very character that failed.
                    parser.bump();
                }
            }
        }
    }
    report.graph = parser.graph;
    report
}

struct Parser<'a> {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    column: usize,
    prefixes: HashMap<String, String>,
    base: String,
    graph: Graph,
    blank_counter: usize,
    depth: usize,
    /// When set, subject / predicate source positions are recorded as
    /// statements parse (see [`parse_with_spans`]).
    spans: Option<TripleSpans>,
    _input: &'a str,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        // Pre-size the graph from the document length: Turtle statements
        // average well under 100 bytes in the corpora we load, and
        // `reserve` tolerates overshoot on small documents.
        let mut graph = Graph::new();
        graph.reserve(input.len() / 100);
        Parser {
            chars: input.chars().collect(),
            pos: 0,
            line: 1,
            column: 1,
            prefixes: HashMap::new(),
            base: String::new(),
            graph,
            blank_counter: 0,
            depth: 0,
            spans: None,
            _input: input,
        }
    }

    fn here(&self) -> Span {
        Span::new(self.line, self.column)
    }

    fn note_subject(&mut self, subject: &Term, at: Span) {
        if let Some(spans) = &mut self.spans {
            spans.record_subject(subject, at);
        }
    }

    fn note_predicate(&mut self, subject: &Term, predicate: &Iri, at: Span) {
        if let Some(spans) = &mut self.spans {
            spans.record_predicate(subject, predicate, at);
        }
    }

    fn error(&self, msg: impl Into<String>) -> ParseError {
        ParseError::new(self.line, self.column, msg)
    }

    fn error_code(&self, code: ErrorCode, msg: impl Into<String>) -> ParseError {
        ParseError::with_code(code, self.line, self.column, msg)
    }

    fn enter_nested(&mut self) -> Result<(), ParseError> {
        self.depth += 1;
        if self.depth > MAX_NESTING {
            return Err(self.error_code(
                ErrorCode::DepthLimit,
                format!("nesting deeper than {MAX_NESTING} levels"),
            ));
        }
        Ok(())
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek_at(&self, offset: usize) -> Option<char> {
        self.chars.get(self.pos + offset).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.column = 1;
        } else {
            self.column += 1;
        }
        Some(c)
    }

    fn skip_ws(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('#') => {
                    while let Some(c) = self.bump() {
                        if c == '\n' {
                            break;
                        }
                    }
                }
                _ => break,
            }
        }
    }

    fn expect(&mut self, c: char) -> Result<(), ParseError> {
        match self.bump() {
            Some(got) if got == c => Ok(()),
            Some(got) => Err(self.error(format!("expected '{c}', found '{got}'"))),
            None => Err(self
                .error(format!("expected '{c}', found end of input"))
                .code(ErrorCode::UnexpectedEof)),
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        let kw_chars: Vec<char> = kw.chars().collect();
        if self.pos + kw_chars.len() > self.chars.len() {
            return false;
        }
        for (i, kc) in kw_chars.iter().enumerate() {
            if !self.chars[self.pos + i].eq_ignore_ascii_case(kc) {
                return false;
            }
        }
        // Keyword must be followed by whitespace or delimiter.
        match self.peek_at(kw_chars.len()) {
            Some(c) if c.is_alphanumeric() || c == '_' => return false,
            _ => {}
        }
        for _ in 0..kw_chars.len() {
            self.bump();
        }
        true
    }

    fn fresh_blank(&mut self) -> BlankNode {
        self.blank_counter += 1;
        BlankNode::new(format!("gen{}", self.blank_counter))
    }

    fn parse_document(&mut self) -> Result<(), ParseError> {
        loop {
            self.skip_ws();
            if self.peek().is_none() {
                return Ok(());
            }
            self.parse_statement()?;
        }
    }

    /// Parses one statement (a directive or a triples block with its
    /// terminating `.`); the cursor must be on its first character.
    fn parse_statement(&mut self) -> Result<(), ParseError> {
        if self.peek() == Some('@') {
            self.bump();
            if self.eat_keyword("prefix") {
                self.parse_prefix_decl()?;
                self.skip_ws();
                self.expect('.')?;
            } else if self.eat_keyword("base") {
                self.parse_base_decl()?;
                self.skip_ws();
                self.expect('.')?;
            } else {
                return Err(self.error("expected @prefix or @base"));
            }
            return Ok(());
        }
        // SPARQL-style PREFIX/BASE (no trailing dot). Only treat as a
        // directive when followed by a prefixed-name/IRI declaration.
        if matches!(self.peek(), Some('P' | 'p')) && self.eat_keyword("prefix") {
            return self.parse_prefix_decl();
        }
        if matches!(self.peek(), Some('B' | 'b')) && self.eat_keyword("base") {
            return self.parse_base_decl();
        }
        self.parse_triples_block()?;
        self.skip_ws();
        self.expect('.')
    }

    /// After a statement-level error: advances to just past the next `.`
    /// that terminates a statement, skipping over comments, string
    /// literals, IRI refs, and bracketed groups so a `.` inside those does
    /// not end recovery early.
    fn recover_to_statement_boundary(&mut self) {
        let mut bracket: isize = 0;
        while let Some(c) = self.peek() {
            match c {
                '#' => {
                    while let Some(c) = self.bump() {
                        if c == '\n' {
                            break;
                        }
                    }
                }
                '"' | '\'' => self.skip_string_guts(c),
                '<' => {
                    self.bump();
                    while let Some(c2) = self.peek() {
                        if c2 == '>' {
                            self.bump();
                            break;
                        }
                        if c2 == '\n' {
                            break; // unterminated IRI: resync at the newline
                        }
                        self.bump();
                    }
                }
                '[' | '(' => {
                    bracket += 1;
                    self.bump();
                }
                ']' | ')' => {
                    bracket -= 1;
                    self.bump();
                }
                '.' if bracket <= 0 => {
                    self.bump();
                    return;
                }
                _ => {
                    self.bump();
                }
            }
        }
    }

    /// Recovery helper: cursor is on an opening quote; skips the whole
    /// short or long string form, tolerating unterminated input.
    fn skip_string_guts(&mut self, quote: char) {
        self.bump();
        let long = self.peek() == Some(quote) && self.peek_at(1) == Some(quote);
        if long {
            self.bump();
            self.bump();
        } else if self.peek() == Some(quote) {
            self.bump();
            return;
        }
        while let Some(c) = self.bump() {
            if c == '\\' {
                self.bump();
            } else if c == quote {
                if !long {
                    return;
                }
                if self.peek() == Some(quote) && self.peek_at(1) == Some(quote) {
                    self.bump();
                    self.bump();
                    return;
                }
            } else if !long && c == '\n' {
                return; // short strings cannot span lines: resync here
            }
        }
    }

    fn parse_prefix_decl(&mut self) -> Result<(), ParseError> {
        self.skip_ws();
        let mut name = String::new();
        while let Some(c) = self.peek() {
            if c == ':' {
                break;
            }
            if c.is_whitespace() {
                return Err(self.error("expected ':' in prefix declaration"));
            }
            name.push(c);
            self.bump();
        }
        self.expect(':')?;
        self.skip_ws();
        let iri = self.parse_iri_ref()?;
        self.prefixes.insert(name, iri);
        Ok(())
    }

    fn parse_base_decl(&mut self) -> Result<(), ParseError> {
        self.skip_ws();
        self.base = self.parse_iri_ref()?;
        Ok(())
    }

    fn parse_triples_block(&mut self) -> Result<(), ParseError> {
        self.skip_ws();
        let at = self.here();
        let subject = if self.peek() == Some('[') {
            // Blank node property list as subject.
            let node = self.parse_blank_node_property_list()?;
            self.skip_ws();
            // A bare "[...] ." with no following predicate list is legal.
            if self.peek() == Some('.') {
                return Ok(());
            }
            node
        } else if self.peek() == Some('(') {
            self.parse_collection()?
        } else {
            self.parse_subject()?
        };
        self.note_subject(&subject, at);
        self.parse_predicate_object_list(&subject)
    }

    fn parse_predicate_object_list(&mut self, subject: &Term) -> Result<(), ParseError> {
        loop {
            self.skip_ws();
            let at = self.here();
            let predicate = self.parse_predicate()?;
            self.note_predicate(subject, &predicate, at);
            loop {
                self.skip_ws();
                let object = self.parse_object()?;
                if subject.is_literal() {
                    return Err(self.error("literal in subject position"));
                }
                self.graph
                    .insert(Triple::new(subject.clone(), predicate.clone(), object));
                self.skip_ws();
                if self.peek() == Some(',') {
                    self.bump();
                } else {
                    break;
                }
            }
            self.skip_ws();
            if self.peek() == Some(';') {
                self.bump();
                self.skip_ws();
                // Trailing semicolons before '.' or ']' are allowed.
                if matches!(self.peek(), Some('.') | Some(']')) || self.peek().is_none() {
                    return Ok(());
                }
            } else {
                return Ok(());
            }
        }
    }

    fn parse_subject(&mut self) -> Result<Term, ParseError> {
        self.skip_ws();
        match self.peek() {
            Some('<') => Ok(Term::Iri(Iri::new(self.parse_iri_ref()?))),
            Some('_') => Ok(Term::Blank(self.parse_blank_node_label()?)),
            Some(c) if is_pname_start(c) || c == ':' => Ok(Term::Iri(self.parse_prefixed_name()?)),
            Some(c) => Err(self
                .error(format!("unexpected character '{c}' in subject position"))
                .code(ErrorCode::UnexpectedChar)),
            None => Err(self
                .error("unexpected end of input, expected subject")
                .code(ErrorCode::UnexpectedEof)),
        }
    }

    fn parse_predicate(&mut self) -> Result<Iri, ParseError> {
        self.skip_ws();
        match self.peek() {
            Some('<') => Ok(Iri::new(self.parse_iri_ref()?)),
            Some('a') if !matches!(self.peek_at(1), Some(c) if is_pname_char(c) || c == ':') => {
                self.bump();
                Ok(rdf::type_())
            }
            Some(c) if is_pname_start(c) || c == ':' => self.parse_prefixed_name(),
            Some(c) => Err(self
                .error(format!("unexpected character '{c}' in predicate position"))
                .code(ErrorCode::UnexpectedChar)),
            None => Err(self
                .error("unexpected end of input, expected predicate")
                .code(ErrorCode::UnexpectedEof)),
        }
    }

    fn parse_object(&mut self) -> Result<Term, ParseError> {
        self.skip_ws();
        match self.peek() {
            Some('<') => Ok(Term::Iri(Iri::new(self.parse_iri_ref()?))),
            Some('_') => Ok(Term::Blank(self.parse_blank_node_label()?)),
            Some('[') => self.parse_blank_node_property_list(),
            Some('(') => self.parse_collection(),
            Some('"') | Some('\'') => Ok(Term::Literal(self.parse_rdf_literal()?)),
            Some(c) if c.is_ascii_digit() || c == '+' || c == '-' => {
                Ok(Term::Literal(self.parse_numeric_literal()?))
            }
            Some('t') | Some('f') if self.looking_at_boolean() => {
                Ok(Term::Literal(self.parse_boolean_literal()?))
            }
            Some(c) if is_pname_start(c) || c == ':' => Ok(Term::Iri(self.parse_prefixed_name()?)),
            Some(c) => Err(self
                .error(format!("unexpected character '{c}' in object position"))
                .code(ErrorCode::UnexpectedChar)),
            None => Err(self
                .error("unexpected end of input, expected object")
                .code(ErrorCode::UnexpectedEof)),
        }
    }

    fn looking_at_boolean(&self) -> bool {
        for kw in ["true", "false"] {
            let kc: Vec<char> = kw.chars().collect();
            if self.pos + kc.len() <= self.chars.len()
                && (0..kc.len()).all(|i| self.chars[self.pos + i] == kc[i])
            {
                match self.peek_at(kc.len()) {
                    Some(c) if is_pname_char(c) || c == ':' => continue,
                    _ => return true,
                }
            }
        }
        false
    }

    fn parse_boolean_literal(&mut self) -> Result<Literal, ParseError> {
        if self.eat_keyword("true") {
            Ok(Literal::boolean(true))
        } else if self.eat_keyword("false") {
            Ok(Literal::boolean(false))
        } else {
            Err(self.error("expected boolean literal"))
        }
    }

    fn parse_numeric_literal(&mut self) -> Result<Literal, ParseError> {
        let mut s = String::new();
        if matches!(self.peek(), Some('+') | Some('-')) {
            if let Some(sign) = self.bump() {
                s.push(sign);
            }
        }
        let mut has_dot = false;
        let mut has_exp = false;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                s.push(c);
                self.bump();
            } else if c == '.' && !has_dot && !has_exp {
                // A '.' not followed by a digit terminates the statement.
                match self.peek_at(1) {
                    Some(d) if d.is_ascii_digit() => {
                        has_dot = true;
                        s.push(c);
                        self.bump();
                    }
                    _ => break,
                }
            } else if (c == 'e' || c == 'E') && !has_exp {
                has_exp = true;
                s.push(c);
                self.bump();
                if matches!(self.peek(), Some('+') | Some('-')) {
                    if let Some(sign) = self.bump() {
                        s.push(sign);
                    }
                }
            } else {
                break;
            }
        }
        if s.is_empty() || s == "+" || s == "-" {
            return Err(self
                .error("malformed numeric literal")
                .code(ErrorCode::InvalidNumber));
        }
        let datatype = if has_exp {
            xsd::double()
        } else if has_dot {
            xsd::decimal()
        } else {
            xsd::integer()
        };
        Ok(Literal::typed(s, datatype))
    }

    fn parse_rdf_literal(&mut self) -> Result<Literal, ParseError> {
        let lexical = self.parse_string()?;
        match self.peek() {
            Some('@') => {
                self.bump();
                let mut lang = String::new();
                while let Some(c) = self.peek() {
                    if c.is_ascii_alphanumeric() || c == '-' {
                        lang.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
                if lang.is_empty() {
                    return Err(self.error("empty language tag"));
                }
                Ok(Literal::lang_string(lexical, &lang))
            }
            Some('^') => {
                self.bump();
                self.expect('^')?;
                let datatype = match self.peek() {
                    Some('<') => Iri::new(self.parse_iri_ref()?),
                    _ => self.parse_prefixed_name()?,
                };
                Ok(Literal::typed(lexical, datatype))
            }
            _ => Ok(Literal::string(lexical)),
        }
    }

    fn parse_string(&mut self) -> Result<String, ParseError> {
        let quote = self.bump().ok_or_else(|| self.error("expected string"))?;
        debug_assert!(quote == '"' || quote == '\'');
        // Long string form """...""" / '''...'''
        let long = self.peek() == Some(quote) && self.peek_at(1) == Some(quote);
        if long {
            self.bump();
            self.bump();
        } else if self.peek() == Some(quote) {
            // Empty short string.
            self.bump();
            return Ok(String::new());
        }
        let mut out = String::new();
        loop {
            let Some(c) = self.bump() else {
                return Err(self
                    .error("unterminated string literal")
                    .code(ErrorCode::UnterminatedString));
            };
            if c == quote {
                if !long {
                    return Ok(out);
                }
                if self.peek() == Some(quote) && self.peek_at(1) == Some(quote) {
                    self.bump();
                    self.bump();
                    return Ok(out);
                }
                out.push(c);
            } else if c == '\\' {
                let Some(esc) = self.bump() else {
                    return Err(self
                        .error("unterminated escape sequence")
                        .code(ErrorCode::InvalidEscape));
                };
                out.push(match esc {
                    't' => '\t',
                    'n' => '\n',
                    'r' => '\r',
                    'b' => '\u{8}',
                    'f' => '\u{c}',
                    '"' => '"',
                    '\'' => '\'',
                    '\\' => '\\',
                    'u' => self.parse_unicode_escape(4)?,
                    'U' => self.parse_unicode_escape(8)?,
                    other => {
                        return Err(self
                            .error(format!("invalid escape '\\{other}'"))
                            .code(ErrorCode::InvalidEscape))
                    }
                });
            } else if !long && c == '\n' {
                return Err(self
                    .error("newline in short string literal")
                    .code(ErrorCode::UnterminatedString));
            } else {
                out.push(c);
            }
        }
    }

    fn parse_unicode_escape(&mut self, digits: usize) -> Result<char, ParseError> {
        let mut v: u32 = 0;
        for _ in 0..digits {
            let Some(c) = self.bump() else {
                return Err(self
                    .error("unterminated unicode escape")
                    .code(ErrorCode::InvalidEscape));
            };
            let d = c.to_digit(16).ok_or_else(|| {
                self.error("invalid hex digit in unicode escape")
                    .code(ErrorCode::InvalidEscape)
            })?;
            v = v * 16 + d;
        }
        char::from_u32(v).ok_or_else(|| {
            self.error("invalid unicode code point")
                .code(ErrorCode::InvalidEscape)
        })
    }

    fn parse_iri_ref(&mut self) -> Result<String, ParseError> {
        self.expect('<')?;
        let mut iri = String::new();
        loop {
            let Some(c) = self.bump() else {
                return Err(self
                    .error("unterminated IRI")
                    .code(ErrorCode::UnterminatedIri));
            };
            match c {
                '>' => break,
                '\\' => match self.bump() {
                    Some('u') => iri.push(self.parse_unicode_escape(4)?),
                    Some('U') => iri.push(self.parse_unicode_escape(8)?),
                    _ => {
                        return Err(self
                            .error("invalid escape in IRI")
                            .code(ErrorCode::InvalidEscape))
                    }
                },
                c if c.is_whitespace() => return Err(self.error("whitespace in IRI")),
                c => iri.push(c),
            }
        }
        // Simple relative-reference handling: concatenate with base.
        if !self.base.is_empty() && !iri.contains(':') {
            Ok(format!("{}{}", self.base, iri))
        } else {
            Ok(iri)
        }
    }

    fn parse_blank_node_label(&mut self) -> Result<BlankNode, ParseError> {
        self.expect('_')?;
        self.expect(':')?;
        let mut label = String::new();
        while let Some(c) = self.peek() {
            if c.is_alphanumeric() || c == '_' || c == '-' || c == '.' {
                // A '.' may be the statement terminator.
                if c == '.'
                    && !matches!(self.peek_at(1), Some(n) if n.is_alphanumeric() || n == '_')
                {
                    break;
                }
                label.push(c);
                self.bump();
            } else {
                break;
            }
        }
        if label.is_empty() {
            return Err(self.error("empty blank node label"));
        }
        Ok(BlankNode::new(label))
    }

    fn parse_prefixed_name(&mut self) -> Result<Iri, ParseError> {
        let mut prefix = String::new();
        while let Some(c) = self.peek() {
            if c == ':' {
                break;
            }
            if is_pname_char(c) {
                prefix.push(c);
                self.bump();
            } else {
                return Err(self.error(format!("unexpected character '{c}' in prefixed name")));
            }
        }
        self.expect(':')?;
        let mut local = String::new();
        while let Some(c) = self.peek() {
            if is_pname_char(c) || c == '%' {
                local.push(c);
                self.bump();
            } else if c == '.' {
                // '.' is permitted inside a local name only if followed by
                // more name characters; otherwise it ends the statement.
                match self.peek_at(1) {
                    Some(n) if is_pname_char(n) => {
                        local.push(c);
                        self.bump();
                    }
                    _ => break,
                }
            } else if c == '\\' {
                self.bump();
                let Some(esc) = self.bump() else {
                    return Err(self.error("unterminated local name escape"));
                };
                local.push(esc);
            } else {
                break;
            }
        }
        let ns = self.prefixes.get(&prefix).ok_or_else(|| {
            self.error(format!("undeclared prefix '{prefix}:'"))
                .code(ErrorCode::UndeclaredPrefix)
        })?;
        Ok(Iri::new(format!("{ns}{local}")))
    }

    fn parse_blank_node_property_list(&mut self) -> Result<Term, ParseError> {
        self.enter_nested()?;
        let at = self.here();
        self.expect('[')?;
        let node = Term::Blank(self.fresh_blank());
        self.note_subject(&node, at);
        self.skip_ws();
        if self.peek() == Some(']') {
            self.bump();
            self.depth -= 1;
            return Ok(node);
        }
        self.parse_predicate_object_list(&node)?;
        self.skip_ws();
        self.expect(']')?;
        self.depth -= 1;
        Ok(node)
    }

    fn parse_collection(&mut self) -> Result<Term, ParseError> {
        self.enter_nested()?;
        self.expect('(')?;
        let mut items = Vec::new();
        loop {
            self.skip_ws();
            if self.peek() == Some(')') {
                self.bump();
                break;
            }
            items.push(self.parse_object()?);
        }
        self.depth -= 1;
        // Encode as an rdf:List.
        let mut tail = Term::Iri(rdf::nil());
        for item in items.into_iter().rev() {
            let cell = Term::Blank(self.fresh_blank());
            self.graph
                .insert(Triple::new(cell.clone(), rdf::first(), item));
            self.graph
                .insert(Triple::new(cell.clone(), rdf::rest(), tail));
            tail = cell;
        }
        Ok(tail)
    }
}

fn is_pname_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_pname_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_' || c == '-'
}

/// Reads an `rdf:first`/`rdf:rest` list starting at `head` from a graph.
/// Returns `None` if the list is malformed (missing links or cycles).
pub fn read_list(graph: &Graph, head: &Term) -> Option<Vec<Term>> {
    let nil = Term::Iri(rdf::nil());
    let mut items = Vec::new();
    let mut current = head.clone();
    let mut steps = 0usize;
    while current != nil {
        steps += 1;
        if steps > graph.len() + 1 {
            return None; // cycle
        }
        let firsts = graph.objects_for(&current, &rdf::first());
        let rests = graph.objects_for(&current, &rdf::rest());
        if firsts.len() != 1 || rests.len() != 1 {
            return None;
        }
        items.push(firsts[0].clone());
        current = rests[0].clone();
    }
    Some(items)
}

/// Serializes a graph as Turtle with the given prefix map
/// (`prefix name → namespace IRI`). Unknown namespaces fall back to full
/// IRIs.
pub fn serialize(graph: &Graph, prefixes: &[(&str, &str)]) -> String {
    let mut out = String::new();
    for (name, ns) in prefixes {
        out.push_str(&format!("@prefix {name}: <{ns}> .\n"));
    }
    if !prefixes.is_empty() {
        out.push('\n');
    }
    let shorten = |iri: &Iri| -> String {
        for (name, ns) in prefixes {
            if let Some(local) = iri.as_str().strip_prefix(ns) {
                if !local.is_empty()
                    && local
                        .chars()
                        .all(|c| c.is_alphanumeric() || c == '_' || c == '-')
                {
                    return format!("{name}:{local}");
                }
            }
        }
        iri.to_string()
    };
    let term_str = |t: &Term| -> String {
        match t {
            Term::Iri(iri) => shorten(iri),
            other => other.to_string(),
        }
    };
    let mut triples: Vec<_> = graph.iter().collect();
    triples.sort();
    for t in triples {
        out.push_str(&format!(
            "{} {} {} .\n",
            term_str(&t.subject),
            shorten(&t.predicate),
            term_str(&t.object)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_triples() {
        let g = parse("<http://e/a> <http://e/p> <http://e/b> .").unwrap();
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn lossy_skips_bad_statement_keeps_rest() {
        let report = parse_lossy(
            "@prefix ex: <http://e/> .\n\
             ex:a ex:p ex:b .\n\
             ex:bad @@@nonsense@@@ .\n\
             ex:c ex:p \"a . dot inside\" .\n\
             ex:d ex:p ex:e .",
        );
        assert_eq!(report.diagnostics.len(), 1);
        assert_eq!(report.statements_skipped, 1);
        assert_eq!(report.statements_ok, 4);
        assert_eq!(report.graph.len(), 3);
        assert_eq!(report.diagnostics[0].line, 3);
    }

    #[test]
    fn lossy_on_clean_input_matches_strict() {
        let doc = "@prefix ex: <http://e/> .\nex:a ex:p ex:b , ex:c ; ex:q [ ex:r ex:s ] .";
        let strict = parse(doc).unwrap();
        let report = parse_lossy(doc);
        assert!(report.is_clean());
        assert_eq!(report.graph, strict);
    }

    #[test]
    fn lossy_recovers_after_unterminated_string() {
        let report = parse_lossy(
            "@prefix ex: <http://e/> .\n\
             ex:a ex:p \"never closed\nex:b ex:p ex:c .\n\
             ex:d ex:p ex:e .",
        );
        // The unterminated string swallows up to the next resync point, but
        // later statements still load.
        assert!(!report.diagnostics.is_empty());
        assert!(!report.graph.is_empty());
        assert_eq!(report.diagnostics[0].code, ErrorCode::UnterminatedString);
    }

    #[test]
    fn deep_nesting_is_a_structured_error() {
        let mut doc = String::from("@prefix ex: <http://e/> .\nex:a ex:p ");
        for _ in 0..(MAX_NESTING + 10) {
            doc.push_str("[ ex:p ");
        }
        doc.push_str("ex:b ");
        for _ in 0..(MAX_NESTING + 10) {
            doc.push_str("] ");
        }
        doc.push('.');
        let err = parse(&doc).unwrap_err();
        assert_eq!(err.code, ErrorCode::DepthLimit);
    }

    #[test]
    fn deep_collection_nesting_is_a_structured_error() {
        let mut doc = String::from("@prefix ex: <http://e/> .\nex:a ex:p ");
        for _ in 0..(MAX_NESTING + 10) {
            doc.push_str("( ");
        }
        doc.push_str("ex:b ");
        for _ in 0..(MAX_NESTING + 10) {
            doc.push_str(") ");
        }
        doc.push('.');
        let err = parse(&doc).unwrap_err();
        assert_eq!(err.code, ErrorCode::DepthLimit);
    }

    #[test]
    fn prefixes_and_a() {
        let g = parse(
            "@prefix ex: <http://e/> .\n@prefix rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> .\nex:a a ex:Paper ; ex:author ex:b , ex:c .",
        )
        .unwrap();
        assert_eq!(g.len(), 3);
        assert!(g.contains(&Triple::new(
            Term::iri("http://e/a"),
            rdf::type_(),
            Term::iri("http://e/Paper")
        )));
    }

    #[test]
    fn sparql_style_prefix() {
        let g = parse("PREFIX ex: <http://e/>\nex:a ex:p ex:b .").unwrap();
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn literals_all_forms() {
        let g = parse(
            r#"@prefix ex: <http://e/> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
ex:a ex:str "hello" ;
     ex:lang "bonjour"@fr ;
     ex:int 42 ;
     ex:dec 3.14 ;
     ex:dbl 1.0e3 ;
     ex:neg -7 ;
     ex:bool true ;
     ex:typed "2020-01-01"^^xsd:date ;
     ex:esc "line1\nline2\"q\"" .
"#,
        )
        .unwrap();
        assert_eq!(g.len(), 9);
        let objs = g.objects_for(&Term::iri("http://e/a"), &Iri::new("http://e/int"));
        assert_eq!(objs[0].as_literal().unwrap().datatype(), &xsd::integer());
        let objs = g.objects_for(&Term::iri("http://e/a"), &Iri::new("http://e/dec"));
        assert_eq!(objs[0].as_literal().unwrap().datatype(), &xsd::decimal());
        let objs = g.objects_for(&Term::iri("http://e/a"), &Iri::new("http://e/lang"));
        assert_eq!(objs[0].as_literal().unwrap().language(), Some("fr"));
    }

    #[test]
    fn blank_node_property_lists() {
        let g = parse(
            r#"@prefix sh: <http://www.w3.org/ns/shacl#> .
@prefix ex: <http://e/> .
ex:Shape sh:property [ sh:path ex:author ; sh:minCount 1 ] ."#,
        )
        .unwrap();
        assert_eq!(g.len(), 3);
        let props = g.objects_for(
            &Term::iri("http://e/Shape"),
            &Iri::new("http://www.w3.org/ns/shacl#property"),
        );
        assert_eq!(props.len(), 1);
        assert!(props[0].is_blank());
    }

    #[test]
    fn nested_blank_nodes() {
        let g = parse(
            r#"@prefix ex: <http://e/> .
ex:s ex:p [ ex:q [ ex:r ex:o ] ] ."#,
        )
        .unwrap();
        assert_eq!(g.len(), 3);
    }

    #[test]
    fn collections_become_rdf_lists() {
        let g = parse(
            r#"@prefix ex: <http://e/> .
ex:s ex:langs ( "en" "fr" "de" ) ."#,
        )
        .unwrap();
        // 1 root triple + 3 first + 3 rest
        assert_eq!(g.len(), 7);
        let head = &g.objects_for(&Term::iri("http://e/s"), &Iri::new("http://e/langs"))[0];
        let items = read_list(&g, &Term::clone(head)).unwrap();
        assert_eq!(items.len(), 3);
        assert_eq!(items[0].as_literal().unwrap().lexical(), "en");
    }

    #[test]
    fn empty_collection_is_nil() {
        let g = parse("@prefix ex: <http://e/> .\nex:s ex:p ( ) .").unwrap();
        let objs = g.objects_for(&Term::iri("http://e/s"), &Iri::new("http://e/p"));
        assert_eq!(objs[0], &Term::Iri(rdf::nil()));
        assert_eq!(read_list(&g, objs[0]).unwrap().len(), 0);
    }

    #[test]
    fn comments_are_skipped() {
        let g = parse("# header\n<http://e/a> <http://e/p> <http://e/b> . # trailing\n").unwrap();
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn blank_node_labels() {
        let g = parse("_:x <http://e/p> _:y .").unwrap();
        assert_eq!(g.len(), 1);
        let t: Vec<_> = g.iter().collect();
        assert!(t[0].subject.is_blank());
        assert!(t[0].object.is_blank());
    }

    #[test]
    fn long_strings() {
        let g =
            parse("@prefix ex: <http://e/> .\nex:s ex:p \"\"\"multi\nline \"quoted\" text\"\"\" .")
                .unwrap();
        let objs = g.objects_for(&Term::iri("http://e/s"), &Iri::new("http://e/p"));
        assert!(objs[0].as_literal().unwrap().lexical().contains('\n'));
    }

    #[test]
    fn unicode_escapes() {
        let g = parse("@prefix ex: <http://e/> .\nex:s ex:p \"caf\\u00e9\" .").unwrap();
        let objs = g.objects_for(&Term::iri("http://e/s"), &Iri::new("http://e/p"));
        assert_eq!(objs[0].as_literal().unwrap().lexical(), "café");
    }

    #[test]
    fn undeclared_prefix_errors() {
        let err = parse("ex:a ex:p ex:b .").unwrap_err();
        assert!(err.message.contains("undeclared prefix"));
    }

    #[test]
    fn error_carries_position() {
        let err = parse("<http://e/a> <http://e/p>\n  @@@ .").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn serialize_round_trip() {
        let input = r#"@prefix ex: <http://e/> .
ex:a ex:p ex:b .
ex:a ex:q "v"@en .
ex:b ex:p 3 .
"#;
        let g = parse(input).unwrap();
        let out = serialize(&g, &[("ex", "http://e/")]);
        let g2 = parse(&out).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn base_resolution() {
        let g = parse("@base <http://e/> .\n<a> <p> <b> .").unwrap();
        assert!(g.contains(&Triple::new(
            Term::iri("http://e/a"),
            Iri::new("http://e/p"),
            Term::iri("http://e/b")
        )));
    }

    #[test]
    fn decimal_then_end_of_statement() {
        // `2.` must parse as integer 2 followed by the terminating dot.
        let g = parse("@prefix ex: <http://e/> .\nex:s ex:p 2.").unwrap();
        let objs = g.objects_for(&Term::iri("http://e/s"), &Iri::new("http://e/p"));
        assert_eq!(objs[0].as_literal().unwrap().lexical(), "2");
    }
}
