//! # shapefrag-sched
//!
//! A dependency-free work-stealing scheduler for the parallel validation
//! and extraction engines (DESIGN.md §12).
//!
//! Work units carry a static **cost** (the analyze crate's per-shape cost
//! class scaled by chunk size). A run starts with all units in one global
//! pool sorted by cost; workers pull batches off the expensive end, execute
//! the dearest unit immediately, stash the rest in a per-worker local
//! deque, and — when both their deque and the pool run dry — steal the
//! *cheapest* unit from a pseudo-randomly chosen victim. Expensive shapes
//! therefore launch first and cheap ones backfill idle workers, which keeps
//! the makespan close to the critical path without any dynamic profiling.
//!
//! Threads come from `std::thread::scope` via the vendored `crossbeam`
//! shim; locks come from the vendored `parking_lot` shim (non-poisoning, so
//! a panicking unit cannot wedge its siblings' queues). With `threads <= 1`
//! (or a single unit) the scheduler degenerates to an inline loop with no
//! spawns and no locks, so the single-threaded overhead over a plain
//! `for` loop is a sort.
#![forbid(unsafe_code)]

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use parking_lot::Mutex;

/// One schedulable unit: an opaque item plus its static cost estimate.
/// Higher cost ⇒ dispatched earlier.
#[derive(Debug)]
pub struct WorkUnit<T> {
    /// Static priority; units are dispatched in descending cost order.
    pub cost: u64,
    /// The payload handed to the worker callback.
    pub item: T,
}

/// Aggregate counters for one scheduler run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunStats {
    /// Worker threads actually used (after clamping to the unit count).
    pub threads: usize,
    /// Total work units executed.
    pub units: usize,
    /// Successful steals from another worker's local deque.
    pub steals: u64,
    /// Batch refills from the global pool.
    pub refills: u64,
    /// Summed wall-clock nanoseconds workers spent executing units.
    pub busy_nanos: u64,
    /// Summed wall-clock nanoseconds workers spent looking for work.
    pub idle_nanos: u64,
    /// Shape definitions the planner settled without evaluation (answers
    /// derived from an equivalent definition's memo bits). Filled by the
    /// containment-aware drivers; the scheduler itself leaves it 0.
    pub shapes_skipped: u64,
    /// `(shape, node)` conformance answers derived through containment
    /// edges instead of evaluation. Filled by the drivers.
    pub checks_derived: u64,
    /// Target lists reused from an earlier definition with a syntactically
    /// identical target shape, instead of re-resolving. Filled by the
    /// drivers.
    pub targets_deduped: u64,
}

impl RunStats {
    /// Fraction of total worker wall-clock spent idle (0.0 when the run
    /// never left the inline fast path).
    pub fn idle_fraction(&self) -> f64 {
        let total = self.busy_nanos + self.idle_nanos;
        if total == 0 {
            0.0
        } else {
            self.idle_nanos as f64 / total as f64
        }
    }
}

/// Deterministic xorshift64* stream for victim selection; seeded per
/// worker so runs are reproducible under `RUST_TEST_THREADS=1` stress.
struct XorShift(u64);

impl XorShift {
    fn new(worker: usize) -> XorShift {
        XorShift((worker as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// Per-worker counters folded into [`RunStats`] after the join.
#[derive(Default)]
struct WorkerStats {
    steals: u64,
    refills: u64,
    busy_nanos: u64,
    idle_nanos: u64,
}

/// Runs `units` across `threads` workers with cost-ordered work stealing.
///
/// - `init(worker)` builds the worker-local state (a validation `Context`
///   with its own path cache and frontier scratch, say) on the worker's
///   own thread.
/// - `work(state, item)` executes one unit; units may run in any order and
///   on any worker, so `work` must not depend on execution order.
/// - `finish(worker, state)` converts the final state into the worker's
///   result; the returned `Vec` is indexed by worker.
///
/// The scheduler never reorders *results* — callers that need determinism
/// tag items with a planning-order sequence number and merge on it.
pub fn run<T, S, R>(
    units: Vec<WorkUnit<T>>,
    threads: usize,
    init: impl Fn(usize) -> S + Sync,
    work: impl Fn(&mut S, T) + Sync,
    finish: impl Fn(usize, S) -> R + Sync,
) -> (Vec<R>, RunStats)
where
    T: Send,
    R: Send,
{
    let n_units = units.len();
    let threads = threads.max(1).min(n_units.max(1));
    // Ascending sort: popping from the tail yields the most expensive
    // remaining unit. The sort is stable so equal-cost units keep planning
    // order, which makes single-threaded runs bit-for-bit reproducible.
    let mut pool = units;
    pool.sort_by_key(|u| u.cost);

    if threads <= 1 {
        // Inline fast path: no spawns, no locks, no atomics.
        let start = Instant::now();
        let mut state = init(0);
        let executed = pool.len();
        while let Some(unit) = pool.pop() {
            work(&mut state, unit.item);
        }
        let busy = start.elapsed().as_nanos() as u64;
        let results = vec![finish(0, state)];
        return (
            results,
            RunStats {
                threads: 1,
                units: executed,
                busy_nanos: busy,
                ..RunStats::default()
            },
        );
    }

    let remaining = AtomicUsize::new(n_units);
    let global: Mutex<Vec<WorkUnit<T>>> = Mutex::new(pool);
    let locals: Vec<Mutex<VecDeque<WorkUnit<T>>>> =
        (0..threads).map(|_| Mutex::new(VecDeque::new())).collect();

    let worker_loop = |me: usize| -> (R, WorkerStats) {
        let mut rng = XorShift::new(me);
        let mut stats = WorkerStats::default();
        let mut state = init(me);
        loop {
            // 1. Own deque, expensive end first.
            let mut unit = locals[me].lock().pop_front();
            // 2. Refill a batch from the global pool's expensive end.
            if unit.is_none() {
                let mut pool = global.lock();
                if !pool.is_empty() {
                    stats.refills += 1;
                    let batch = (pool.len().div_ceil(threads)).clamp(1, 8);
                    unit = pool.pop();
                    if batch > 1 {
                        let mut local = locals[me].lock();
                        // Tail pops arrive in descending cost order, so
                        // push_back keeps the deque's front the dearest.
                        for _ in 1..batch {
                            match pool.pop() {
                                Some(u) => local.push_back(u),
                                None => break,
                            }
                        }
                    }
                }
            }
            // 3. Steal the *cheapest* unit from a random victim, leaving
            //    the victim its expensive work (locality + less contention).
            if unit.is_none() {
                for _ in 0..2 * threads {
                    let victim = (rng.next() % threads as u64) as usize;
                    if victim == me {
                        continue;
                    }
                    if let Some(stolen) = locals[victim].lock().pop_back() {
                        stats.steals += 1;
                        unit = Some(stolen);
                        break;
                    }
                }
            }
            match unit {
                Some(unit) => {
                    let t0 = Instant::now();
                    work(&mut state, unit.item);
                    stats.busy_nanos += t0.elapsed().as_nanos() as u64;
                    remaining.fetch_sub(1, Ordering::AcqRel);
                }
                None => {
                    // All queues looked empty; either we are done or a
                    // peer is still executing (and may repopulate queues
                    // it drained into its local). Spin politely.
                    if remaining.load(Ordering::Acquire) == 0 {
                        break;
                    }
                    let t0 = Instant::now();
                    std::thread::yield_now();
                    stats.idle_nanos += t0.elapsed().as_nanos() as u64;
                }
            }
        }
        (finish(me, state), stats)
    };

    let per_worker: Vec<(R, WorkerStats)> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|me| scope.spawn(move |_| worker_loop(me)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("scheduler worker panicked"))
            .collect()
    })
    .expect("scheduler scope failed");

    let mut stats = RunStats {
        threads,
        units: n_units,
        ..RunStats::default()
    };
    let mut results = Vec::with_capacity(threads);
    for (r, w) in per_worker {
        stats.steals += w.steals;
        stats.refills += w.refills;
        stats.busy_nanos += w.busy_nanos;
        stats.idle_nanos += w.idle_nanos;
        results.push(r);
    }
    (results, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn units(costs: &[u64]) -> Vec<WorkUnit<u64>> {
        costs
            .iter()
            .map(|&c| WorkUnit { cost: c, item: c })
            .collect()
    }

    #[test]
    fn executes_every_unit_exactly_once_inline() {
        let (results, stats) = run(
            units(&[3, 1, 4, 1, 5, 9, 2, 6]),
            1,
            |_| 0u64,
            |acc, item| *acc += item,
            |_, acc| acc,
        );
        assert_eq!(results.iter().sum::<u64>(), 31);
        assert_eq!(stats.threads, 1);
        assert_eq!(stats.units, 8);
        assert_eq!(stats.steals, 0);
    }

    #[test]
    fn inline_path_runs_expensive_units_first() {
        let (results, _) = run(
            units(&[2, 9, 4]),
            1,
            |_| Vec::new(),
            |order: &mut Vec<u64>, item| order.push(item),
            |_, order| order,
        );
        assert_eq!(results[0], vec![9, 4, 2]);
    }

    #[test]
    fn executes_every_unit_exactly_once_parallel() {
        let costs: Vec<u64> = (1..=100).collect();
        let expected: u64 = costs.iter().sum();
        for threads in [2, 4, 8] {
            let (results, stats) = run(
                units(&costs),
                threads,
                |_| 0u64,
                |acc, item| *acc += item,
                |_, acc| acc,
            );
            assert_eq!(results.iter().sum::<u64>(), expected, "{threads} threads");
            assert_eq!(stats.units, 100);
            assert_eq!(stats.threads, threads);
        }
    }

    #[test]
    fn clamps_workers_to_unit_count() {
        let (results, stats) = run(
            units(&[7, 7]),
            8,
            |_| 0u64,
            |acc, item| *acc += item,
            |_, acc| acc,
        );
        assert_eq!(stats.threads, 2);
        assert_eq!(results.len(), 2);
        assert_eq!(results.iter().sum::<u64>(), 14);
    }

    #[test]
    fn empty_run_is_fine() {
        let (results, stats) = run(
            Vec::<WorkUnit<u64>>::new(),
            4,
            |_| (),
            |_, _| {},
            |me, _| me,
        );
        assert_eq!(results, vec![0]);
        assert_eq!(stats.units, 0);
    }

    #[test]
    fn worker_state_is_private_until_finish() {
        // Each worker counts its own units; the totals must cover all
        // units with no double execution.
        let costs: Vec<u64> = (0..257).map(|i| i % 13).collect();
        let (counts, stats) = run(units(&costs), 4, |_| 0usize, |n, _| *n += 1, |_, n| n);
        assert_eq!(counts.iter().sum::<usize>(), 257);
        assert_eq!(stats.units, 257);
    }

    #[test]
    fn idle_fraction_is_bounded() {
        let (_, stats) = run(
            units(&(0..64).collect::<Vec<u64>>()),
            4,
            |_| (),
            |_, item| {
                std::hint::black_box((0..item * 10).sum::<u64>());
            },
            |_, _| (),
        );
        let f = stats.idle_fraction();
        assert!((0.0..=1.0).contains(&f), "idle fraction {f} out of range");
    }
}
