//! Minimal offline stand-in for [`crossbeam`], built on `std::thread::scope`
//! (stable since Rust 1.63). Only the `thread::scope` / `Scope::spawn` /
//! `ScopedJoinHandle::join` subset used by this workspace is provided.
#![forbid(unsafe_code)]

pub mod thread {
    use std::any::Any;

    /// Panic payload type used by `join` and `scope`, matching crossbeam's.
    type Payload = Box<dyn Any + Send + 'static>;

    /// A scope handle passed to [`scope`] closures; spawned threads may
    /// borrow from the enclosing stack frame.
    #[derive(Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning its result or the
        /// panic payload.
        pub fn join(self) -> Result<T, Payload> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread inside the scope. The closure receives the scope
        /// again so workers can spawn sub-workers (crossbeam's signature).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&scope)),
            }
        }
    }

    /// Creates a scope in which threads borrowing local data can be
    /// spawned; all are joined before `scope` returns.
    ///
    /// Unlike crossbeam, a panic in an unjoined child propagates as a panic
    /// here rather than an `Err` — every caller in this workspace joins all
    /// handles and unwraps the result, so the observable behavior matches.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Payload>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = crate::thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|part| s.spawn(move |_| part.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let n = crate::thread::scope(|s| {
            s.spawn(|inner| inner.spawn(|_| 7).join().unwrap())
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(n, 7);
    }
}
