//! Collection strategies: `vec` and `btree_set` with exact or ranged sizes.

use std::collections::BTreeSet;
use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// An exact size (`5`) or half-open range (`0..25`) of collection sizes.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            min: n,
            max_exclusive: n + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            min: r.start,
            max_exclusive: r.end,
        }
    }
}

impl SizeRange {
    fn sample(self, rng: &mut TestRng) -> usize {
        rng.int_in_range(self.min as i128, self.max_exclusive as i128) as usize
    }
}

/// Strategy for `Vec<S::Value>` of a size drawn from the range.
#[derive(Clone)]
pub struct VecStrategy<S> {
    elem: S,
    size: SizeRange,
}

pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        elem,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.elem.generate(rng)).collect()
    }
}

/// Strategy for `BTreeSet<S::Value>`; duplicate draws collapse, so the set
/// may come out smaller than the sampled size (as in upstream proptest).
#[derive(Clone)]
pub struct BTreeSetStrategy<S> {
    elem: S,
    size: SizeRange,
}

pub fn btree_set<S>(elem: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        elem,
        size: size.into(),
    }
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.elem.generate(rng)).collect()
    }
}
