//! The usual `use proptest::prelude::*;` surface.

pub use crate::arbitrary::any;
pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

/// Namespaced strategy modules (`prop::collection::vec`, …), mirroring
/// upstream's `prelude::prop`.
pub mod prop {
    pub use crate::collection;
    pub use crate::string;
}
