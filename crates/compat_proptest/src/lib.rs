//! Minimal offline stand-in for [`proptest`].
//!
//! Implements the subset of the proptest 1.x API used by this workspace's
//! test suite: the [`Strategy`](strategy::Strategy) trait with `prop_map` /
//! `prop_recursive` / `boxed`, weighted unions via [`prop_oneof!`], regex
//! string strategies, collection strategies, `any::<T>()`, and the
//! [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] macros.
//!
//! Differences from upstream, chosen for zero dependencies:
//! - **No shrinking.** A failing case reports its case number and message
//!   but is not minimized.
//! - **Deterministic seeding.** Each generated test function derives its
//!   RNG seed from its module path and name, so failures reproduce exactly
//!   on re-run.
//! - Regex strategies support the fragment of regex syntax the suite uses
//!   (classes, ranges, escapes, groups, `{m,n}` / `?` / `*` / `+`,
//!   alternation).
#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Runs each `fn name(pat in strategy, ...) { body }` item as a `#[test]`
/// over `ProptestConfig::cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let mut rng = $crate::test_runner::TestRng::from_seed_str(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for case in 0..config.cases {
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $(let $pat =
                            $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                        $body
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(err) = outcome {
                    ::core::panic!(
                        "proptest '{}' failed at case {}/{}: {}",
                        stringify!($name), case, config.cases, err,
                    );
                }
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

/// Weighted (or uniform) choice between strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(::std::vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(::std::vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Asserts inside a `proptest!` body; failure aborts the case with an error
/// instead of panicking (so the harness can report the case number).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!("assertion failed: `{:?}` == `{:?}`", l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "{}: `{:?}` == `{:?}`",
                    ::std::format!($($fmt)+),
                    l,
                    r,
                ),
            ));
        }
    }};
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!("assertion failed: `{:?}` != `{:?}`", l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    }};
}
