//! Regex-driven string strategies: `string_regex("[a-z]{1,6}")` produces a
//! strategy generating matching strings.
//!
//! Supports the regex fragment used by the test suite: literal characters,
//! escapes (`\n`, `\t`, `\r`, `\\`, `\"`, `\-`, `\]` …), character classes
//! with ranges (`[ -~]`, `[a-zA-Z0-9 ]`, unicode literals), groups,
//! alternation, and the quantifiers `{m}`, `{m,n}`, `?`, `*`, `+`
//! (unbounded repetition is capped at 8).

use std::rc::Rc;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Regex parse error (pattern + position + message).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    pub message: String,
}

#[derive(Debug)]
enum Node {
    Seq(Vec<Node>),
    Alt(Vec<Node>),
    Class(Vec<(char, char)>),
    Lit(char),
    Repeat(Box<Node>, u32, u32),
}

/// A compiled generator for strings matching a regex.
#[derive(Clone)]
pub struct RegexGeneratorStrategy {
    node: Rc<Node>,
}

impl Strategy for RegexGeneratorStrategy {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        emit(&self.node, rng, &mut out);
        out
    }
}

/// Compiles `pattern` into a string-generating strategy.
pub fn string_regex(pattern: &str) -> Result<RegexGeneratorStrategy, Error> {
    let mut parser = Parser {
        chars: pattern.chars().collect(),
        pos: 0,
        pattern,
    };
    let node = parser.parse_alt()?;
    if parser.pos != parser.chars.len() {
        return Err(parser.error("trailing characters"));
    }
    Ok(RegexGeneratorStrategy {
        node: Rc::new(node),
    })
}

fn emit(node: &Node, rng: &mut TestRng, out: &mut String) {
    match node {
        Node::Seq(items) => {
            for item in items {
                emit(item, rng, out);
            }
        }
        Node::Alt(arms) => emit(&arms[rng.usize_below(arms.len())], rng, out),
        Node::Lit(c) => out.push(*c),
        Node::Class(ranges) => {
            let total: u32 = ranges
                .iter()
                .map(|(lo, hi)| *hi as u32 - *lo as u32 + 1)
                .sum();
            let mut pick = rng.int_in_range(0, i128::from(total)) as u32;
            for (lo, hi) in ranges {
                let span = *hi as u32 - *lo as u32 + 1;
                if pick < span {
                    // The suite's classes never straddle the surrogate gap,
                    // but guard anyway.
                    out.push(char::from_u32(*lo as u32 + pick).unwrap_or(*lo));
                    return;
                }
                pick -= span;
            }
            unreachable!("class pick out of range")
        }
        Node::Repeat(inner, min, max) => {
            let n = rng.int_in_range(i128::from(*min), i128::from(*max) + 1) as u32;
            for _ in 0..n {
                emit(inner, rng, out);
            }
        }
    }
}

struct Parser<'a> {
    chars: Vec<char>,
    pos: usize,
    pattern: &'a str,
}

impl<'a> Parser<'a> {
    fn error(&self, message: &str) -> Error {
        Error {
            message: format!(
                "{message} at offset {} in regex {:?}",
                self.pos, self.pattern
            ),
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn parse_alt(&mut self) -> Result<Node, Error> {
        let mut arms = vec![self.parse_seq()?];
        while self.peek() == Some('|') {
            self.bump();
            arms.push(self.parse_seq()?);
        }
        Ok(if arms.len() == 1 {
            arms.pop().unwrap()
        } else {
            Node::Alt(arms)
        })
    }

    fn parse_seq(&mut self) -> Result<Node, Error> {
        let mut items = Vec::new();
        while let Some(c) = self.peek() {
            if c == ')' || c == '|' {
                break;
            }
            let atom = self.parse_atom()?;
            items.push(self.parse_quantifier(atom)?);
        }
        Ok(Node::Seq(items))
    }

    fn parse_atom(&mut self) -> Result<Node, Error> {
        match self.bump().expect("parse_atom at end") {
            '(' => {
                let inner = self.parse_alt()?;
                if self.bump() != Some(')') {
                    return Err(self.error("unclosed group"));
                }
                Ok(inner)
            }
            '[' => self.parse_class(),
            '\\' => {
                let c = self.bump().ok_or_else(|| self.error("dangling escape"))?;
                Ok(Node::Lit(unescape(c)))
            }
            '.' => Ok(Node::Class(vec![(' ', '~')])),
            '*' | '+' | '?' | '{' => Err(self.error("quantifier with nothing to repeat")),
            c => Ok(Node::Lit(c)),
        }
    }

    fn parse_class(&mut self) -> Result<Node, Error> {
        if self.peek() == Some('^') {
            return Err(self.error("negated classes are not supported"));
        }
        let mut ranges: Vec<(char, char)> = Vec::new();
        loop {
            let c = match self.bump() {
                None => return Err(self.error("unclosed character class")),
                Some(']') => break,
                Some('\\') => unescape(self.bump().ok_or_else(|| self.error("dangling escape"))?),
                Some(c) => c,
            };
            // `a-z` is a range unless the '-' is last (then it's a literal).
            if self.peek() == Some('-') && self.chars.get(self.pos + 1) != Some(&']') {
                self.bump();
                let hi = match self.bump() {
                    None => return Err(self.error("unclosed character class")),
                    Some('\\') => {
                        unescape(self.bump().ok_or_else(|| self.error("dangling escape"))?)
                    }
                    Some(hi) => hi,
                };
                if hi < c {
                    return Err(self.error("inverted class range"));
                }
                ranges.push((c, hi));
            } else {
                ranges.push((c, c));
            }
        }
        if ranges.is_empty() {
            return Err(self.error("empty character class"));
        }
        Ok(Node::Class(ranges))
    }

    fn parse_quantifier(&mut self, atom: Node) -> Result<Node, Error> {
        match self.peek() {
            Some('?') => {
                self.bump();
                Ok(Node::Repeat(Box::new(atom), 0, 1))
            }
            Some('*') => {
                self.bump();
                Ok(Node::Repeat(Box::new(atom), 0, 8))
            }
            Some('+') => {
                self.bump();
                Ok(Node::Repeat(Box::new(atom), 1, 8))
            }
            Some('{') => {
                self.bump();
                let min = self.parse_number()?;
                let max = if self.peek() == Some(',') {
                    self.bump();
                    if self.peek() == Some('}') {
                        min.saturating_add(8)
                    } else {
                        self.parse_number()?
                    }
                } else {
                    min
                };
                if self.bump() != Some('}') {
                    return Err(self.error("unclosed repetition"));
                }
                if max < min {
                    return Err(self.error("inverted repetition bounds"));
                }
                Ok(Node::Repeat(Box::new(atom), min, max))
            }
            _ => Ok(atom),
        }
    }

    fn parse_number(&mut self) -> Result<u32, Error> {
        let mut digits = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                digits.push(c);
                self.bump();
            } else {
                break;
            }
        }
        digits
            .parse()
            .map_err(|_| self.error("expected a number in repetition"))
    }
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        '0' => '\0',
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    fn samples(pattern: &str, n: usize) -> Vec<String> {
        let strat = string_regex(pattern).unwrap();
        let mut rng = TestRng::from_seed_str(pattern);
        (0..n).map(|_| strat.generate(&mut rng)).collect()
    }

    #[test]
    fn class_with_range_and_length() {
        for s in samples("[a-z]{1,6}", 200) {
            assert!((1..=6).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");
        }
    }

    #[test]
    fn printable_class_with_escapes() {
        for s in samples("[ -~\\n\\t\"\\\\]{0,24}", 200) {
            assert!(s.chars().count() <= 24);
            assert!(
                s.chars()
                    .all(|c| (' '..='~').contains(&c) || c == '\n' || c == '\t'),
                "{s:?}"
            );
        }
    }

    #[test]
    fn optional_group() {
        for s in samples("[a-z]{2}(-[A-Z]{2})?", 200) {
            assert!(s.len() == 2 || s.len() == 5, "{s:?}");
            if s.len() == 5 {
                assert_eq!(s.as_bytes()[2], b'-');
            }
        }
    }

    #[test]
    fn unicode_class() {
        for s in samples("[a-zA-Zéüλ中🦀 ]{0,12}", 200) {
            assert!(s.chars().count() <= 12, "{s:?}");
            for c in s.chars() {
                assert!(
                    c.is_ascii_alphabetic() || "éüλ中🦀 ".contains(c),
                    "{c:?} in {s:?}"
                );
            }
        }
    }

    #[test]
    fn concatenated_classes() {
        for s in samples("[A-Za-z][A-Za-z0-9]{0,5}", 200) {
            assert!(!s.is_empty() && s.chars().count() <= 6, "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_alphabetic());
        }
    }

    #[test]
    fn alternation() {
        for s in samples("ab|cd", 50) {
            assert!(s == "ab" || s == "cd", "{s:?}");
        }
    }

    #[test]
    fn rejects_unsupported_syntax() {
        assert!(string_regex("[^a]").is_err());
        assert!(string_regex("(unclosed").is_err());
        assert!(string_regex("a{3,1}").is_err());
    }
}
