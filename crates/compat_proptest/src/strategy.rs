//! The [`Strategy`] trait and combinators: `Just`, `prop_map`, weighted
//! unions, boxing, tuples, integer ranges, and bounded recursion.

use std::ops::Range;
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A generator of random values. Unlike upstream proptest there is no
/// shrinking: a strategy is just a cloneable sampler.
pub trait Strategy: Clone {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Value) -> U + Clone,
    {
        Map { source: self, f }
    }

    /// Type-erases the strategy behind a cheaply-cloneable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Rc::new(self))
    }

    /// Bounded recursion: `f` maps a strategy for subterms to a strategy
    /// for composite terms. `depth` levels are built, with leaves mixed in
    /// at every level so generated trees terminate. The `_desired_size` and
    /// `_expected_branch` hints are accepted for API compatibility.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            strat = Union::new_weighted(vec![(1, leaf.clone()), (2, f(strat).boxed())]).boxed();
        }
        strat
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U + Clone,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.source.generate(rng))
    }
}

/// Object-safe core used by [`BoxedStrategy`].
trait DynStrategy<T> {
    fn dyn_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, reference-counted strategy handle.
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.dyn_generate(rng)
    }
}

/// Weighted choice between strategies of one value type (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
            total: self.total,
        }
    }
}

impl<T> Union<T> {
    pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total = arms.iter().map(|(w, _)| *w).sum();
        assert!(
            total > 0,
            "prop_oneof! needs at least one arm with weight > 0"
        );
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut ticket = rng.int_in_range(0, i128::from(self.total)) as u32;
        for (weight, arm) in &self.arms {
            if ticket < *weight {
                return arm.generate(rng);
            }
            ticket -= weight;
        }
        unreachable!("weighted union ticket out of range")
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.int_in_range(self.start as i128, self.end as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

/// String-literal strategies: `"[a-z]{1,6}"` generates matching strings.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::string_regex(self)
            .unwrap_or_else(|e| panic!("invalid regex strategy {self:?}: {e:?}"))
            .generate(rng)
    }
}
