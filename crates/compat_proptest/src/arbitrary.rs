//! `any::<T>()` — default strategies for primitive types.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

/// The canonical strategy for `T`'s whole domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> bool {
        rng.bool()
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary_value(rng: &mut TestRng) -> f64 {
        // Mix of unit-interval values and full-range bit patterns (skipping
        // NaN so equality-based properties stay meaningful).
        if rng.bool() {
            rng.f64_unit()
        } else {
            let v = f64::from_bits(rng.next_u64());
            if v.is_nan() {
                0.0
            } else {
                v
            }
        }
    }
}

impl Arbitrary for char {
    fn arbitrary_value(rng: &mut TestRng) -> char {
        // Bias toward ASCII (where parser edge cases live), with a tail of
        // arbitrary unicode scalars.
        match rng.usize_below(10) {
            0..=6 => (rng.int_in_range(0x20, 0x7f) as u8) as char,
            7 => match rng.usize_below(4) {
                0 => '\n',
                1 => '\t',
                2 => '\r',
                _ => '\0',
            },
            _ => loop {
                let v = rng.int_in_range(0, 0x11_0000) as u32;
                if let Some(c) = char::from_u32(v) {
                    break c;
                }
            },
        }
    }
}
