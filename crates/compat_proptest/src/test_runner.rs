//! Test-runner types: configuration, case errors, and the deterministic RNG
//! that drives value generation.

use std::fmt;

/// Per-`proptest!` block configuration (only `cases` is supported).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed (or rejected) test case; produced by `prop_assert!` and by
/// explicit `TestCaseError::fail(...)` calls in test bodies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCaseError(String);

impl TestCaseError {
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError(reason.into())
    }

    /// Upstream distinguishes rejects from failures; here both abort the case.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic SplitMix64 generator used for all strategy generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from an arbitrary string (FNV-1a), so each generated test
    /// function gets a stable, distinct stream.
    pub fn from_seed_str(seed: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in seed.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[low, high)` over the full i128-embeddable
    /// integer domain (shared by every integer-range strategy).
    pub fn int_in_range(&mut self, low: i128, high: i128) -> i128 {
        assert!(low < high, "strategy range is empty");
        let span = (high - low) as u128;
        low + ((self.next_u64() as u128) % span) as i128
    }

    /// Uniform draw from `[0, bound)`.
    pub fn usize_below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "usize_below(0)");
        (self.next_u64() % bound as u64) as usize
    }

    pub fn f64_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}
