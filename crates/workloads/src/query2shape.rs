//! Automatic translation of subgraph queries to request shapes (§4.1).
//!
//! Following the paper's methodology, a `SELECT` query is read as a
//! `CONSTRUCT WHERE` subgraph query (return all *images* of its pattern),
//! and — when the pattern is a tree-shaped BGP with constant predicates —
//! translated into a request shape whose shape fragment retrieves those
//! images:
//!
//! - child edge `v —p→ x` becomes `≥1 p.(shape of x)`;
//! - reversed edge `x —p→ v` becomes `≥1 p⁻.(shape of x)`;
//! - constant nodes become `hasValue(c)`;
//! - value filters become node tests;
//! - `OPTIONAL` subtrees become `≥0` quantifiers;
//! - `OPTIONAL { … } FILTER(!bound(?v))` becomes the *negation* of the
//!   optional body's shape (covering the paper's `≤0 feature.hasValue(59)`
//!   example).
//!
//! Queries using variables in the property position or arithmetic — the
//! blockers the paper identifies — are rejected with a [`Blocker`].

use std::collections::{BTreeMap, HashMap, HashSet};

use shapefrag_rdf::{Graph, Iri, Literal, Term, Triple};
use shapefrag_shacl::node_test::NodeTest;
use shapefrag_shacl::{PathExpr, Shape};
use shapefrag_sparql::algebra::{Expr, Pattern, Select, TriplePattern, VarOrTerm};
use shapefrag_sparql::eval;

/// Why a query is not expressible as a shape fragment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Blocker {
    /// A variable in the property position.
    VariablePredicate,
    /// Arithmetic in a filter.
    Arithmetic,
    /// A filter SHACL node tests cannot express.
    UnsupportedFilter(String),
    /// The BGP is not tree-shaped (cyclic or disconnected).
    NonTree,
    /// A SPARQL operator outside the translatable fragment.
    UnsupportedPattern(String),
}

impl std::fmt::Display for Blocker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Blocker::VariablePredicate => write!(f, "variable in property position"),
            Blocker::Arithmetic => write!(f, "arithmetic in filter"),
            Blocker::UnsupportedFilter(e) => write!(f, "unsupported filter: {e}"),
            Blocker::NonTree => write!(f, "pattern is not tree-shaped"),
            Blocker::UnsupportedPattern(p) => write!(f, "unsupported operator: {p}"),
        }
    }
}

/// A successful translation.
#[derive(Debug, Clone)]
pub struct TranslatedQuery {
    /// The request shape whose fragment retrieves the query's images.
    pub shape: Shape,
    /// False when the fragment may strictly contain the images
    /// (negated-`bound` queries).
    pub exact: bool,
}

/// One node of the pattern tree: a variable, or one *occurrence* of a
/// constant (two mentions of the same IRI are distinct leaves).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum Node {
    Var(String),
    Const(Term, usize),
}

#[derive(Debug, Clone)]
struct Edge {
    s: Node,
    p: Iri,
    o: Node,
}

#[derive(Debug, Default)]
struct Collected {
    edges: Vec<Edge>,
    /// Filters not consumed as `!bound` markers.
    filters: Vec<Expr>,
    /// Variables negated via `FILTER(!bound(?v))`.
    negated_vars: HashSet<String>,
    optionals: Vec<Vec<Edge>>,
    const_counter: usize,
}

impl Collected {
    fn node(&mut self, x: &VarOrTerm) -> Node {
        match x {
            VarOrTerm::Var(v) => Node::Var(v.clone()),
            VarOrTerm::Term(t) => {
                self.const_counter += 1;
                Node::Const(t.clone(), self.const_counter)
            }
        }
    }

    fn add_triples(
        &mut self,
        tps: &[TriplePattern],
        optional: Option<usize>,
    ) -> Result<(), Blocker> {
        for tp in tps {
            let p = match &tp.predicate {
                VarOrTerm::Var(_) => return Err(Blocker::VariablePredicate),
                VarOrTerm::Term(Term::Iri(iri)) => iri.clone(),
                VarOrTerm::Term(other) => {
                    return Err(Blocker::UnsupportedPattern(format!(
                        "non-IRI predicate {other}"
                    )))
                }
            };
            let edge = Edge {
                s: self.node(&tp.subject),
                p,
                o: self.node(&tp.object),
            };
            match optional {
                Some(group) => self.optionals[group].push(edge),
                None => self.edges.push(edge),
            }
        }
        Ok(())
    }

    fn collect(&mut self, pattern: &Pattern, optional: Option<usize>) -> Result<(), Blocker> {
        match pattern {
            Pattern::Unit => Ok(()),
            Pattern::Bgp(tps) => self.add_triples(tps, optional),
            Pattern::Join(a, b) => {
                self.collect(a, optional)?;
                self.collect(b, optional)
            }
            Pattern::Filter(inner, expr) => {
                self.collect(inner, optional)?;
                check_no_arithmetic(expr)?;
                if let Expr::Not(e) = expr {
                    if let Expr::Bound(v) = e.as_ref() {
                        self.negated_vars.insert(v.clone());
                        return Ok(());
                    }
                }
                self.filters.push(expr.clone());
                Ok(())
            }
            Pattern::LeftJoin(a, b, None) if optional.is_none() => {
                self.collect(a, None)?;
                self.optionals.push(Vec::new());
                let group = self.optionals.len() - 1;
                self.collect(b, Some(group))
            }
            Pattern::LeftJoin(..) => Err(Blocker::UnsupportedPattern("nested OPTIONAL".into())),
            Pattern::Union(..) => Err(Blocker::UnsupportedPattern("UNION".into())),
            Pattern::Minus(..) => Err(Blocker::UnsupportedPattern("MINUS".into())),
            Pattern::Path { .. } => Err(Blocker::UnsupportedPattern("property path".into())),
            Pattern::SubSelect(_) => Err(Blocker::UnsupportedPattern("subquery".into())),
        }
    }
}

fn check_no_arithmetic(expr: &Expr) -> Result<(), Blocker> {
    match expr {
        Expr::Add(..) | Expr::Sub(..) | Expr::Mul(..) | Expr::Div(..) => Err(Blocker::Arithmetic),
        Expr::Not(e)
        | Expr::Lang(e)
        | Expr::Str(e)
        | Expr::IsIri(e)
        | Expr::IsLiteral(e)
        | Expr::IsBlank(e)
        | Expr::StrLen(e)
        | Expr::Datatype(e) => check_no_arithmetic(e),
        Expr::And(a, b)
        | Expr::Or(a, b)
        | Expr::Eq(a, b)
        | Expr::Neq(a, b)
        | Expr::Lt(a, b)
        | Expr::Le(a, b)
        | Expr::Gt(a, b)
        | Expr::Ge(a, b)
        | Expr::LangMatches(a, b)
        | Expr::SameTerm(a, b) => {
            check_no_arithmetic(a)?;
            check_no_arithmetic(b)
        }
        Expr::Coalesce(items) => items.iter().try_for_each(check_no_arithmetic),
        Expr::In(e, _, _) => check_no_arithmetic(e),
        Expr::Regex(e, _, _) => check_no_arithmetic(e),
        Expr::Var(_) | Expr::Const(_) | Expr::Bound(_) => Ok(()),
    }
}

/// Translates a subgraph query into a request shape, or explains why it
/// cannot be translated.
pub fn query_to_shape(query: &Select) -> Result<TranslatedQuery, Blocker> {
    let mut collected = Collected::default();
    collected.collect(&query.pattern, None)?;
    if collected.edges.is_empty() {
        return Err(Blocker::UnsupportedPattern("empty pattern".into()));
    }

    // Filters: attach node tests per variable.
    let mut var_tests: BTreeMap<String, Vec<Shape>> = BTreeMap::new();
    for filter in &collected.filters {
        let (v, test) = filter_to_test(filter)?;
        var_tests.entry(v).or_default().push(test);
    }

    // Every negated-bound variable must be bound only inside an optional
    // group — FILTER(!bound(?v)) over a mandatory variable is constant
    // false and has no shape translation.
    for v in &collected.negated_vars {
        let in_mandatory = collected.edges.iter().any(|e| {
            [&e.s, &e.o]
                .into_iter()
                .any(|n| matches!(n, Node::Var(x) if x == v))
        });
        let in_optional = collected.optionals.iter().flatten().any(|e| {
            [&e.s, &e.o]
                .into_iter()
                .any(|n| matches!(n, Node::Var(x) if x == v))
        });
        if in_mandatory || !in_optional {
            return Err(Blocker::UnsupportedFilter(format!(
                "!bound(?{v}) on a non-optional variable"
            )));
        }
    }

    // Tree check on the mandatory part.
    let root = match &collected.edges[0].s {
        Node::Var(v) => Node::Var(v.clone()),
        Node::Const(..) => return Err(Blocker::UnsupportedPattern("constant root subject".into())),
    };
    let mandatory = TreeBuilder::new(&collected.edges, &var_tests)?;
    let mut shape = mandatory.build(&root)?;
    if mandatory.visited_edges() != collected.edges.len() {
        return Err(Blocker::NonTree); // disconnected component
    }

    // Optional groups hang off the root.
    let mut exact = true;
    for group in &collected.optionals {
        if group.is_empty() {
            continue;
        }
        let negated = group.iter().any(|e| {
            [&e.s, &e.o]
                .into_iter()
                .any(|n| matches!(n, Node::Var(v) if collected.negated_vars.contains(v)))
        });
        let builder = TreeBuilder::new(group, &var_tests)?;
        let group_shape = builder.build(&root)?;
        if builder.visited_edges() != group.len() {
            return Err(Blocker::NonTree);
        }
        if negated {
            // FILTER(!bound): the optional body must NOT match.
            shape = shape.and(group_shape.not());
            exact = false;
        } else {
            // Plain OPTIONAL: relax the top-level quantifiers to ≥0.
            shape = shape.and(relax_to_optional(group_shape));
        }
    }

    Ok(TranslatedQuery { shape, exact })
}

/// Rewrites the top-level `≥1` conjuncts of an optional subtree to `≥0`.
/// (`Shape` implements `Drop`, so the rewrite mutates in place instead of
/// destructuring by value.)
fn relax_to_optional(mut shape: Shape) -> Shape {
    let mut stack: Vec<&mut Shape> = vec![&mut shape];
    while let Some(s) = stack.pop() {
        match s {
            Shape::Geq(n @ 1, _, _) => *n = 0,
            Shape::And(items) => stack.extend(items.iter_mut()),
            _ => {}
        }
    }
    shape
}

struct TreeBuilder<'a> {
    adjacency: HashMap<Node, Vec<(usize, bool)>>,
    edges: &'a [Edge],
    var_tests: &'a BTreeMap<String, Vec<Shape>>,
    visited: std::cell::RefCell<HashSet<usize>>,
}

impl<'a> TreeBuilder<'a> {
    fn new(
        edges: &'a [Edge],
        var_tests: &'a BTreeMap<String, Vec<Shape>>,
    ) -> Result<Self, Blocker> {
        let mut adjacency: HashMap<Node, Vec<(usize, bool)>> = HashMap::new();
        for (i, e) in edges.iter().enumerate() {
            adjacency.entry(e.s.clone()).or_default().push((i, true));
            adjacency.entry(e.o.clone()).or_default().push((i, false));
        }
        Ok(TreeBuilder {
            adjacency,
            edges,
            var_tests,
            visited: std::cell::RefCell::new(HashSet::new()),
        })
    }

    fn visited_edges(&self) -> usize {
        self.visited.borrow().len()
    }

    /// Depth-first construction from `node`; an edge reaching an
    /// already-expanded node means a cycle.
    fn build(&self, node: &Node) -> Result<Shape, Blocker> {
        self.build_inner(node, &mut HashSet::new())
    }

    fn build_inner(&self, node: &Node, on_path: &mut HashSet<Node>) -> Result<Shape, Blocker> {
        if !on_path.insert(node.clone()) {
            return Err(Blocker::NonTree);
        }
        let mut conj = Vec::new();
        if let Node::Const(term, _) = node {
            conj.push(Shape::HasValue(term.clone()));
        }
        if let Node::Var(v) = node {
            if let Some(tests) = self.var_tests.get(v) {
                conj.extend(tests.iter().cloned());
            }
        }
        let incident: Vec<(usize, bool)> = self.adjacency.get(node).cloned().unwrap_or_default();
        for (edge_idx, forward) in incident {
            if !self.visited.borrow_mut().insert(edge_idx) {
                continue;
            }
            let edge = &self.edges[edge_idx];
            let child = if forward { &edge.o } else { &edge.s };
            if on_path.contains(child) {
                return Err(Blocker::NonTree); // back edge: cycle
            }
            let child_shape = self.build_inner(child, on_path)?;
            let path = if forward {
                PathExpr::Prop(edge.p.clone())
            } else {
                PathExpr::Prop(edge.p.clone()).inverse()
            };
            conj.push(Shape::geq(1, path, child_shape));
        }
        on_path.remove(node);
        Ok(Shape::conj(conj))
    }
}

/// Converts a filter over exactly one variable to a node-test shape.
fn filter_to_test(expr: &Expr) -> Result<(String, Shape), Blocker> {
    let unsupported = || Blocker::UnsupportedFilter(expr.to_string());
    match expr {
        Expr::And(a, b) => {
            let (va, sa) = filter_to_test(a)?;
            let (vb, sb) = filter_to_test(b)?;
            if va != vb {
                return Err(unsupported());
            }
            Ok((va, sa.and(sb)))
        }
        Expr::Or(a, b) => {
            let (va, sa) = filter_to_test(a)?;
            let (vb, sb) = filter_to_test(b)?;
            if va != vb {
                return Err(unsupported());
            }
            Ok((va, sa.or(sb)))
        }
        Expr::Lt(a, b) | Expr::Le(a, b) | Expr::Gt(a, b) | Expr::Ge(a, b) => {
            let le_like = matches!(expr, Expr::Le(..) | Expr::Ge(..));
            // Orient to (?v OP const).
            let (v, bound, flipped) = match (a.as_ref(), b.as_ref()) {
                (Expr::Var(v), Expr::Const(Term::Literal(l))) => (v.clone(), l.clone(), false),
                (Expr::Const(Term::Literal(l)), Expr::Var(v)) => (v.clone(), l.clone(), true),
                _ => return Err(unsupported()),
            };
            let upper = matches!(expr, Expr::Lt(..) | Expr::Le(..)) != flipped;
            let test = match (upper, le_like) {
                (true, false) => NodeTest::MaxExclusive(bound),
                (true, true) => NodeTest::MaxInclusive(bound),
                (false, false) => NodeTest::MinExclusive(bound),
                (false, true) => NodeTest::MinInclusive(bound),
            };
            Ok((v, Shape::Test(test)))
        }
        Expr::Eq(a, b) => match (a.as_ref(), b.as_ref()) {
            (Expr::Var(v), Expr::Const(t)) | (Expr::Const(t), Expr::Var(v)) => {
                Ok((v.clone(), Shape::HasValue(t.clone())))
            }
            _ => Err(unsupported()),
        },
        Expr::Neq(a, b) => match (a.as_ref(), b.as_ref()) {
            (Expr::Var(v), Expr::Const(t)) | (Expr::Const(t), Expr::Var(v)) => {
                Ok((v.clone(), Shape::HasValue(t.clone()).not()))
            }
            _ => Err(unsupported()),
        },
        Expr::LangMatches(a, b) => {
            let (Expr::Lang(inner), Expr::Const(Term::Literal(range))) = (a.as_ref(), b.as_ref())
            else {
                return Err(unsupported());
            };
            let Expr::Var(v) = inner.as_ref() else {
                return Err(unsupported());
            };
            Ok((
                v.clone(),
                Shape::Test(NodeTest::Language(range.lexical().to_owned())),
            ))
        }
        Expr::Regex(e, pattern, flags) => {
            let v = match e.as_ref() {
                Expr::Var(v) => v.clone(),
                Expr::Str(inner) => match inner.as_ref() {
                    Expr::Var(v) => v.clone(),
                    _ => return Err(unsupported()),
                },
                _ => return Err(unsupported()),
            };
            let test = NodeTest::pattern(pattern, flags)
                .map_err(|e| Blocker::UnsupportedFilter(e.to_string()))?;
            Ok((v, Shape::Test(test)))
        }
        _ => Err(unsupported()),
    }
}

/// The images of a query's pattern: for each solution, every triple
/// pattern of the query instantiated under the solution (the
/// `CONSTRUCT WHERE` reading used throughout §4.1).
pub fn construct_images(graph: &Graph, query: &Select) -> Graph {
    let mut patterns = Vec::new();
    collect_triple_patterns(&query.pattern, &mut patterns);
    let all = Select::star(query.pattern.clone());
    let mut out = Graph::new();
    for binding in eval(graph, &all) {
        for tp in &patterns {
            let resolve = |x: &VarOrTerm| -> Option<Term> {
                match x {
                    VarOrTerm::Term(t) => Some(t.clone()),
                    VarOrTerm::Var(v) => binding.get(v).cloned(),
                }
            };
            let (Some(s), Some(p), Some(o)) = (
                resolve(&tp.subject),
                resolve(&tp.predicate),
                resolve(&tp.object),
            ) else {
                continue;
            };
            let Term::Iri(p) = p else { continue };
            if s.is_literal() {
                continue;
            }
            let t = Triple::new(s, p, o);
            if graph.contains(&t) {
                out.insert(t);
            }
        }
    }
    out
}

fn collect_triple_patterns(pattern: &Pattern, out: &mut Vec<TriplePattern>) {
    match pattern {
        Pattern::Bgp(tps) => out.extend(tps.iter().cloned()),
        Pattern::Join(a, b) | Pattern::Union(a, b) | Pattern::LeftJoin(a, b, _) => {
            collect_triple_patterns(a, out);
            collect_triple_patterns(b, out);
        }
        Pattern::Minus(a, _) => collect_triple_patterns(a, out),
        Pattern::Filter(inner, _) => collect_triple_patterns(inner, out),
        Pattern::SubSelect(sel) => collect_triple_patterns(&sel.pattern, out),
        Pattern::Path { .. } | Pattern::Unit => {}
    }
}

/// Convenience test/report hook: translate a literal that appears in a
/// filter test back to a literal (used by tests).
pub fn literal(n: i64) -> Literal {
    Literal::integer(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ecommerce::{generate, EcommerceConfig};
    use crate::queries::{benchmark_queries, Fidelity};
    use shapefrag_core::fragment;
    use shapefrag_shacl::Schema;
    use shapefrag_sparql::parser::parse_select;

    #[test]
    fn classification_matches_expectations() {
        for query in benchmark_queries() {
            let parsed = query.parse();
            let result = query_to_shape(&parsed);
            assert_eq!(
                result.is_ok(),
                query.expressible,
                "query {} misclassified: {:?}",
                query.id,
                result.err()
            );
        }
    }

    #[test]
    fn blockers_are_the_expected_kinds() {
        let mut var_pred = 0;
        let mut arithmetic = 0;
        for query in benchmark_queries() {
            if query.expressible {
                continue;
            }
            match query_to_shape(&query.parse()).unwrap_err() {
                Blocker::VariablePredicate => var_pred += 1,
                Blocker::Arithmetic => arithmetic += 1,
                other => panic!("unexpected blocker for {}: {other}", query.id),
            }
        }
        assert_eq!(var_pred, 5);
        assert_eq!(arithmetic, 2);
    }

    #[test]
    fn fragments_reproduce_query_images() {
        let g = generate(&EcommerceConfig {
            products: 60,
            users: 40,
            seed: 3,
        });
        let schema = Schema::empty();
        for query in benchmark_queries() {
            if !query.expressible {
                continue;
            }
            let parsed = query.parse();
            let translated = query_to_shape(&parsed).unwrap();
            let images = construct_images(&g, &parsed);
            let frag = fragment(&schema, &g, std::slice::from_ref(&translated.shape));
            assert!(
                images.is_subgraph_of(&frag),
                "query {}: images ⊄ fragment (shape {})",
                query.id,
                translated.shape
            );
            if query.fidelity == Fidelity::Exact {
                assert_eq!(
                    frag, images,
                    "query {}: fragment ≠ images (shape {})",
                    query.id, translated.shape
                );
                assert!(translated.exact);
            } else {
                assert!(!translated.exact);
            }
        }
    }

    #[test]
    fn negated_bound_on_mandatory_variable_rejected() {
        // FILTER(!bound(?l)) where ?l is always bound is constant-false;
        // dropping it would yield a wrong translation.
        let q = parse_select(
            "PREFIX ec: <http://ec.example.org/vocab/>\n\
             SELECT * WHERE { ?s ec:label ?l . FILTER (!bound(?l)) }",
        )
        .unwrap();
        assert!(matches!(
            query_to_shape(&q).unwrap_err(),
            Blocker::UnsupportedFilter(_)
        ));
        // And a !bound over a variable bound nowhere at all.
        let q = parse_select(
            "PREFIX ec: <http://ec.example.org/vocab/>\n\
             SELECT * WHERE { ?s ec:label ?l . FILTER (!bound(?ghost)) }",
        )
        .unwrap();
        assert!(matches!(
            query_to_shape(&q).unwrap_err(),
            Blocker::UnsupportedFilter(_)
        ));
    }

    #[test]
    fn cyclic_pattern_rejected() {
        let q = parse_select(
            "PREFIX ec: <http://ec.example.org/vocab/>\n\
             SELECT * WHERE { ?a ec:friendOf ?b . ?b ec:friendOf ?c . ?c ec:friendOf ?a }",
        )
        .unwrap();
        assert_eq!(query_to_shape(&q).unwrap_err(), Blocker::NonTree);
    }

    #[test]
    fn disconnected_pattern_rejected() {
        let q = parse_select(
            "PREFIX ec: <http://ec.example.org/vocab/>\n\
             SELECT * WHERE { ?a ec:label ?l . ?x ec:name ?n }",
        )
        .unwrap();
        assert_eq!(query_to_shape(&q).unwrap_err(), Blocker::NonTree);
    }

    #[test]
    fn union_rejected() {
        let q = parse_select(
            "PREFIX ec: <http://ec.example.org/vocab/>\n\
             SELECT * WHERE { { ?a ec:label ?l } UNION { ?a ec:name ?l } }",
        )
        .unwrap();
        assert!(matches!(
            query_to_shape(&q).unwrap_err(),
            Blocker::UnsupportedPattern(_)
        ));
    }

    #[test]
    fn paper_example_watdiv_translation() {
        // The simplified WatDiv query from §4.1; the expected shape is
        // ≥1 caption.⊤ ∧ ≥1 hasReview.(≥1 title.⊤ ∧ ≥1 reviewer.≥1 follows⁻.⊤).
        let query = benchmark_queries()
            .into_iter()
            .find(|q| q.id == "W03")
            .unwrap();
        let shape = query_to_shape(&query.parse()).unwrap().shape;
        let text = shape.to_string();
        assert!(text.contains("caption"), "{text}");
        assert!(text.contains("hasReview"), "{text}");
        assert!(
            text.contains("^<http://ec.example.org/vocab/follows>"),
            "{text}"
        );
    }

    #[test]
    fn paper_example_negated_bound_translation() {
        let query = benchmark_queries()
            .into_iter()
            .find(|q| q.id == "B05")
            .unwrap();
        let translated = query_to_shape(&query.parse()).unwrap();
        assert!(!translated.exact);
        // The shape must contain a negated conjunct mentioning feature59.
        let text = translated.shape.to_string();
        assert!(text.contains('¬') && text.contains("feature59"), "{text}");
    }
}
