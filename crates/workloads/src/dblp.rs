//! Synthetic DBLP co-authorship generator (§5.3.2 substitution).
//!
//! The paper's "Vardi experiment" computes the shape fragment of
//! `≥1 (a⁻/a)³.hasValue(MYV)` — all authors within co-author distance 3 of
//! Moshe Y. Vardi, *plus all `authoredBy` triples on the relevant paths* —
//! over year slices of DBLP (2021 back to 2010).
//!
//! We reproduce the structure with a preferential-attachment co-authorship
//! model: papers arrive per year and choose authors with probability
//! proportional to their current degree, yielding the heavy-tailed
//! collaboration network DBLP exhibits; a designated *hub author* (the
//! Vardi stand-in) is seeded early and participates at an elevated rate, so
//! that a large share of authors ends up within distance ≤ 3 — the paper
//! reports ≈7% of all authors and ≈3% of all `authoredBy` triples for the
//! 2016–2021 slice.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use shapefrag_rdf::{Graph, Iri, Literal, Term, Triple};
use shapefrag_shacl::{PathExpr, Shape};

/// Namespace of the synthetic bibliography.
pub const DBLP_NS: &str = "http://dblp.example.org/";

/// The `authoredBy` property (paper → author).
pub fn authored_by() -> Iri {
    Iri::new(format!("{DBLP_NS}authoredBy"))
}

/// The `yearOfPublication` property.
pub fn year_prop() -> Iri {
    Iri::new(format!("{DBLP_NS}year"))
}

/// The hub author standing in for Moshe Y. Vardi.
pub fn hub_author() -> Term {
    Term::iri(format!("{DBLP_NS}author/TheHub"))
}

/// Generator configuration.
#[derive(Debug, Clone, Copy)]
pub struct DblpConfig {
    /// First publication year generated.
    pub first_year: u32,
    /// Last publication year generated (inclusive).
    pub last_year: u32,
    /// Papers per year.
    pub papers_per_year: usize,
    /// New authors entering the pool per year.
    pub new_authors_per_year: usize,
    /// Probability that a paper is single-author (controls network
    /// sparsity — real DBLP has a long tail of solo and two-author
    /// papers, which keeps co-author balls small).
    pub solo_ratio: f64,
    /// Probability that the hub co-authors any given paper.
    pub hub_rate: f64,
    pub seed: u64,
}

impl Default for DblpConfig {
    fn default() -> Self {
        DblpConfig {
            first_year: 2010,
            last_year: 2021,
            papers_per_year: 800,
            new_authors_per_year: 300,
            solo_ratio: 0.35,
            hub_rate: 0.025,
            seed: 0xD61F,
        }
    }
}

/// One generated publication.
#[derive(Debug, Clone)]
pub struct Paper {
    pub id: usize,
    pub year: u32,
    pub authors: Vec<usize>,
}

/// The generated bibliography, kept in a year-sliceable form.
#[derive(Debug, Clone)]
pub struct Bibliography {
    pub papers: Vec<Paper>,
    pub author_count: usize,
    config: DblpConfig,
}

impl Bibliography {
    /// Generates the co-authorship history.
    pub fn generate(config: &DblpConfig) -> Bibliography {
        let mut rng = StdRng::seed_from_u64(config.seed);
        // Author 0 is the hub.
        let mut degree: Vec<usize> = vec![3]; // seed weight for the hub
        let mut papers = Vec::new();
        let mut paper_id = 0usize;
        for year in config.first_year..=config.last_year {
            // Each new author enters with base weight 1.
            degree.extend(std::iter::repeat_n(1, config.new_authors_per_year));
            for _ in 0..config.papers_per_year {
                let n_authors = if rng.gen_bool(config.solo_ratio) {
                    1
                } else {
                    2 + rng.gen_range(0..4).min(rng.gen_range(0..4))
                };
                let mut authors = Vec::with_capacity(n_authors + 1);
                if rng.gen_bool(config.hub_rate) {
                    authors.push(0);
                }
                let total: usize = degree.iter().sum();
                while authors.len() < n_authors.max(1) {
                    // Preferential attachment: pick by degree weight.
                    let mut ticket = rng.gen_range(0..total);
                    let mut chosen = 0;
                    for (i, d) in degree.iter().enumerate() {
                        if ticket < *d {
                            chosen = i;
                            break;
                        }
                        ticket -= d;
                    }
                    if !authors.contains(&chosen) {
                        authors.push(chosen);
                    }
                }
                for &a in &authors {
                    degree[a] += 1;
                }
                papers.push(Paper {
                    id: paper_id,
                    year,
                    authors,
                });
                paper_id += 1;
            }
        }
        Bibliography {
            papers,
            author_count: degree.len(),
            config: *config,
        }
    }

    /// The RDF graph of the slice containing publication years
    /// `[from_year, last_year]` (the paper slices "going backwards in time
    /// from 2021 until 2010").
    pub fn slice(&self, from_year: u32) -> Graph {
        let mut g = Graph::new();
        let ab = authored_by();
        let yp = year_prop();
        for paper in &self.papers {
            if paper.year < from_year {
                continue;
            }
            let p = Term::iri(format!("{DBLP_NS}rec/{}", paper.id));
            g.insert(Triple::new(
                p.clone(),
                yp.clone(),
                Term::Literal(Literal::integer(paper.year as i64)),
            ));
            for &a in &paper.authors {
                g.insert(Triple::new(p.clone(), ab.clone(), author_term(a)));
            }
        }
        g
    }

    /// The full graph (all years).
    pub fn full_graph(&self) -> Graph {
        self.slice(self.config.first_year)
    }
}

fn author_term(idx: usize) -> Term {
    if idx == 0 {
        hub_author()
    } else {
        Term::iri(format!("{DBLP_NS}author/a{idx}"))
    }
}

/// The Vardi-distance-`k` request shape:
/// `≥1 (a⁻/a)^k.hasValue(hub)` — co-author distance ≤ k from the hub, with
/// all authorship triples on the connecting paths.
///
/// `a⁻/a` goes author → paper → author, so `k` repetitions reach co-author
/// distance `k`; because each hop may stay in place (a co-author of
/// themselves via any shared paper), `(a⁻/a)^k` covers all distances ≤ k,
/// matching "distance three *or less*" in §5.3.2.
pub fn vardi_shape(k: usize) -> Shape {
    let hop = PathExpr::Prop(authored_by())
        .inverse()
        .then(PathExpr::Prop(authored_by()));
    Shape::geq(1, hop.repeat(k), Shape::has_value(hub_author()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use shapefrag_core::fragment;
    use shapefrag_shacl::validator::Context;
    use shapefrag_shacl::Schema;

    fn small_config() -> DblpConfig {
        DblpConfig {
            first_year: 2018,
            last_year: 2021,
            papers_per_year: 120,
            new_authors_per_year: 60,
            seed: 7,
            ..DblpConfig::default()
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let b1 = Bibliography::generate(&small_config());
        let b2 = Bibliography::generate(&small_config());
        assert_eq!(b1.full_graph(), b2.full_graph());
    }

    #[test]
    fn slices_grow_backwards_in_time() {
        let b = Bibliography::generate(&small_config());
        let s2021 = b.slice(2021);
        let s2019 = b.slice(2019);
        let s2018 = b.slice(2018);
        assert!(s2021.len() < s2019.len());
        assert!(s2019.len() < s2018.len());
        assert!(s2021.is_subgraph_of(&s2019));
        assert!(s2019.is_subgraph_of(&s2018));
    }

    #[test]
    fn hub_is_prolific() {
        let b = Bibliography::generate(&small_config());
        let g = b.full_graph();
        let hub_papers = g.subjects_for(&hub_author(), &authored_by()).len();
        // ~2.5% of 480 papers.
        assert!(hub_papers >= 3, "hub has only {hub_papers} papers");
    }

    #[test]
    fn degree_distribution_is_heavy_tailed() {
        let b = Bibliography::generate(&small_config());
        let g = b.full_graph();
        let mut degrees: Vec<usize> = Vec::new();
        for node in g.nodes() {
            if matches!(node, Term::Iri(i) if i.as_str().contains("/author/")) {
                degrees.push(g.subjects_for(node, &authored_by()).len());
            }
        }
        degrees.sort_unstable_by(|a, b| b.cmp(a));
        let total: usize = degrees.iter().sum();
        let top10: usize = degrees.iter().take(degrees.len() / 10).sum();
        // Top decile of authors should hold well over a fifth of authorships.
        assert!(
            top10 * 5 > total,
            "top decile {top10} of {total} is not heavy-tailed"
        );
    }

    #[test]
    fn vardi_shape_selects_coauthor_ball() {
        let b = Bibliography::generate(&small_config());
        let g = b.full_graph();
        let schema = Schema::empty();
        let mut ctx = Context::new(&schema, &g);
        let shape1 = vardi_shape(1);
        let shape3 = vardi_shape(3);
        let d1: Vec<_> = g
            .node_ids()
            .into_iter()
            .filter(|&v| ctx.conforms(v, &shape1))
            .collect();
        let d3: Vec<_> = g
            .node_ids()
            .into_iter()
            .filter(|&v| ctx.conforms(v, &shape3))
            .collect();
        // Distance-1 conformers include the hub itself and direct co-authors.
        assert!(d1.len() > 1);
        // Monotone: the distance-3 ball contains the distance-1 ball.
        assert!(d3.len() >= d1.len());
        // And a noticeable share of all authors is within distance 3.
        let author_count = g
            .nodes()
            .iter()
            .filter(|t| matches!(t, Term::Iri(i) if i.as_str().contains("/author/")))
            .count();
        assert!(
            d3.len() * 50 > author_count,
            "only {} of {author_count} authors within distance 3",
            d3.len()
        );
    }

    #[test]
    fn vardi_fragment_is_authorship_subgraph() {
        let b = Bibliography::generate(&small_config());
        let g = b.slice(2020);
        let schema = Schema::empty();
        let frag = fragment(&schema, &g, &[vardi_shape(2)]);
        assert!(frag.is_subgraph_of(&g));
        assert!(!frag.is_empty());
        // Only authoredBy triples appear on the traced paths.
        for t in frag.iter() {
            assert_eq!(t.predicate, authored_by());
        }
    }
}
