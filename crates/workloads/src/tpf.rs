//! Triple Pattern Fragments and their shape-fragment expressibility
//! (§6.1, Proposition 6.2).
//!
//! A TPF query is a single triple pattern; on an input graph it returns the
//! subgraph of all images of the pattern. Proposition 6.2 characterizes
//! exactly which TPFs are expressible as shape fragments:
//!
//! 1. `(?x, p, ?y)`   5. `(?x, p, ?x)`
//! 2. `(?x, p, c)`    6. `(?x, ?y, ?z)`
//! 3. `(c, p, ?x)`    7. `(c, ?y, ?z)`
//! 4. `(c, p, d)`
//!
//! [`tpf_shape`] returns the paper's request shape for each expressible
//! form and `None` otherwise; the accompanying tests replay the
//! counterexample graphs of Appendix D for the inexpressible forms.

use std::collections::BTreeSet;

use shapefrag_rdf::{Graph, Term, Triple};
use shapefrag_shacl::shape::PathOrId;
use shapefrag_shacl::{PathExpr, Shape};

/// One position of a TPF pattern: a constant or a numbered variable
/// (equal numbers denote the same variable).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TpfPos {
    Const(Term),
    Var(u8),
}

impl TpfPos {
    fn matches(&self, term: &Term, bound: &mut [Option<Term>; 3]) -> bool {
        match self {
            TpfPos::Const(c) => c == term,
            TpfPos::Var(i) => match &bound[*i as usize] {
                Some(existing) => existing == term,
                None => {
                    bound[*i as usize] = Some(term.clone());
                    true
                }
            },
        }
    }
}

/// A triple pattern fragment query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TpfQuery {
    pub subject: TpfPos,
    pub predicate: TpfPos,
    pub object: TpfPos,
}

impl TpfQuery {
    pub fn new(subject: TpfPos, predicate: TpfPos, object: TpfPos) -> Self {
        TpfQuery {
            subject,
            predicate,
            object,
        }
    }

    /// Evaluates the TPF: the subgraph of all images of the pattern.
    pub fn eval(&self, graph: &Graph) -> Graph {
        let mut out = Graph::new();
        for t in graph.iter() {
            let mut bound: [Option<Term>; 3] = [None, None, None];
            if self.subject.matches(&t.subject, &mut bound)
                && self
                    .predicate
                    .matches(&Term::Iri(t.predicate.clone()), &mut bound)
                && self.object.matches(&t.object, &mut bound)
            {
                out.insert(t);
            }
        }
        out
    }

    /// The distinct variable numbers used.
    fn vars(&self) -> BTreeSet<u8> {
        [&self.subject, &self.predicate, &self.object]
            .into_iter()
            .filter_map(|p| match p {
                TpfPos::Var(i) => Some(*i),
                TpfPos::Const(_) => None,
            })
            .collect()
    }
}

/// The request shape expressing a TPF as a shape fragment, per
/// Proposition 6.2; `None` for the inexpressible forms.
pub fn tpf_shape(q: &TpfQuery) -> Option<Shape> {
    use TpfPos::*;
    let distinct = q.vars().len();
    match (&q.subject, &q.predicate, &q.object) {
        // (c, p, d)
        (Const(c), Const(Term::Iri(p)), Const(d)) => Some(Shape::HasValue(c.clone()).and(
            Shape::geq(1, PathExpr::Prop(p.clone()), Shape::HasValue(d.clone())),
        )),
        // (c, p, ?x)
        (Const(c), Const(Term::Iri(p)), Var(_)) => Some(Shape::geq(
            1,
            PathExpr::Prop(p.clone()).inverse(),
            Shape::HasValue(c.clone()),
        )),
        // (?x, p, c)
        (Var(_), Const(Term::Iri(p)), Const(c)) => Some(Shape::geq(
            1,
            PathExpr::Prop(p.clone()),
            Shape::HasValue(c.clone()),
        )),
        // (?x, p, ?x) — self loops.
        (Var(a), Const(Term::Iri(p)), Var(b)) if a == b => {
            Some(Shape::Disj(PathOrId::Id, p.clone()).not())
        }
        // (?x, p, ?y)
        (Var(_), Const(Term::Iri(p)), Var(_)) => {
            Some(Shape::geq(1, PathExpr::Prop(p.clone()), Shape::True))
        }
        // (c, ?y, ?z)
        (Const(c), Var(_), Var(_)) if distinct == 2 => {
            Some(Shape::HasValue(c.clone()).and(Shape::Closed(BTreeSet::new()).not()))
        }
        // (?x, ?y, ?z) — full download.
        (Var(a), Var(b), Var(c)) if a != b && b != c && a != c => {
            Some(Shape::Closed(BTreeSet::new()).not())
        }
        // All remaining forms — (?x, ?y, c), (?x, ?y, ?x), (?x, ?x, …),
        // (c, ?x, d), (c, ?x, ?x), … — are not expressible (Appendix D).
        _ => None,
    }
}

/// The Remark 6.3 extension: with *negated property sets* in path
/// expressions (`PathExpr::NegProp`), TPFs with a variable in the property
/// position and constants elsewhere become expressible. This covers the
/// paper's example `(?x, ?y, c)` (via `≥1 p.hasValue(c) ∨ ≥1 !p.hasValue(c)`)
/// and analogously `(c, ?x, d)`. Forms that *equate* the property variable
/// with a subject/object variable — `(?x, ?y, ?x)`, `(?x, ?x, ?x)`,
/// `(c, ?x, ?x)` — still have no shape, since shapes cannot compare a
/// property to a node.
pub fn tpf_shape_extended(q: &TpfQuery) -> Option<Shape> {
    use TpfPos::*;
    if let Some(shape) = tpf_shape(q) {
        return Some(shape);
    }
    // An arbitrary witness property, as in the paper's Remark 6.3 example.
    let p = shapefrag_rdf::Iri::new("http://tpf.example.org/p");
    let any_value_edge = |c: &Term| {
        Shape::geq(1, PathExpr::Prop(p.clone()), Shape::HasValue(c.clone())).or(Shape::geq(
            1,
            PathExpr::neg_props([p.clone()]),
            Shape::HasValue(c.clone()),
        ))
    };
    match (&q.subject, &q.predicate, &q.object) {
        // (?x, ?y, c) — the Remark 6.3 example.
        (Var(x), Var(y), Const(c)) if x != y => Some(any_value_edge(c)),
        // (c, ?x, d).
        (Const(c), Var(_), Const(d)) => Some(Shape::HasValue(c.clone()).and(any_value_edge(d))),
        _ => None,
    }
}

/// The Appendix D counterexample graph for an inexpressible TPF, used to
/// demonstrate non-expressibility experimentally: on this graph, *every*
/// shape that retrieves the TPF's images must (by Lemma D.1) also retrieve
/// a triple outside them.
pub fn counterexample_graph(q: &TpfQuery) -> Option<Graph> {
    use TpfPos::*;
    let iri = |n: &str| Term::iri(format!("http://tpf.example.org/{n}"));
    let t = |s: &Term, p: &Term, o: &Term| {
        let Term::Iri(p) = p else { unreachable!() };
        Triple::new(s.clone(), p.clone(), o.clone())
    };
    let (a, b, c, d, e) = (iri("a"), iri("b"), iri("c"), iri("d"), iri("e"));
    match (&q.subject, &q.predicate, &q.object) {
        (Var(x), Var(y), Const(cc)) if x != y => {
            // (?x, ?y, c): {(a, b, c), (a, b, d)}
            Some(Graph::from_triples([t(&a, &b, cc), t(&a, &b, &d)]))
        }
        (Var(x), Var(y), Var(z)) if x == z && x != y => {
            // (?x, ?y, ?x): {(a, b, a), (a, b, c)}
            Some(Graph::from_triples([t(&a, &b, &a), t(&a, &b, &c)]))
        }
        (Var(x), Var(y), Var(z)) if y == z && x != y => {
            // (?x, ?y, ?y): {(a, b, b), (a, b, c)}
            Some(Graph::from_triples([t(&a, &b, &b), t(&a, &b, &c)]))
        }
        (Var(x), Var(y), Var(z)) if x == y && y == z => {
            // (?x, ?x, ?x): {(a, a, a), (a, a, b)}
            Some(Graph::from_triples([t(&a, &a, &a), t(&a, &a, &b)]))
        }
        (Var(x), Var(y), Var(z)) if x == y && y != z => {
            // (?x, ?x, ?z): {(a, a, c), (a, a, d)} (variant of the table)
            Some(Graph::from_triples([t(&a, &a, &c), t(&a, &a, &d)]))
        }
        (Const(cc), Var(x), Var(y)) if x == y => {
            // (c, ?x, ?x): {(c, a, a), (c, a, b)}
            Some(Graph::from_triples([t(cc, &a, &a), t(cc, &a, &b)]))
        }
        (Const(cc), Var(_), Const(dd)) => {
            // (c, ?x, d): {(c, a, d), (c, a, e)}
            Some(Graph::from_triples([t(cc, &a, dd), t(cc, &a, &e)]))
        }
        _ => None,
    }
}

/// All TPF forms of Proposition 6.2 plus the inexpressible ones, for the
/// experiment binary.
pub fn all_tpf_forms() -> Vec<(&'static str, TpfQuery, bool)> {
    use TpfPos::*;
    let c = || Const(Term::iri("http://tpf.example.org/c"));
    let d = || Const(Term::iri("http://tpf.example.org/d"));
    let p = || Const(Term::iri("http://tpf.example.org/p"));
    vec![
        ("(?x, p, ?y)", TpfQuery::new(Var(0), p(), Var(1)), true),
        ("(?x, p, c)", TpfQuery::new(Var(0), p(), c()), true),
        ("(c, p, ?x)", TpfQuery::new(c(), p(), Var(0)), true),
        ("(c, p, d)", TpfQuery::new(c(), p(), d()), true),
        ("(?x, p, ?x)", TpfQuery::new(Var(0), p(), Var(0)), true),
        ("(?x, ?y, ?z)", TpfQuery::new(Var(0), Var(1), Var(2)), true),
        ("(c, ?y, ?z)", TpfQuery::new(c(), Var(0), Var(1)), true),
        ("(?x, ?y, c)", TpfQuery::new(Var(0), Var(1), c()), false),
        ("(?x, ?y, ?x)", TpfQuery::new(Var(0), Var(1), Var(0)), false),
        ("(?x, ?y, ?y)", TpfQuery::new(Var(0), Var(1), Var(1)), false),
        ("(?x, ?x, ?x)", TpfQuery::new(Var(0), Var(0), Var(0)), false),
        ("(c, ?x, ?x)", TpfQuery::new(c(), Var(0), Var(0)), false),
        ("(c, ?x, d)", TpfQuery::new(c(), Var(0), d()), false),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use shapefrag_core::fragment;
    use shapefrag_rdf::Iri;
    use shapefrag_shacl::Schema;

    fn random_graph(seed: u64, triples: usize) -> Graph {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut g = Graph::new();
        // Include the distinguished c, d, p terms so constant patterns hit.
        let node = |i: usize| {
            Term::iri(match i {
                0 => "http://tpf.example.org/c".to_string(),
                1 => "http://tpf.example.org/d".to_string(),
                i => format!("http://tpf.example.org/n{i}"),
            })
        };
        let pred = |i: usize| {
            Iri::new(match i {
                0 => "http://tpf.example.org/p".to_string(),
                i => format!("http://tpf.example.org/q{i}"),
            })
        };
        for _ in 0..triples {
            let s = node(rng.gen_range(0..8));
            let p = pred(rng.gen_range(0..3));
            let o = node(rng.gen_range(0..8));
            g.insert(Triple::new(s, p, o));
        }
        g
    }

    #[test]
    fn expressible_forms_match_fragments_on_random_graphs() {
        let schema = Schema::empty();
        for seed in 0..15u64 {
            let g = random_graph(seed, 30);
            for (name, query, expressible) in all_tpf_forms() {
                if !expressible {
                    continue;
                }
                let shape = tpf_shape(&query).unwrap_or_else(|| panic!("{name} should translate"));
                let via_tpf = query.eval(&g);
                let via_frag = fragment(&schema, &g, std::slice::from_ref(&shape));
                assert_eq!(
                    via_tpf, via_frag,
                    "TPF {name} ≠ fragment of {shape} on seed {seed}"
                );
            }
        }
    }

    #[test]
    fn inexpressible_forms_have_no_translation() {
        for (name, query, expressible) in all_tpf_forms() {
            assert_eq!(
                tpf_shape(&query).is_some(),
                expressible,
                "translation status wrong for {name}"
            );
        }
    }

    #[test]
    fn counterexamples_witness_lemma_d1() {
        // For each inexpressible TPF: on the Appendix D graph, the TPF
        // returns exactly one of the two triples, but both triples use
        // properties "not mentioned in any candidate shape" (fresh IRIs),
        // so by Lemma D.1 any neighborhood containing one contains both.
        for (name, query, expressible) in all_tpf_forms() {
            if expressible {
                continue;
            }
            let g = counterexample_graph(&query)
                .unwrap_or_else(|| panic!("missing counterexample for {name}"));
            let images = query.eval(&g);
            assert_eq!(g.len(), 2, "{name}");
            assert_eq!(images.len(), 1, "{name}: images {images:?}");
        }
    }

    #[test]
    fn tpf_eval_respects_shared_variables() {
        let g = Graph::from_triples([
            Triple::new(
                Term::iri("http://e/a"),
                Iri::new("http://e/p"),
                Term::iri("http://e/a"),
            ),
            Triple::new(
                Term::iri("http://e/a"),
                Iri::new("http://e/p"),
                Term::iri("http://e/b"),
            ),
        ]);
        let q = TpfQuery::new(
            TpfPos::Var(0),
            TpfPos::Const(Term::iri("http://e/p")),
            TpfPos::Var(0),
        );
        let images = q.eval(&g);
        assert_eq!(images.len(), 1);
    }

    #[test]
    fn remark_6_3_extension_expresses_variable_predicate_forms() {
        // With negated property sets, (?x, ?y, c) and (c, ?x, d) gain
        // exact shape fragments.
        let schema = Schema::empty();
        let c = TpfPos::Const(Term::iri("http://tpf.example.org/c"));
        let d = TpfPos::Const(Term::iri("http://tpf.example.org/d"));
        let queries = [
            TpfQuery::new(TpfPos::Var(0), TpfPos::Var(1), c.clone()),
            TpfQuery::new(c.clone(), TpfPos::Var(0), d.clone()),
        ];
        for query in &queries {
            assert!(tpf_shape(query).is_none(), "inexpressible in core SHACL");
            let shape = tpf_shape_extended(query).expect("expressible with !p");
            for seed in 0..10u64 {
                let g = random_graph(seed, 35);
                assert_eq!(
                    query.eval(&g),
                    fragment(&schema, &g, std::slice::from_ref(&shape)),
                    "extended TPF mismatch on seed {seed}"
                );
            }
        }
        // Including on the Appendix D counterexample graphs, which the
        // extension resolves.
        for query in &queries {
            let g = counterexample_graph(query).unwrap();
            let shape = tpf_shape_extended(query).unwrap();
            assert_eq!(
                query.eval(&g),
                fragment(&schema, &g, std::slice::from_ref(&shape))
            );
        }
    }

    #[test]
    fn property_equating_forms_remain_inexpressible_even_extended() {
        for (name, query, _) in all_tpf_forms() {
            if matches!(
                name,
                "(?x, ?y, ?x)" | "(?x, ?x, ?x)" | "(c, ?x, ?x)" | "(?x, ?y, ?y)"
            ) {
                assert!(tpf_shape_extended(&query).is_none(), "{name}");
            }
        }
    }

    #[test]
    fn full_download_shape() {
        let schema = Schema::empty();
        let g = random_graph(3, 25);
        let q = TpfQuery::new(TpfPos::Var(0), TpfPos::Var(1), TpfPos::Var(2));
        let shape = tpf_shape(&q).unwrap();
        assert_eq!(fragment(&schema, &g, &[shape]), g);
    }
}
