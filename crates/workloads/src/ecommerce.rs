//! Synthetic e-commerce/review dataset in the style of the BSBM and WatDiv
//! benchmark universes (§4.1 substitution).
//!
//! Products with features, labels and captions; vendors and offers with
//! prices; reviews with ratings, titles and language-tagged text; users
//! who follow and befriend each other, like products, and live in cities of
//! countries; websites and retailers. The §4.1 query workload
//! ([`crate::queries`]) is written against this vocabulary.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use shapefrag_rdf::vocab::{rdf, xsd};
use shapefrag_rdf::{Graph, Iri, Literal, Term, Triple};

/// Vocabulary namespace.
pub const EC_NS: &str = "http://ec.example.org/vocab/";
/// Entity namespace.
pub const EC_DATA: &str = "http://ec.example.org/data/";

/// A vocabulary IRI.
pub fn ec(local: &str) -> Iri {
    Iri::new(format!("{EC_NS}{local}"))
}

/// A data entity.
pub fn ent(local: &str) -> Term {
    Term::iri(format!("{EC_DATA}{local}"))
}

/// Generator configuration.
#[derive(Debug, Clone, Copy)]
pub struct EcommerceConfig {
    pub products: usize,
    pub users: usize,
    pub seed: u64,
}

impl Default for EcommerceConfig {
    fn default() -> Self {
        EcommerceConfig {
            products: 120,
            users: 80,
            seed: 0xECC0,
        }
    }
}

/// Generates the dataset. Sized so that every benchmark query has
/// non-empty results: feature 870 and feature 59 exist, some products have
/// the one without the other, English and German review texts both occur,
/// the friend/follows graph is connected enough for 2–3 hop queries.
pub fn generate(config: &EcommerceConfig) -> Graph {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut g = Graph::new();

    let countries: Vec<Term> = (0..5).map(|i| ent(&format!("country{i}"))).collect();
    for (i, c) in countries.iter().enumerate() {
        g.insert(Triple::new(
            c.clone(),
            rdf::type_(),
            Term::Iri(ec("Country")),
        ));
        g.insert(Triple::new(
            c.clone(),
            ec("name"),
            Term::Literal(Literal::string(format!("Country {i}"))),
        ));
    }
    let cities: Vec<Term> = (0..12).map(|i| ent(&format!("city{i}"))).collect();
    for (i, c) in cities.iter().enumerate() {
        g.insert(Triple::new(c.clone(), rdf::type_(), Term::Iri(ec("City"))));
        g.insert(Triple::new(
            c.clone(),
            ec("country"),
            countries[i % countries.len()].clone(),
        ));
    }

    let genres: Vec<Term> = (0..6).map(|i| ent(&format!("genre{i}"))).collect();
    for (i, genre) in genres.iter().enumerate() {
        g.insert(Triple::new(
            genre.clone(),
            rdf::type_(),
            Term::Iri(ec("Genre")),
        ));
        g.insert(Triple::new(
            genre.clone(),
            ec("label"),
            Term::Literal(Literal::string(format!("Genre {i}"))),
        ));
    }

    let vendors: Vec<Term> = (0..8).map(|i| ent(&format!("vendor{i}"))).collect();
    for (i, v) in vendors.iter().enumerate() {
        g.insert(Triple::new(
            v.clone(),
            rdf::type_(),
            Term::Iri(ec("Vendor")),
        ));
        g.insert(Triple::new(
            v.clone(),
            ec("label"),
            Term::Literal(Literal::string(format!("Vendor {i}"))),
        ));
        g.insert(Triple::new(
            v.clone(),
            ec("country"),
            countries[i % countries.len()].clone(),
        ));
        g.insert(Triple::new(
            v.clone(),
            ec("homepage"),
            Term::iri(format!("https://vendor{i}.example.org/")),
        ));
    }

    let features: Vec<Term> = [59usize, 870, 12, 34, 56, 78]
        .iter()
        .map(|i| ent(&format!("feature{i}")))
        .collect();

    let users: Vec<Term> = (0..config.users)
        .map(|i| ent(&format!("user{i}")))
        .collect();
    for (i, u) in users.iter().enumerate() {
        g.insert(Triple::new(u.clone(), rdf::type_(), Term::Iri(ec("User"))));
        g.insert(Triple::new(
            u.clone(),
            ec("name"),
            Term::Literal(Literal::string(format!("User {i}"))),
        ));
        g.insert(Triple::new(
            u.clone(),
            ec("location"),
            cities[i % cities.len()].clone(),
        ));
        if i % 3 != 0 {
            g.insert(Triple::new(
                u.clone(),
                ec("age"),
                Term::Literal(Literal::integer(18 + (i as i64 * 7) % 60)),
            ));
        }
        // Social edges.
        for _ in 0..rng.gen_range(0..4) {
            if let Some(f) = users.choose(&mut rng) {
                if f != u {
                    g.insert(Triple::new(u.clone(), ec("friendOf"), f.clone()));
                }
            }
        }
        if let Some(f) = users.choose(&mut rng) {
            if f != u {
                g.insert(Triple::new(u.clone(), ec("follows"), f.clone()));
            }
        }
    }

    let products: Vec<Term> = (0..config.products)
        .map(|i| ent(&format!("product{i}")))
        .collect();
    let mut review_id = 0usize;
    for (i, p) in products.iter().enumerate() {
        g.insert(Triple::new(
            p.clone(),
            rdf::type_(),
            Term::Iri(ec("Product")),
        ));
        g.insert(Triple::new(
            p.clone(),
            ec("label"),
            Term::Literal(Literal::string(format!("Product {i}"))),
        ));
        g.insert(Triple::new(
            p.clone(),
            ec("caption"),
            Term::Literal(Literal::lang_string(
                format!("Caption {i}"),
                if i % 2 == 0 { "en" } else { "de" },
            )),
        ));
        g.insert(Triple::new(
            p.clone(),
            ec("hasGenre"),
            genres[i % genres.len()].clone(),
        ));
        // Features: all products get some; 870 and 59 overlap partially so
        // the negated-bound query has results.
        if i % 2 == 0 {
            g.insert(Triple::new(p.clone(), ec("feature"), ent("feature870")));
        }
        if i % 4 == 1 {
            g.insert(Triple::new(p.clone(), ec("feature"), ent("feature59")));
        }
        g.insert(Triple::new(
            p.clone(),
            ec("feature"),
            features[i % features.len()].clone(),
        ));
        g.insert(Triple::new(
            p.clone(),
            ec("producer"),
            vendors[i % vendors.len()].clone(),
        ));
        g.insert(Triple::new(
            p.clone(),
            ec("price"),
            Term::Literal(Literal::typed(
                format!("{}.99", 5 + (i * 13) % 400),
                xsd::decimal(),
            )),
        ));
        g.insert(Triple::new(
            p.clone(),
            ec("deliveryDays"),
            Term::Literal(Literal::integer(1 + (i as i64 % 7))),
        ));
        if let Some(u) = users.choose(&mut rng) {
            g.insert(Triple::new(u.clone(), ec("likes"), p.clone()));
        }

        // Offers.
        for k in 0..(1 + i % 3) {
            let offer = ent(&format!("offer{i}_{k}"));
            g.insert(Triple::new(
                offer.clone(),
                rdf::type_(),
                Term::Iri(ec("Offer")),
            ));
            g.insert(Triple::new(offer.clone(), ec("product"), p.clone()));
            g.insert(Triple::new(
                offer.clone(),
                ec("vendor"),
                vendors[(i + k) % vendors.len()].clone(),
            ));
            g.insert(Triple::new(
                offer.clone(),
                ec("price"),
                Term::Literal(Literal::typed(
                    format!("{}.49", 4 + ((i + k) * 11) % 380),
                    xsd::decimal(),
                )),
            ));
        }

        // Reviews.
        for _ in 0..(i % 4) {
            let review = ent(&format!("review{review_id}"));
            review_id += 1;
            g.insert(Triple::new(
                review.clone(),
                rdf::type_(),
                Term::Iri(ec("Review")),
            ));
            g.insert(Triple::new(p.clone(), ec("hasReview"), review.clone()));
            g.insert(Triple::new(
                review.clone(),
                ec("title"),
                Term::Literal(Literal::string(format!("Review of product {i}"))),
            ));
            let lang = if review_id.is_multiple_of(3) {
                "de"
            } else {
                "en"
            };
            g.insert(Triple::new(
                review.clone(),
                ec("text"),
                Term::Literal(Literal::lang_string(format!("Nice product {i}"), lang)),
            ));
            g.insert(Triple::new(
                review.clone(),
                ec("rating"),
                Term::Literal(Literal::integer(1 + (review_id as i64 % 10))),
            ));
            if let Some(u) = users.choose(&mut rng) {
                g.insert(Triple::new(review.clone(), ec("reviewer"), u.clone()));
            }
        }
    }

    // Websites and retailers for WatDiv-style star queries.
    for i in 0..10 {
        let site = ent(&format!("website{i}"));
        g.insert(Triple::new(
            site.clone(),
            rdf::type_(),
            Term::Iri(ec("Website")),
        ));
        g.insert(Triple::new(
            site.clone(),
            ec("url"),
            Term::iri(format!("https://site{i}.example.org/")),
        ));
        for _ in 0..4 {
            if let Some(p) = products.choose(&mut rng) {
                g.insert(Triple::new(site.clone(), ec("sells"), p.clone()));
            }
        }
        let retailer = ent(&format!("retailer{i}"));
        g.insert(Triple::new(
            retailer.clone(),
            rdf::type_(),
            Term::Iri(ec("Retailer")),
        ));
        g.insert(Triple::new(retailer.clone(), ec("operates"), site.clone()));
        g.insert(Triple::new(
            retailer.clone(),
            ec("country"),
            countries[i % countries.len()].clone(),
        ));
    }

    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_scaled() {
        let c = EcommerceConfig::default();
        assert_eq!(generate(&c), generate(&c));
        let small = generate(&EcommerceConfig {
            products: 40,
            users: 30,
            seed: 1,
        });
        let large = generate(&EcommerceConfig {
            products: 400,
            users: 300,
            seed: 1,
        });
        assert!(large.len() > 5 * small.len());
    }

    #[test]
    fn query_critical_entities_exist() {
        let g = generate(&EcommerceConfig::default());
        // feature 870 and 59 both used.
        assert!(!g
            .triples_matching(None, Some(&ec("feature")), Some(&ent("feature870")))
            .is_empty());
        assert!(!g
            .triples_matching(None, Some(&ec("feature")), Some(&ent("feature59")))
            .is_empty());
        // Some product has 870 without 59.
        let with870: Vec<_> = g
            .triples_matching(None, Some(&ec("feature")), Some(&ent("feature870")))
            .into_iter()
            .map(|t| t.subject)
            .collect();
        let has59: std::collections::HashSet<_> = g
            .triples_matching(None, Some(&ec("feature")), Some(&ent("feature59")))
            .into_iter()
            .map(|t| t.subject)
            .collect();
        assert!(with870.iter().any(|p| !has59.contains(p)));
        // English captions for the langMatches query.
        let captions = g.triples_matching(None, Some(&ec("caption")), None);
        assert!(captions
            .iter()
            .any(|t| t.object.as_literal().and_then(|l| l.language()) == Some("en")));
    }

    #[test]
    fn reviews_are_linked_to_products_and_users() {
        let g = generate(&EcommerceConfig::default());
        let reviews = g.triples_matching(None, Some(&ec("hasReview")), None);
        assert!(!reviews.is_empty());
        let some_review = &reviews[0].object;
        assert!(!g.objects_for(some_review, &ec("rating")).is_empty());
    }
}
