//! The 46-query benchmark workload (§4.1 substitution).
//!
//! A re-modelled mix of 34 WatDiv-style and 12 BSBM-style queries over the
//! [`crate::ecommerce`] vocabulary, with the same feature distribution the
//! paper reports: tree-shaped basic graph patterns with constant
//! predicates, value filters, `langMatches`, `OPTIONAL`, the
//! negated-`bound` trick — and seven queries using the features SHACL
//! cannot express (variables in the property position, arithmetic).
//! The paper's result to reproduce: **39 of 46** queries, modified to
//! return subgraphs, are expressible as shape fragments.

use shapefrag_sparql::parser::parse_select;
use shapefrag_sparql::Select;

/// Which benchmark family a query is modelled on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    WatDiv,
    Bsbm,
}

/// How faithfully the translated shape fragment reproduces the query's
/// subgraph images.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fidelity {
    /// `Frag(G, φ)` equals the images of the pattern.
    Exact,
    /// `Frag(G, φ)` is a superset of the images (Sufficiency-preserving;
    /// happens for negated-`bound` queries whose `≤0`-shapes trace extra
    /// evidence).
    Superset,
}

/// One benchmark query.
#[derive(Debug, Clone)]
pub struct BenchmarkQuery {
    /// `W01`–`W34` / `B01`–`B12`.
    pub id: &'static str,
    pub family: Family,
    /// Human description.
    pub name: &'static str,
    /// SPARQL text (parseable by `shapefrag-sparql`).
    pub text: String,
    /// Whether §4.1's criteria make it expressible as a shape fragment.
    pub expressible: bool,
    /// Expected fragment fidelity (meaningful only when expressible).
    pub fidelity: Fidelity,
}

impl BenchmarkQuery {
    /// Parses the query text.
    pub fn parse(&self) -> Select {
        parse_select(&self.text)
            .unwrap_or_else(|e| panic!("benchmark query {} does not parse: {e}", self.id))
    }
}

const PROLOGUE: &str = "PREFIX ec: <http://ec.example.org/vocab/>\n\
                        PREFIX ed: <http://ec.example.org/data/>\n\
                        PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>\n";

fn q(
    id: &'static str,
    family: Family,
    name: &'static str,
    body: &str,
    expressible: bool,
    fidelity: Fidelity,
) -> BenchmarkQuery {
    BenchmarkQuery {
        id,
        family,
        name,
        text: format!("{PROLOGUE}SELECT * WHERE {{\n{body}\n}}"),
        expressible,
        fidelity,
    }
}

/// The full 46-query workload.
pub fn benchmark_queries() -> Vec<BenchmarkQuery> {
    use Family::*;
    use Fidelity::*;
    vec![
        // --- WatDiv-style (W01–W34) --------------------------------------
        q("W01", WatDiv, "product labels", "?v ec:label ?l .", true, Exact),
        q(
            "W02",
            WatDiv,
            "captioned products with reviews",
            "?v ec:caption ?c . ?v ec:hasReview ?r .",
            true,
            Exact,
        ),
        q(
            "W03",
            WatDiv,
            "review chain with follower (paper's example)",
            "?v ec:caption ?c . ?v ec:hasReview ?r . ?r ec:title ?t . ?r ec:reviewer ?u . ?w ec:follows ?u .",
            true,
            Exact,
        ),
        q(
            "W04",
            WatDiv,
            "product star",
            "?p rdf:type ec:Product . ?p ec:label ?l . ?p ec:price ?pr . ?p ec:producer ?vn .",
            true,
            Exact,
        ),
        q(
            "W05",
            WatDiv,
            "products with feature 870",
            "?p ec:feature ed:feature870 . ?p ec:label ?l .",
            true,
            Exact,
        ),
        q(
            "W06",
            WatDiv,
            "genres of products",
            "?p ec:hasGenre ?g . ?g ec:label ?gl .",
            true,
            Exact,
        ),
        q(
            "W07",
            WatDiv,
            "user locations",
            "?u ec:location ?c . ?c ec:country ?co .",
            true,
            Exact,
        ),
        q(
            "W08",
            WatDiv,
            "friends' likes",
            "?u rdf:type ec:User . ?u ec:friendOf ?f . ?f ec:likes ?p .",
            true,
            Exact,
        ),
        q(
            "W09",
            WatDiv,
            "two-hop follows",
            "?u ec:follows ?f . ?f ec:follows ?f2 .",
            true,
            Exact,
        ),
        q(
            "W10",
            WatDiv,
            "reviewer cities",
            "?r ec:reviewer ?u . ?u ec:location ?c .",
            true,
            Exact,
        ),
        q(
            "W11",
            WatDiv,
            "website products and prices",
            "?s ec:sells ?p . ?p ec:price ?pr .",
            true,
            Exact,
        ),
        q(
            "W12",
            WatDiv,
            "retailer websites",
            "?rt ec:operates ?s . ?s ec:url ?url .",
            true,
            Exact,
        ),
        q(
            "W13",
            WatDiv,
            "fast-delivery features",
            "?p ec:feature ?f . ?p ec:deliveryDays ?d . FILTER (?d < 3)",
            true,
            Exact,
        ),
        q(
            "W14",
            WatDiv,
            "expensive products",
            "?p ec:price ?pr . FILTER (?pr >= 100)",
            true,
            Exact,
        ),
        q(
            "W15",
            WatDiv,
            "middle-aged users",
            "?u ec:age ?a . FILTER (?a > 30 && ?a < 50)",
            true,
            Exact,
        ),
        q(
            "W16",
            WatDiv,
            "English captions",
            "?p ec:caption ?c . FILTER langMatches(lang(?c), \"en\")",
            true,
            Exact,
        ),
        q(
            "W17",
            WatDiv,
            "top-rated review titles",
            "?r ec:rating ?rt . FILTER (?rt >= 8) . ?r ec:title ?t .",
            true,
            Exact,
        ),
        q(
            "W18",
            WatDiv,
            "products with both features",
            "?p rdf:type ec:Product . ?p ec:feature ed:feature59 . ?p ec:feature ed:feature870 .",
            true,
            Exact,
        ),
        q(
            "W19",
            WatDiv,
            "vendors from country0",
            "?v rdf:type ec:Vendor . ?v ec:country ed:country0 .",
            true,
            Exact,
        ),
        q(
            "W20",
            WatDiv,
            "producer homepages",
            "?p ec:producer ?v . ?v ec:homepage ?h .",
            true,
            Exact,
        ),
        q(
            "W21",
            WatDiv,
            "who likes genre1 products",
            "?u ec:likes ?p . ?p ec:hasGenre ed:genre1 .",
            true,
            Exact,
        ),
        q(
            "W22",
            WatDiv,
            "website product labels",
            "?w rdf:type ec:Website . ?w ec:sells ?p . ?p ec:label ?l .",
            true,
            Exact,
        ),
        q(
            "W23",
            WatDiv,
            "German review texts",
            "?r ec:text ?t . FILTER langMatches(lang(?t), \"de\")",
            true,
            Exact,
        ),
        q(
            "W24",
            WatDiv,
            "friend-of-friend likes chain",
            "?u ec:friendOf ?f . ?f ec:friendOf ?f2 . ?f2 ec:likes ?p . ?p ec:label ?l .",
            true,
            Exact,
        ),
        q(
            "W25",
            WatDiv,
            "labels with optional reviews",
            "?p ec:label ?l . OPTIONAL { ?p ec:hasReview ?r }",
            true,
            Exact,
        ),
        q(
            "W26",
            WatDiv,
            "names with optional ages",
            "?u ec:name ?n . OPTIONAL { ?u ec:age ?a }",
            true,
            Exact,
        ),
        q(
            "W27",
            WatDiv,
            "poorly rated reviews",
            "?p ec:hasReview ?r . ?r ec:rating ?rt . FILTER (?rt <= 3)",
            true,
            Exact,
        ),
        q(
            "W28",
            WatDiv,
            "cities with residents (inverse edge)",
            "?c ec:country ?co . ?u ec:location ?c . ?u ec:name ?n .",
            true,
            Exact,
        ),
        q(
            "W29",
            WatDiv,
            "cheap products with optional ratings",
            "?p ec:label ?l . ?p ec:price ?pr . FILTER (?pr < 50) . OPTIONAL { ?p ec:hasReview ?r . ?r ec:rating ?rt }",
            true,
            Exact,
        ),
        q(
            "W30",
            WatDiv,
            "anything related to feature870 (variable predicate)",
            "?p ?rel ed:feature870 .",
            false,
            Exact,
        ),
        q(
            "W31",
            WatDiv,
            "full scan with predicate filter (variable predicate)",
            "?s ?p ?o . FILTER (?p = ec:label)",
            false,
            Exact,
        ),
        q(
            "W32",
            WatDiv,
            "price per delivery day (arithmetic)",
            "?p ec:price ?pr . ?p ec:deliveryDays ?d . FILTER (?pr / ?d < 20)",
            false,
            Exact,
        ),
        q(
            "W33",
            WatDiv,
            "retailer operation chain",
            "?x rdf:type ec:Retailer . ?x ec:country ?c . ?x ec:operates ?s . ?s ec:sells ?p .",
            true,
            Exact,
        ),
        q(
            "W34",
            WatDiv,
            "genre labels",
            "?g rdf:type ec:Genre . ?g ec:label ?gl .",
            true,
            Exact,
        ),
        // --- BSBM-style (B01–B12) -----------------------------------------
        q(
            "B01",
            Bsbm,
            "labelled products with feature 870",
            "?p rdf:type ec:Product . ?p ec:label ?l . ?p ec:feature ed:feature870 .",
            true,
            Exact,
        ),
        q(
            "B02",
            Bsbm,
            "offers per product (inverse edge)",
            "?p ec:label ?l . ?o ec:product ?p . ?o ec:price ?pr .",
            true,
            Exact,
        ),
        q(
            "B03",
            Bsbm,
            "offers from country1 vendors",
            "?p ec:label ?l . ?o ec:product ?p . ?o ec:vendor ?v . ?v ec:country ed:country1 .",
            true,
            Exact,
        ),
        q(
            "B04",
            Bsbm,
            "English review texts with optional rating (paper's example)",
            "?r ec:text ?t . FILTER langMatches(lang(?t), \"en\") . OPTIONAL { ?r ec:rating ?rt }",
            true,
            Exact,
        ),
        q(
            "B05",
            Bsbm,
            "feature 870 without feature 59 (negated bound, paper's example)",
            "?prod ec:label ?lab . ?prod ec:feature ed:feature870 . OPTIONAL { ?prod ec:feature ed:feature59 . ?prod ec:label ?var } FILTER (!bound(?var))",
            true,
            Superset,
        ),
        q(
            "B06",
            Bsbm,
            "cheap offers with vendors",
            "?o rdf:type ec:Offer . ?o ec:price ?pr . FILTER (?pr < 100) . ?o ec:vendor ?v .",
            true,
            Exact,
        ),
        q(
            "B07",
            Bsbm,
            "review authors",
            "?p ec:hasReview ?r . ?r ec:reviewer ?u . ?u ec:name ?n .",
            true,
            Exact,
        ),
        q(
            "B08",
            Bsbm,
            "label prefix search",
            "?p ec:label ?l . FILTER regex(?l, \"^Product 1\")",
            true,
            Exact,
        ),
        q(
            "B09",
            Bsbm,
            "labelled objects of any property (variable predicate)",
            "?s ?rel ?o . ?o ec:label ?l .",
            false,
            Exact,
        ),
        q(
            "B10",
            Bsbm,
            "doubled price threshold (arithmetic)",
            "?o ec:price ?pr . FILTER (?pr * 2 > 500)",
            false,
            Exact,
        ),
        q(
            "B11",
            Bsbm,
            "anything pointing at user1 (variable predicate)",
            "?s ?p ed:user1 .",
            false,
            Exact,
        ),
        q(
            "B12",
            Bsbm,
            "products with any link to genre1 (variable predicate)",
            "?p ec:label ?l . ?p ?any ed:genre1 .",
            false,
            Exact,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forty_six_queries_with_seven_inexpressible() {
        let qs = benchmark_queries();
        assert_eq!(qs.len(), 46);
        assert_eq!(qs.iter().filter(|q| q.expressible).count(), 39);
        assert_eq!(qs.iter().filter(|q| !q.expressible).count(), 7);
        assert_eq!(qs.iter().filter(|q| q.family == Family::WatDiv).count(), 34);
        assert_eq!(qs.iter().filter(|q| q.family == Family::Bsbm).count(), 12);
    }

    #[test]
    fn ids_unique() {
        let qs = benchmark_queries();
        let mut ids: Vec<_> = qs.iter().map(|q| q.id).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 46);
    }

    #[test]
    fn all_queries_parse() {
        for query in benchmark_queries() {
            let _ = query.parse();
        }
    }

    #[test]
    fn all_queries_have_results_on_generated_data() {
        let g = crate::ecommerce::generate(&crate::ecommerce::EcommerceConfig::default());
        for query in benchmark_queries() {
            let parsed = query.parse();
            let solutions = shapefrag_sparql::eval(&g, &parsed);
            assert!(
                !solutions.is_empty(),
                "query {} has no results on the generated dataset",
                query.id
            );
        }
    }
}
