//! # shapefrag-workloads
//!
//! Synthetic workload generators and query suites reproducing the paper's
//! evaluation inputs (see DESIGN.md §2 for the substitution rationale):
//!
//! - [`tyrolean`] — tourism knowledge graph + induced-subgraph sampling
//!   (§5.3.1 data), with [`shapes57`] providing the 57 benchmark shapes.
//! - [`dblp`] — preferential-attachment co-authorship graph with year
//!   slices and the Vardi-distance-k shape (§5.3.2).
//! - [`ecommerce`] + [`queries`] — the 46 BSBM/WatDiv-style subgraph
//!   queries, with [`query2shape`] performing the §4.1 expressibility
//!   analysis and translation.
//! - [`tpf`] — triple pattern fragments and Proposition 6.2.
#![forbid(unsafe_code)]

pub mod dblp;
pub mod ecommerce;
pub mod queries;
pub mod query2shape;
pub mod shapes57;
pub mod tpf;
pub mod tyrolean;
