//! The 57-shape benchmark suite (§5.3.1 substitution).
//!
//! Stand-in for the 57 shapes of the Schaffenrath et al. SHACL performance
//! benchmark, re-expressed over the synthetic tourism vocabulary of
//! [`crate::tyrolean`]. The suite spans the same constraint classes:
//! cardinality, class/datatype/nodeKind, value ranges, string patterns and
//! lengths, language tags, logical combinators, property pairs
//! (`lessThan`, `equals`, `disjoint`), closedness, and nested existential /
//! universal shapes — including the "existential shape with many targets"
//! pattern the paper identifies as the worst case for provenance overhead.

use shapefrag_rdf::vocab::{rdf, rdfs};
use shapefrag_rdf::{Literal, Term};
use shapefrag_shacl::node_test::{NodeKind, NodeTest};
use shapefrag_shacl::shape::PathOrId;
use shapefrag_shacl::{PathExpr, Schema, Shape, ShapeDef};

use crate::tyrolean::schema;

fn shape_name(id: usize, label: &str) -> Term {
    Term::iri(format!("http://tkg.example.org/shapes/S{id:02}-{label}"))
}

fn prop(local: &str) -> PathExpr {
    PathExpr::Prop(schema(local))
}

/// Class-based target: `≥1 rdf:type/rdfs:subClassOf*.hasValue(class)`.
fn class_target(class: &str) -> Shape {
    Shape::geq(
        1,
        PathExpr::Prop(rdf::type_()).then(PathExpr::Prop(rdfs::sub_class_of()).star()),
        Shape::HasValue(Term::Iri(schema(class))),
    )
}

/// Subjects-of target: `≥1 p.⊤`.
fn subjects_of(local: &str) -> Shape {
    Shape::geq(1, prop(local), Shape::True)
}

fn is_class(class: &str) -> Shape {
    Shape::geq(
        1,
        PathExpr::Prop(rdf::type_()).then(PathExpr::Prop(rdfs::sub_class_of()).star()),
        Shape::HasValue(Term::Iri(schema(class))),
    )
}

fn dtype(local: &str) -> Shape {
    let dt = match local {
        "langString" => shapefrag_rdf::vocab::rdf::lang_string(),
        other => shapefrag_rdf::Iri::new(format!("{}{other}", shapefrag_rdf::vocab::XSD_NS)),
    };
    Shape::Test(NodeTest::Datatype(dt))
}

fn int_range(lo: i64, hi: i64) -> Shape {
    Shape::Test(NodeTest::MinInclusive(Literal::integer(lo)))
        .and(Shape::Test(NodeTest::MaxInclusive(Literal::integer(hi))))
}

fn pattern(src: &str) -> Shape {
    Shape::Test(NodeTest::pattern(src, "").expect("benchmark pattern compiles"))
}

/// Builds the full 57-shape suite as named shape definitions.
pub fn benchmark_shapes() -> Vec<ShapeDef> {
    let mut defs: Vec<(usize, &str, Shape, Shape)> = Vec::new();
    let mut add = |id: usize, label: &'static str, shape: Shape, target: Shape| {
        defs.push((id, label, shape, target));
    };

    // --- Events (1–10) ---------------------------------------------------
    add(
        1,
        "EventHasName",
        Shape::geq(1, prop("name"), Shape::True),
        class_target("Event"),
    );
    add(
        2,
        "EventNameLangString",
        Shape::for_all(prop("name"), dtype("langString")),
        class_target("Event"),
    );
    add(
        3,
        "EventHasStartDate",
        Shape::geq(1, prop("startDate"), Shape::True),
        class_target("Event"),
    );
    add(
        4,
        "EventDatesAreDateTime",
        Shape::for_all(prop("startDate"), dtype("dateTime"))
            .and(Shape::for_all(prop("endDate"), dtype("dateTime"))),
        class_target("Event"),
    );
    add(
        5,
        "EventStartBeforeEnd",
        Shape::LessThan(prop("startDate"), schema("endDate")),
        class_target("Event"),
    );
    add(
        6,
        "EventMaxOneStart",
        Shape::leq(1, prop("startDate"), Shape::True),
        class_target("Event"),
    );
    add(
        7,
        "EventHasLocation",
        Shape::geq(1, prop("location"), Shape::True),
        class_target("Event"),
    );
    add(
        8,
        "EventLocationIsPlace",
        Shape::for_all(prop("location"), is_class("Place")),
        class_target("Event"),
    );
    add(
        9,
        "EventOrganizerIsPerson",
        Shape::for_all(prop("organizer"), is_class("Person")),
        class_target("Event"),
    );
    add(
        10,
        "EventNameUniqueLang",
        Shape::UniqueLang(prop("name")),
        class_target("Event"),
    );

    // --- Places (11–16) ---------------------------------------------------
    add(
        11,
        "PlaceHasName",
        Shape::geq(1, prop("name"), Shape::True),
        class_target("Place"),
    );
    add(
        12,
        "PlacePostalCodePattern",
        Shape::for_all(prop("postalCode"), pattern("^\\d{4}$")),
        class_target("Place"),
    );
    add(
        13,
        "PlaceHasCoordinates",
        Shape::geq(1, prop("latitude"), Shape::True).and(Shape::geq(
            1,
            prop("longitude"),
            Shape::True,
        )),
        class_target("Place"),
    );
    add(
        14,
        "PlaceLatInRange",
        Shape::for_all(
            prop("latitude"),
            Shape::Test(NodeTest::MinInclusive(Literal::integer(45)))
                .and(Shape::Test(NodeTest::MaxInclusive(Literal::integer(48)))),
        ),
        class_target("Place"),
    );
    add(
        15,
        "PlaceCoordsDecimal",
        Shape::for_all(prop("latitude"), dtype("decimal")),
        class_target("Place"),
    );
    add(
        16,
        "PlaceMaxOnePostal",
        Shape::leq(1, prop("postalCode"), Shape::True),
        class_target("Place"),
    );

    // --- Lodging businesses (17–24) ----------------------------------------
    add(
        17,
        "LodgingHasName",
        Shape::geq(1, prop("name"), Shape::True),
        class_target("LodgingBusiness"),
    );
    add(
        18,
        "LodgingStarRange",
        Shape::for_all(prop("starRating"), int_range(1, 5)),
        class_target("LodgingBusiness"),
    );
    add(
        19,
        "LodgingHasLocation",
        Shape::geq(1, prop("location"), Shape::True),
        class_target("LodgingBusiness"),
    );
    add(
        20,
        "LodgingTelephonePattern",
        Shape::for_all(prop("telephone"), pattern("^\\+43")),
        class_target("LodgingBusiness"),
    );
    add(
        21,
        "LodgingUrlIsIri",
        Shape::for_all(prop("url"), Shape::Test(NodeTest::Kind(NodeKind::Iri))),
        class_target("LodgingBusiness"),
    );
    // The worst-case pattern of §5.3.1: an existential shape over a class
    // with many targets and large satisfying edge sets.
    add(
        22,
        "LodgingHasOffer",
        Shape::geq(1, prop("makesOffer"), Shape::True),
        class_target("LodgingBusiness"),
    );
    add(
        23,
        "LodgingOfferPriced",
        Shape::for_all(
            prop("makesOffer"),
            Shape::geq(1, prop("price"), Shape::True),
        ),
        class_target("LodgingBusiness"),
    );
    add(
        24,
        "HotelStarAtLeast1",
        Shape::geq(
            1,
            prop("starRating"),
            Shape::Test(NodeTest::MinInclusive(Literal::integer(1))),
        ),
        class_target("Hotel"),
    );

    // --- Offers (25–30) -----------------------------------------------------
    add(
        25,
        "OfferHasPrice",
        Shape::geq(1, prop("price"), Shape::True),
        class_target("Offer"),
    );
    add(
        26,
        "OfferPricePositive",
        Shape::for_all(
            prop("price"),
            Shape::Test(NodeTest::MinExclusive(Literal::integer(0))),
        ),
        class_target("Offer"),
    );
    add(
        27,
        "OfferCurrencyCode",
        Shape::for_all(prop("priceCurrency"), Shape::Test(NodeTest::MaxLength(3))),
        class_target("Offer"),
    );
    add(
        28,
        "OfferCurrencyIn",
        Shape::for_all(
            prop("priceCurrency"),
            Shape::HasValue(Term::Literal(Literal::string("EUR")))
                .or(Shape::HasValue(Term::Literal(Literal::string("CHF")))),
        ),
        class_target("Offer"),
    );
    add(
        29,
        "OfferValidFromBeforeThrough",
        Shape::LessThanEq(prop("validFrom"), schema("validThrough")),
        class_target("Offer"),
    );
    add(
        30,
        "OfferBelongsToLodging",
        Shape::geq(1, prop("makesOffer").inverse(), is_class("LocalBusiness")),
        class_target("Offer"),
    );

    // --- Reviews (31–37) ------------------------------------------------------
    add(
        31,
        "ReviewHasRating",
        Shape::geq(1, prop("ratingValue"), Shape::True),
        class_target("Review"),
    );
    add(
        32,
        "ReviewRatingInRange",
        Shape::for_all(prop("ratingValue"), int_range(1, 5)),
        class_target("Review"),
    );
    add(
        33,
        "ReviewRatingInteger",
        Shape::for_all(prop("ratingValue"), dtype("integer")),
        class_target("Review"),
    );
    add(
        34,
        "ReviewHasAuthor",
        Shape::geq(1, prop("author"), Shape::True),
        class_target("Review"),
    );
    add(
        35,
        "ReviewAuthorIsPerson",
        Shape::for_all(prop("author"), is_class("Person")),
        class_target("Review"),
    );
    add(
        36,
        "ReviewMaxOneRating",
        Shape::leq(1, prop("ratingValue"), Shape::True),
        class_target("Review"),
    );
    add(
        37,
        "ReviewOfLodging",
        Shape::for_all(prop("itemReviewed"), is_class("LocalBusiness")),
        class_target("Review"),
    );

    // --- People (38–41) ---------------------------------------------------------
    add(
        38,
        "PersonHasName",
        Shape::geq(1, prop("name"), Shape::True),
        class_target("Person"),
    );
    add(
        39,
        "PersonEmailPattern",
        Shape::for_all(prop("email"), pattern("^[\\w.]+@[\\w.]+$")),
        class_target("Person"),
    );
    add(
        40,
        "PersonMaxOneEmail",
        Shape::leq(1, prop("email"), Shape::True),
        class_target("Person"),
    );
    add(
        41,
        "PersonClosed",
        Shape::Closed(
            [rdf::type_(), schema("name"), schema("email")]
                .into_iter()
                .collect(),
        ),
        class_target("Person"),
    );

    // --- Logical combinators and pairs (42–48) -----------------------------------
    add(
        42,
        "EventOrganizerOrLocation",
        Shape::geq(1, prop("organizer"), Shape::True).or(Shape::geq(
            1,
            prop("location"),
            Shape::True,
        )),
        class_target("Event"),
    );
    add(
        43,
        "EventNotPlace",
        Shape::geq(
            1,
            PathExpr::Prop(rdf::type_()),
            Shape::HasValue(Term::Iri(schema("Place"))),
        )
        .not(),
        class_target("Event"),
    );
    {
        // Exactly one lodging subtype (xone).
        let hotel = Shape::geq(
            1,
            PathExpr::Prop(rdf::type_()),
            Shape::HasValue(Term::Iri(schema("Hotel"))),
        );
        let pension = Shape::geq(
            1,
            PathExpr::Prop(rdf::type_()),
            Shape::HasValue(Term::Iri(schema("Pension"))),
        );
        let camp = Shape::geq(
            1,
            PathExpr::Prop(rdf::type_()),
            Shape::HasValue(Term::Iri(schema("Campground"))),
        );
        let xone = Shape::disj_of(vec![
            hotel
                .clone()
                .and(pension.clone().not())
                .and(camp.clone().not()),
            pension
                .clone()
                .and(hotel.clone().not())
                .and(camp.clone().not()),
            camp.clone().and(hotel.not()).and(pension.not()),
        ]);
        add(
            44,
            "LodgingExactlyOneKind",
            xone,
            class_target("LodgingBusiness"),
        );
    }
    add(
        45,
        "LodgingNameTelDisjoint",
        Shape::Disj(PathOrId::Path(prop("name")), schema("telephone")),
        class_target("LodgingBusiness"),
    );
    add(
        46,
        "ReviewAuthorNotItem",
        Shape::Disj(PathOrId::Path(prop("author")), schema("itemReviewed")),
        class_target("Review"),
    );
    add(
        47,
        "ReviewBodyKnownLang",
        Shape::for_all(
            prop("reviewBody"),
            Shape::disj_of(vec![
                Shape::Test(NodeTest::Language("en".into())),
                Shape::Test(NodeTest::Language("de".into())),
                Shape::Test(NodeTest::Language("it".into())),
            ]),
        ),
        class_target("Review"),
    );
    add(
        48,
        "ReviewBodyUniqueLang",
        Shape::UniqueLang(prop("reviewBody")),
        class_target("Review"),
    );

    // --- Nested and path shapes (49–57) ----------------------------------------
    add(
        49,
        "EventLocationNamed",
        Shape::geq(
            1,
            prop("location"),
            Shape::geq(1, prop("name"), Shape::True),
        ),
        class_target("Event"),
    );
    add(
        50,
        "LodgingIsReviewed",
        Shape::geq(
            1,
            prop("itemReviewed").inverse(),
            Shape::geq(
                1,
                PathExpr::Prop(rdf::type_()),
                Shape::HasValue(Term::Iri(schema("Review"))),
            ),
        ),
        class_target("LodgingBusiness"),
    );
    add(
        51,
        "ReviewerReachableEmail",
        Shape::for_all(prop("author"), Shape::geq(1, prop("email"), Shape::True)),
        class_target("Review"),
    );
    add(
        52,
        "EventMax3Names",
        Shape::leq(3, prop("name"), Shape::True),
        class_target("Event"),
    );
    add(
        53,
        "PlaceNameMinLength",
        Shape::for_all(prop("name"), Shape::Test(NodeTest::MinLength(3))),
        class_target("Place"),
    );
    add(
        54,
        "OfferPriceDecimal",
        Shape::for_all(prop("price"), dtype("decimal")),
        class_target("Offer"),
    );
    add(
        55,
        "LodgingAtLeast2Offers",
        Shape::geq(2, prop("makesOffer"), Shape::True),
        class_target("LodgingBusiness"),
    );
    add(
        56,
        "NoOrganizerSelfLoop",
        Shape::Disj(PathOrId::Id, schema("organizer")),
        class_target("Event"),
    );
    add(
        57,
        "NamedThingsAreTyped",
        Shape::geq(1, PathExpr::Prop(rdf::type_()), Shape::True),
        subjects_of("name"),
    );

    defs.into_iter()
        .map(|(id, label, shape, target)| ShapeDef::new(shape_name(id, label), shape, target))
        .collect()
}

/// The benchmark suite as a single schema.
pub fn benchmark_schema() -> Schema {
    Schema::new(benchmark_shapes()).expect("benchmark suite is a valid nonrecursive schema")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tyrolean::{generate, TyroleanConfig};
    use shapefrag_shacl::validator::{validate, Context};

    #[test]
    fn suite_has_57_shapes() {
        assert_eq!(benchmark_shapes().len(), 57);
        assert_eq!(benchmark_schema().len(), 57);
    }

    #[test]
    fn shape_names_are_unique_and_ordered() {
        let shapes = benchmark_shapes();
        let mut names: Vec<_> = shapes.iter().map(|d| d.name.clone()).collect();
        let len_before = names.len();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), len_before);
    }

    #[test]
    fn all_targets_select_nodes_on_generated_data() {
        let g = generate(&TyroleanConfig::new(600, 11));
        let schema = benchmark_schema();
        let mut ctx = Context::new(&schema, &g);
        let mut without_targets = 0;
        for def in schema.iter() {
            if ctx.target_nodes(&def.target).is_empty() {
                without_targets += 1;
            }
        }
        assert_eq!(
            without_targets, 0,
            "{without_targets} shapes select no targets"
        );
    }

    #[test]
    fn suite_produces_mixed_validation_results() {
        // The generator injects ~2–4% violations: validation must find some
        // violations but mostly conforming nodes.
        let g = generate(&TyroleanConfig::new(800, 5));
        let report = validate(&benchmark_schema(), &g);
        assert!(!report.conforms(), "expected some injected violations");
        assert!(
            report.violations.len() * 10 < report.checked,
            "violations ({}) should be a small fraction of checks ({})",
            report.violations.len(),
            report.checked
        );
    }

    #[test]
    fn suite_spans_constraint_classes() {
        // Sanity: at least one shape of each structural kind.
        let shapes = benchmark_shapes();
        let mut has_leq = false;
        let mut has_forall = false;
        let mut has_pair = false;
        let mut has_closed = false;
        let mut has_unique = false;
        let mut has_not = false;
        for def in &shapes {
            fn scan(s: &Shape, f: &mut impl FnMut(&Shape)) {
                f(s);
                match s {
                    Shape::Not(i) => scan(i, f),
                    Shape::And(v) | Shape::Or(v) => v.iter().for_each(|x| scan(x, f)),
                    Shape::Geq(_, _, i) | Shape::Leq(_, _, i) | Shape::ForAll(_, i) => scan(i, f),
                    _ => {}
                }
            }
            scan(&def.shape, &mut |s| match s {
                Shape::Leq(..) => has_leq = true,
                Shape::ForAll(..) => has_forall = true,
                Shape::LessThan(..) | Shape::LessThanEq(..) | Shape::Disj(..) | Shape::Eq(..) => {
                    has_pair = true
                }
                Shape::Closed(_) => has_closed = true,
                Shape::UniqueLang(_) => has_unique = true,
                Shape::Not(_) => has_not = true,
                _ => {}
            });
        }
        assert!(has_leq && has_forall && has_pair && has_closed && has_unique && has_not);
    }
}
