//! Synthetic "Tyrolean Knowledge Graph" substitute (§5.3.1 substitution).
//!
//! The paper's overhead experiment runs 57 shapes over induced subgraphs of
//! a closed 30M-triple tourism knowledge graph (schema.org-annotated
//! events, lodging businesses, places, offers; Schaffenrath et al.). We
//! reproduce the *workload structure*: a deterministic generator for a
//! tourism-domain graph with the same entity kinds and constraint-relevant
//! attributes, plus the paper's induced-subgraph sampling protocol (sample
//! `k` individuals uniformly at random, keep every triple in which a
//! sampled individual appears as subject or object).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use shapefrag_rdf::vocab::{rdf, rdfs, xsd};
use shapefrag_rdf::{Graph, Iri, Literal, Term, Triple};

/// The namespace of the synthetic tourism graph.
pub const TKG_NS: &str = "http://tkg.example.org/";
/// The schema.org-like vocabulary namespace.
pub const SCHEMA_NS: &str = "http://schema.example.org/";

/// Vocabulary helper: a schema property/class IRI.
pub fn schema(local: &str) -> Iri {
    Iri::new(format!("{SCHEMA_NS}{local}"))
}

/// An entity IRI in the data namespace.
pub fn entity(local: &str) -> Term {
    Term::iri(format!("{TKG_NS}{local}"))
}

/// Generator configuration.
#[derive(Debug, Clone, Copy)]
pub struct TyroleanConfig {
    /// Number of *individuals* (events + places + lodgings + offers +
    /// reviews + people). The triple count is roughly 9–11× this.
    pub individuals: usize,
    pub seed: u64,
}

impl TyroleanConfig {
    pub fn new(individuals: usize, seed: u64) -> Self {
        TyroleanConfig { individuals, seed }
    }
}

const EVENT_CATEGORIES: [&str; 6] = [
    "Concert",
    "Market",
    "Hike",
    "Exhibition",
    "Festival",
    "SkiRace",
];
const PLACE_NAMES: [&str; 8] = [
    "Innsbruck",
    "Bozen",
    "Meran",
    "Lienz",
    "Kufstein",
    "Brixen",
    "Sterzing",
    "Hall",
];
const LANGS: [&str; 3] = ["de", "it", "en"];

/// Generates the synthetic tourism graph.
///
/// Entity mix (per 100 individuals): ~30 events, ~15 places, ~15 lodging
/// businesses, ~20 offers, ~15 reviews, ~5 people. A small class hierarchy
/// (`Hotel ⊑ LodgingBusiness ⊑ LocalBusiness`) exercises
/// `rdfs:subClassOf*` targets. A small fraction of entities violate
/// constraints (missing names, out-of-range ratings, inverted date pairs)
/// so that validation reports are non-trivial.
pub fn generate(config: &TyroleanConfig) -> Graph {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut g = Graph::new();

    // Class hierarchy.
    for (sub, sup) in [
        ("Hotel", "LodgingBusiness"),
        ("Pension", "LodgingBusiness"),
        ("LodgingBusiness", "LocalBusiness"),
        ("Campground", "LocalBusiness"),
        ("MusicEvent", "Event"),
        ("SportsEvent", "Event"),
    ] {
        g.insert(Triple::new(
            Term::Iri(schema(sub)),
            rdfs::sub_class_of(),
            Term::Iri(schema(sup)),
        ));
    }

    let n = config.individuals;
    let n_events = n * 30 / 100;
    let n_places = n * 15 / 100;
    let n_lodgings = n * 15 / 100;
    let n_offers = n * 20 / 100;
    let n_reviews = n * 15 / 100;
    let n_people = n.saturating_sub(n_events + n_places + n_lodgings + n_offers + n_reviews);

    let places: Vec<Term> = (0..n_places)
        .map(|i| entity(&format!("place{i}")))
        .collect();
    let lodgings: Vec<Term> = (0..n_lodgings)
        .map(|i| entity(&format!("lodging{i}")))
        .collect();
    let people: Vec<Term> = (0..n_people.max(1))
        .map(|i| entity(&format!("person{i}")))
        .collect();

    // Places.
    for (i, place) in places.iter().enumerate() {
        g.insert(Triple::new(
            place.clone(),
            rdf::type_(),
            Term::Iri(schema("Place")),
        ));
        let name = PLACE_NAMES[i % PLACE_NAMES.len()];
        g.insert(Triple::new(
            place.clone(),
            schema("name"),
            Term::Literal(Literal::lang_string(format!("{name} {i}"), LANGS[i % 3])),
        ));
        g.insert(Triple::new(
            place.clone(),
            schema("postalCode"),
            Term::Literal(Literal::string(format!("{:04}", 6000 + (i % 700)))),
        ));
        g.insert(Triple::new(
            place.clone(),
            schema("latitude"),
            Term::Literal(Literal::typed(
                format!("{:.4}", 46.4 + rng.gen_range(0.0..1.0)),
                xsd::decimal(),
            )),
        ));
        g.insert(Triple::new(
            place.clone(),
            schema("longitude"),
            Term::Literal(Literal::typed(
                format!("{:.4}", 11.0 + rng.gen_range(0.0..1.5)),
                xsd::decimal(),
            )),
        ));
    }

    // People.
    for (i, person) in people.iter().enumerate() {
        g.insert(Triple::new(
            person.clone(),
            rdf::type_(),
            Term::Iri(schema("Person")),
        ));
        g.insert(Triple::new(
            person.clone(),
            schema("name"),
            Term::Literal(Literal::string(format!("Person {i}"))),
        ));
        if i % 4 != 0 {
            g.insert(Triple::new(
                person.clone(),
                schema("email"),
                Term::Literal(Literal::string(format!("person{i}@tkg.example.org"))),
            ));
        }
    }

    // Lodging businesses.
    for (i, lodging) in lodgings.iter().enumerate() {
        let class = if i % 3 == 0 {
            "Hotel"
        } else if i % 3 == 1 {
            "Pension"
        } else {
            "Campground"
        };
        g.insert(Triple::new(
            lodging.clone(),
            rdf::type_(),
            Term::Iri(schema(class)),
        ));
        // ~3% of lodgings are missing their name (violations).
        if i % 33 != 7 {
            for lang in LANGS.iter().take(1 + i % 3) {
                g.insert(Triple::new(
                    lodging.clone(),
                    schema("name"),
                    Term::Literal(Literal::lang_string(format!("Haus {i}"), lang)),
                ));
            }
        }
        if let Some(place) = places.choose(&mut rng) {
            g.insert(Triple::new(
                lodging.clone(),
                schema("location"),
                place.clone(),
            ));
        }
        g.insert(Triple::new(
            lodging.clone(),
            schema("telephone"),
            Term::Literal(Literal::string(format!(
                "+43 512 {:06}",
                i * 37 % 1_000_000
            ))),
        ));
        g.insert(Triple::new(
            lodging.clone(),
            schema("url"),
            Term::iri(format!("https://lodging{i}.example.org/")),
        ));
        let stars = 1 + (i % 5) as i64;
        g.insert(Triple::new(
            lodging.clone(),
            schema("starRating"),
            Term::Literal(Literal::integer(stars)),
        ));
    }

    // Events.
    for i in 0..n_events {
        let event = entity(&format!("event{i}"));
        let class = match i % 3 {
            0 => "MusicEvent",
            1 => "SportsEvent",
            _ => "Event",
        };
        g.insert(Triple::new(
            event.clone(),
            rdf::type_(),
            Term::Iri(schema(class)),
        ));
        let cat = EVENT_CATEGORIES[i % EVENT_CATEGORIES.len()];
        g.insert(Triple::new(
            event.clone(),
            schema("name"),
            Term::Literal(Literal::lang_string(
                format!("{cat} {i}"),
                LANGS[i % LANGS.len()],
            )),
        ));
        let start_day = 1 + (i % 27);
        let month = 1 + (i % 12);
        let start = format!("2022-{month:02}-{start_day:02}T18:00:00Z");
        // ~2% of events have an end before the start (violations for
        // lessThan shapes).
        let end_day = if i % 50 == 13 {
            start_day.saturating_sub(1).max(1)
        } else {
            start_day + 1
        };
        let end = format!("2022-{month:02}-{end_day:02}T23:00:00Z");
        g.insert(Triple::new(
            event.clone(),
            schema("startDate"),
            Term::Literal(Literal::typed(start, xsd::date_time())),
        ));
        g.insert(Triple::new(
            event.clone(),
            schema("endDate"),
            Term::Literal(Literal::typed(end, xsd::date_time())),
        ));
        if let Some(place) = places.choose(&mut rng) {
            g.insert(Triple::new(
                event.clone(),
                schema("location"),
                place.clone(),
            ));
        }
        if let Some(person) = people.choose(&mut rng) {
            g.insert(Triple::new(
                event.clone(),
                schema("organizer"),
                person.clone(),
            ));
        }
    }

    // Offers.
    for i in 0..n_offers {
        let offer = entity(&format!("offer{i}"));
        g.insert(Triple::new(
            offer.clone(),
            rdf::type_(),
            Term::Iri(schema("Offer")),
        ));
        if let Some(lodging) = lodgings.choose(&mut rng) {
            g.insert(Triple::new(
                lodging.clone(),
                schema("makesOffer"),
                offer.clone(),
            ));
        }
        let price = 40.0 + (i % 300) as f64 + 0.5;
        g.insert(Triple::new(
            offer.clone(),
            schema("price"),
            Term::Literal(Literal::typed(format!("{price:.2}"), xsd::decimal())),
        ));
        g.insert(Triple::new(
            offer.clone(),
            schema("priceCurrency"),
            Term::Literal(Literal::string(if i % 20 == 3 {
                "US-Dollar"
            } else {
                "EUR"
            })),
        ));
        g.insert(Triple::new(
            offer.clone(),
            schema("validFrom"),
            Term::Literal(Literal::typed("2022-01-01", xsd::date())),
        ));
        g.insert(Triple::new(
            offer.clone(),
            schema("validThrough"),
            Term::Literal(Literal::typed("2022-12-31", xsd::date())),
        ));
    }

    // Reviews.
    for i in 0..n_reviews {
        let review = entity(&format!("review{i}"));
        g.insert(Triple::new(
            review.clone(),
            rdf::type_(),
            Term::Iri(schema("Review")),
        ));
        // ~4% of ratings are out of the 1..5 range (violations).
        let rating = if i % 25 == 11 { 9 } else { 1 + (i % 5) as i64 };
        g.insert(Triple::new(
            review.clone(),
            schema("ratingValue"),
            Term::Literal(Literal::integer(rating)),
        ));
        if let Some(person) = people.choose(&mut rng) {
            g.insert(Triple::new(
                review.clone(),
                schema("author"),
                person.clone(),
            ));
        }
        if let Some(lodging) = lodgings.choose(&mut rng) {
            g.insert(Triple::new(
                review.clone(),
                schema("itemReviewed"),
                lodging.clone(),
            ));
        }
        g.insert(Triple::new(
            review.clone(),
            schema("reviewBody"),
            Term::Literal(Literal::lang_string(
                format!("Sehr schön {i}"),
                LANGS[i % LANGS.len()],
            )),
        ));
    }

    g
}

/// The paper's induced-subgraph sampling protocol: sample `k` individuals
/// uniformly at random and retrieve all triples involving them as subjects
/// or objects.
pub fn sample_induced(graph: &Graph, k: usize, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut individuals: Vec<Term> = graph
        .nodes()
        .into_iter()
        .filter(|t| matches!(t, Term::Iri(iri) if iri.as_str().starts_with(TKG_NS)))
        .cloned()
        .collect();
    individuals.sort();
    individuals.shuffle(&mut rng);
    individuals.truncate(k);
    let chosen: std::collections::HashSet<Term> = individuals.into_iter().collect();
    let mut out = Graph::new();
    for t in graph.iter() {
        if chosen.contains(&t.subject) || chosen.contains(&t.object) {
            out.insert(t);
        }
    }
    // Keep the class hierarchy: targets rely on subClassOf closure.
    for t in graph.triples_matching(None, Some(&rdfs::sub_class_of()), None) {
        out.insert(t);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let c = TyroleanConfig::new(500, 42);
        let g1 = generate(&c);
        let g2 = generate(&c);
        assert_eq!(g1, g2);
    }

    #[test]
    fn different_seeds_differ() {
        let g1 = generate(&TyroleanConfig::new(500, 1));
        let g2 = generate(&TyroleanConfig::new(500, 2));
        assert_ne!(g1, g2);
    }

    #[test]
    fn triple_count_scales_with_individuals() {
        let small = generate(&TyroleanConfig::new(200, 7)).len();
        let large = generate(&TyroleanConfig::new(2000, 7)).len();
        assert!(large > 8 * small);
        // Roughly 5–12 triples per individual.
        assert!(small > 200 * 4 && small < 200 * 13, "got {small}");
    }

    #[test]
    fn contains_expected_entity_kinds() {
        let g = generate(&TyroleanConfig::new(400, 3));
        for class in ["Event", "Place", "Offer", "Review", "Person"] {
            let found = !g
                .triples_matching(None, Some(&rdf::type_()), Some(&Term::Iri(schema(class))))
                .is_empty()
                || class == "Event"; // events may all be subclasses
            assert!(found, "no {class} instances");
        }
        // Subclass hierarchy present.
        assert!(!g
            .triples_matching(None, Some(&rdfs::sub_class_of()), None)
            .is_empty());
    }

    #[test]
    fn induced_sampling_keeps_incident_triples() {
        let g = generate(&TyroleanConfig::new(400, 3));
        let s = sample_induced(&g, 50, 9);
        assert!(s.len() < g.len());
        assert!(s.is_subgraph_of(&g));
        // Growing the sample grows the subgraph.
        let s2 = sample_induced(&g, 200, 9);
        assert!(s2.len() > s.len());
    }

    #[test]
    fn sampling_is_deterministic() {
        let g = generate(&TyroleanConfig::new(300, 3));
        assert_eq!(sample_induced(&g, 50, 9), sample_induced(&g, 50, 9));
    }
}
