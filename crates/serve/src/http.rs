//! Minimal HTTP/1.1 request parsing and response writing over a
//! [`TcpStream`], with the size and time limits that make the server safe
//! against hostile clients: a cap on total head bytes, a cap on body
//! bytes, a per-read socket timeout, and wall-clock deadlines for
//! receiving the complete head and the complete body (the slow-loris
//! guard — a client dribbling one byte per read timeout still cannot hold
//! a connection open past the head deadline).
//!
//! Only the subset of HTTP/1.1 the server needs is implemented: `GET` and
//! `POST`, `Content-Length` bodies (no chunked transfer encoding), and
//! `Connection: close`/`keep-alive`. Everything outside that subset is a
//! [`HttpError::Malformed`], which the connection loop maps to 400.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Size and time limits applied while reading one request.
#[derive(Debug, Clone, Copy)]
pub struct ReadLimits {
    /// Maximum bytes of request line + headers.
    pub max_head_bytes: usize,
    /// Maximum bytes of body (`Content-Length` above this is rejected
    /// before reading a single body byte).
    pub max_body_bytes: usize,
    /// Per-`read(2)` socket timeout.
    pub read_timeout: Duration,
    /// Wall-clock deadline for receiving the complete head.
    pub head_deadline: Duration,
    /// Wall-clock deadline for receiving the complete body.
    pub body_deadline: Duration,
}

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    pub method: String,
    /// Path component of the request target (query string stripped).
    pub path: String,
    /// Raw query string, if any (without the `?`).
    pub query: Option<String>,
    /// Header `(name, value)` pairs; names are lower-cased at parse time.
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a header (names are stored lower-case).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to keep the connection open.
    pub fn keep_alive(&self) -> bool {
        match self.header("connection") {
            Some(v) => !v.eq_ignore_ascii_case("close"),
            None => true, // HTTP/1.1 default
        }
    }
}

/// Failures while reading a request. The connection loop decides which of
/// these earn a response (400) and which just close the socket.
#[derive(Debug)]
pub enum HttpError {
    /// Clean EOF before any request bytes — the keep-alive end of stream.
    Closed,
    /// The bytes received cannot be a supported HTTP/1.1 request.
    Malformed(String),
    /// Head or declared body size exceeded a [`ReadLimits`] cap.
    TooLarge(String),
    /// The head or body deadline expired (slow or stalled client).
    SlowClient,
    /// Transport error (reset, broken pipe, …).
    Io(std::io::Error),
}

/// Reads one request from `stream`. `carry` holds bytes read past the end
/// of the previous request on this connection (kept-alive clients may send
/// the next head back-to-back); leftover bytes are stored back into it.
pub fn read_request(
    stream: &mut TcpStream,
    carry: &mut Vec<u8>,
    limits: &ReadLimits,
) -> Result<Request, HttpError> {
    let started = Instant::now();
    let mut buf = std::mem::take(carry);
    let mut chunk = [0u8; 4096];

    // Phase 1: accumulate until the blank line ending the head.
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > limits.max_head_bytes {
            return Err(HttpError::TooLarge(format!(
                "request head exceeds {} bytes",
                limits.max_head_bytes
            )));
        }
        let n = timed_read(stream, &mut chunk, started, limits.head_deadline, limits)?;
        if n == 0 {
            return if buf.is_empty() {
                Err(HttpError::Closed)
            } else {
                Err(HttpError::Malformed("connection closed mid-head".into()))
            };
        }
        buf.extend_from_slice(&chunk[..n]);
    };

    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| HttpError::Malformed("head is not UTF-8".into()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or_else(|| HttpError::Malformed("empty request line".into()))?
        .to_string();
    let target = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("request line missing target".into()))?;
    let version = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("request line missing version".into()))?;
    if parts.next().is_some() || !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed(format!(
            "unsupported request line '{request_line}'"
        )));
    }
    if !matches!(method.as_str(), "GET" | "POST" | "HEAD") {
        return Err(HttpError::Malformed(format!(
            "unsupported method '{method}'"
        )));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), Some(q.to_string())),
        None => (target.to_string(), None),
    };

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::Malformed(format!("header line without colon: '{line}'")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    // Phase 2: the body, if declared.
    let content_length = match headers.iter().find(|(n, _)| n == "content-length") {
        Some((_, v)) => v
            .parse::<usize>()
            .map_err(|_| HttpError::Malformed(format!("bad content-length '{v}'")))?,
        None => 0,
    };
    if headers.iter().any(|(n, _)| n == "transfer-encoding") {
        return Err(HttpError::Malformed(
            "chunked transfer encoding is not supported".into(),
        ));
    }
    if content_length > limits.max_body_bytes {
        return Err(HttpError::TooLarge(format!(
            "declared body of {content_length} bytes exceeds the {}-byte limit",
            limits.max_body_bytes
        )));
    }

    let body_start = head_end + 4;
    let mut body: Vec<u8> = buf[body_start.min(buf.len())..].to_vec();
    let body_started = Instant::now();
    while body.len() < content_length {
        let n = timed_read(
            stream,
            &mut chunk,
            body_started,
            limits.body_deadline,
            limits,
        )?;
        if n == 0 {
            return Err(HttpError::Malformed("connection closed mid-body".into()));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    // Bytes past the declared body belong to the next request.
    *carry = body.split_off(content_length);

    Ok(Request {
        method,
        path,
        query,
        headers,
        body,
    })
}

/// Locates the `\r\n\r\n` terminating the head.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// One `read(2)` with the per-read timeout clamped to the remaining phase
/// deadline. Timeout kinds surface as [`HttpError::SlowClient`].
fn timed_read(
    stream: &mut TcpStream,
    chunk: &mut [u8],
    phase_started: Instant,
    phase_deadline: Duration,
    limits: &ReadLimits,
) -> Result<usize, HttpError> {
    let elapsed = phase_started.elapsed();
    if elapsed >= phase_deadline {
        return Err(HttpError::SlowClient);
    }
    let remaining = phase_deadline - elapsed;
    let _ = stream.set_read_timeout(Some(limits.read_timeout.min(remaining).max(
        // A zero timeout means "block forever" to the OS; floor at 1ms.
        Duration::from_millis(1),
    )));
    match stream.read(chunk) {
        Ok(n) => Ok(n),
        Err(e)
            if matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ) =>
        {
            Err(HttpError::SlowClient)
        }
        Err(e) => Err(HttpError::Io(e)),
    }
}

/// One response, ready to serialize.
#[derive(Debug)]
pub struct Response {
    pub status: u16,
    pub content_type: &'static str,
    pub body: Vec<u8>,
    /// Extra headers beyond the standard set.
    pub extra_headers: Vec<(&'static str, String)>,
    /// Force `Connection: close` after this response.
    pub close: bool,
}

impl Response {
    /// A response with a body and the given content type.
    pub fn new(status: u16, content_type: &'static str, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status,
            content_type,
            body: body.into(),
            extra_headers: Vec::new(),
            close: false,
        }
    }

    /// A JSON response.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response::new(status, "application/json", body)
    }

    /// Adds a header (builder style).
    pub fn with_header(mut self, name: &'static str, value: impl Into<String>) -> Response {
        self.extra_headers.push((name, value.into()));
        self
    }

    /// Marks the connection for close after this response.
    pub fn closing(mut self) -> Response {
        self.close = true;
        self
    }
}

/// Standard reason phrases for the status codes the server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        429 => "Too Many Requests",
        499 => "Client Closed Request",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Serializes and writes a response. The caller is responsible for having
/// set the socket write timeout; a failed write is returned so the
/// connection loop can drop the client.
pub fn write_response(
    stream: &mut TcpStream,
    resp: &Response,
    keep_alive: bool,
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: {}\r\n",
        resp.status,
        reason(resp.status),
        resp.content_type,
        resp.body.len(),
        if keep_alive && !resp.close {
            "keep-alive"
        } else {
            "close"
        },
    );
    for (name, value) in &resp.extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(&resp.body)?;
    stream.flush()
}
