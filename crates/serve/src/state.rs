//! Shared server state: the epoch-swapped snapshot cell and the atomic
//! statistics counters.
//!
//! ## The epoch-swap protocol
//!
//! The resident dataset lives in an [`Arc<Snapshot>`] behind an `RwLock`
//! that is only ever held for the nanoseconds of an `Arc` clone (readers)
//! or pointer swap (reload). A request clones the `Arc` once on entry and
//! works against that immutable snapshot for its whole lifetime, so:
//!
//! - **readers never block**: the critical section is a refcount bump;
//! - **reloads never wait for readers**: the swap replaces the pointer and
//!   returns; in-flight requests keep the old epoch alive through their
//!   clone and it drops when the last of them finishes (the drain);
//! - **no torn reads are possible**: a snapshot is frozen before it is
//!   published, and the `Arc` it travels in is immutable.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

use shapefrag_analyze::ContainmentMatrix;
use shapefrag_core::IncrementalValidator;
use shapefrag_rdf::{DeltaGraph, FrozenGraph, Term};
use shapefrag_shacl::{ContainmentIndex, Schema};

/// One immutable published epoch: a schema and a frozen data graph,
/// optionally overlaid with the continuous-ingest delta.
#[derive(Debug)]
pub struct Snapshot {
    /// Monotonic epoch number, starting at 1.
    pub epoch: u64,
    pub schema: Arc<Schema>,
    pub frozen: Arc<FrozenGraph>,
    /// Delta overlay published by `POST /update`; readers evaluate the
    /// merged view. `None` after boot, `POST /reload`, or
    /// `POST /compact`.
    pub delta: Option<Arc<DeltaGraph>>,
    /// Containment matrix of the resident schema (computed once per
    /// schema; epochs that keep the schema share the `Arc`). Drives the
    /// fragment cache's representative lookup.
    pub matrix: Arc<ContainmentMatrix>,
    /// The matrix lowered to validator adjacency, ready to attach to a
    /// [`shapefrag_shacl::ConformanceMemo`].
    pub containment: Arc<ContainmentIndex>,
    /// Triples in the published view (base − removed + added).
    pub triples: usize,
    /// Overlay additions (0 without a delta).
    pub delta_added: usize,
    /// Overlay tombstones (0 without a delta).
    pub delta_removed: usize,
}

/// The continuous-ingest state behind `POST /update` and `POST /compact`:
/// the incrementally-maintained validator plus the epoch it last
/// published. An epoch moved by anything else (a `POST /reload`) makes
/// the updater stale; the handlers detect the mismatch and reseed from
/// the current snapshot.
pub struct Updater {
    pub inc: IncrementalValidator,
    pub epoch: u64,
}

/// The per-epoch fragment cache behind `POST /fragment`: finished
/// N-Triples bodies keyed by the *representative* shape name — the first
/// definition (in schema order) whose `(shape, target)` is syntactically
/// identical to the requested one among its matrix-equivalence class. A
/// request for a duplicated definition is answered from its twin's bytes
/// without touching the graph. Cleared on every epoch move (any edit can
/// change fragment contents).
#[derive(Debug, Default)]
pub struct FragmentCache {
    /// Epoch the entries were computed against.
    pub epoch: u64,
    /// Representative shape name → finished response body.
    pub entries: BTreeMap<Term, Arc<String>>,
}

impl FragmentCache {
    /// Drops stale entries if the cache was built for another epoch.
    pub fn roll_to(&mut self, epoch: u64) {
        if self.epoch != epoch {
            self.epoch = epoch;
            self.entries.clear();
        }
    }
}

/// The swap cell. See the module docs for the protocol.
#[derive(Debug)]
pub struct SnapshotCell {
    current: RwLock<Arc<Snapshot>>,
    /// Serializes reload *builders* (parse + freeze happen outside the
    /// cell lock; this mutex only prevents two reloads interleaving their
    /// epoch numbering).
    reload: Mutex<()>,
}

impl SnapshotCell {
    pub fn new(first: Snapshot) -> SnapshotCell {
        SnapshotCell {
            current: RwLock::new(Arc::new(first)),
            reload: Mutex::new(()),
        }
    }

    /// Clones the current snapshot (the only reader entry point).
    pub fn load(&self) -> Arc<Snapshot> {
        Arc::clone(&self.current.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Builds and publishes the next epoch. `build` receives the epoch
    /// number to stamp; it runs outside the read lock so readers are never
    /// blocked by parsing or freezing.
    pub fn swap<E>(
        &self,
        build: impl FnOnce(u64) -> Result<Snapshot, E>,
    ) -> Result<Arc<Snapshot>, E> {
        let _serial = self.reload.lock().unwrap_or_else(|e| e.into_inner());
        let next_epoch = self.load().epoch + 1;
        let built = Arc::new(build(next_epoch)?);
        let mut slot = self.current.write().unwrap_or_else(|e| e.into_inner());
        *slot = Arc::clone(&built);
        Ok(built)
    }

    /// How many clones of the current snapshot are alive (1 = only the
    /// cell itself; anything above that is in-flight readers).
    pub fn reader_count(&self) -> usize {
        Arc::strong_count(&self.load()).saturating_sub(2)
    }
}

/// Monotonic server counters, all relaxed atomics (observability, not
/// synchronization).
#[derive(Debug, Default)]
pub struct Stats {
    /// Requests fully parsed off a socket.
    pub received: AtomicU64,
    /// Requests admitted through the gate.
    pub admitted: AtomicU64,
    /// Requests shed by admission control (503).
    pub shed: AtomicU64,
    /// Handler panics caught and converted to 500.
    pub panics: AtomicU64,
    /// Successful reloads (epoch swaps).
    pub reloads: AtomicU64,
    /// Successful `POST /update` edit batches (epoch swaps).
    pub updates: AtomicU64,
    /// Successful `POST /compact` re-freezes (epoch swaps).
    pub compactions: AtomicU64,
    /// Cumulative microseconds requests spent waiting for a gate slot
    /// (including requests that were ultimately shed). Reported
    /// separately from service time so queue pressure is visible even
    /// when handlers are fast.
    pub queue_wait_us: AtomicU64,
    /// Cumulative microseconds admitted requests spent executing their
    /// handler (service time proper, gate wait excluded).
    pub service_us: AtomicU64,
    /// Containment reuse events: fragment bodies served from an
    /// equivalent definition's cache entry, plus conformance bits derived
    /// through subsumption edges during `/validate`.
    pub containment_hits: AtomicU64,
    /// Containment lookups that found nothing reusable and fell through
    /// to real work.
    pub containment_misses: AtomicU64,
    /// Definitions `/validate` settled without evaluating their shape
    /// body (fully derived from an equivalent definition).
    pub shapes_skipped: AtomicU64,
    /// Connections accepted.
    pub connections: AtomicU64,
    /// Connections refused because the connection cap was reached.
    pub conn_refused: AtomicU64,
    /// Responses by status class/code we emit.
    pub s2xx: AtomicU64,
    pub s400: AtomicU64,
    pub s404: AtomicU64,
    pub s405: AtomicU64,
    pub s429: AtomicU64,
    pub s499: AtomicU64,
    pub s500: AtomicU64,
    pub s503: AtomicU64,
    pub s504: AtomicU64,
}

impl Stats {
    /// Bumps the counter for an emitted status code.
    pub fn record_status(&self, status: u16) {
        let counter = match status {
            200..=299 => &self.s2xx,
            400 => &self.s400,
            404 => &self.s404,
            405 => &self.s405,
            429 => &self.s429,
            499 => &self.s499,
            503 => &self.s503,
            504 => &self.s504,
            _ => &self.s500,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Renders the counters plus live gauges (read off the gate) as a
    /// JSON object body.
    #[allow(clippy::too_many_arguments)]
    pub fn to_json(
        &self,
        epoch: u64,
        triples: usize,
        shapes: usize,
        delta_added: usize,
        delta_removed: usize,
        gate: &crate::gate::Gate,
        started: Instant,
    ) -> String {
        let g = |a: &AtomicU64| a.load(Ordering::Relaxed);
        format!(
            concat!(
                "{{\"epoch\":{},\"uptime_ms\":{},\"triples\":{},\"shapes\":{},",
                "\"delta_added\":{},\"delta_removed\":{},",
                "\"inflight\":{},\"queued\":{},\"concurrency_cap\":{},",
                "\"queue_wait_us\":{},\"service_us\":{},",
                "\"received\":{},\"admitted\":{},\"shed\":{},\"panics\":{},",
                "\"reloads\":{},\"updates\":{},\"compactions\":{},",
                "\"containment_hits\":{},\"containment_misses\":{},",
                "\"shapes_skipped\":{},",
                "\"connections\":{},\"connections_refused\":{},",
                "\"status\":{{\"2xx\":{},\"400\":{},\"404\":{},\"405\":{},",
                "\"429\":{},\"499\":{},\"500\":{},\"503\":{},\"504\":{}}}}}"
            ),
            epoch,
            started.elapsed().as_millis(),
            triples,
            shapes,
            delta_added,
            delta_removed,
            gate.inflight(),
            gate.waiting(),
            gate.cap(),
            g(&self.queue_wait_us),
            g(&self.service_us),
            g(&self.received),
            g(&self.admitted),
            g(&self.shed),
            g(&self.panics),
            g(&self.reloads),
            g(&self.updates),
            g(&self.compactions),
            g(&self.containment_hits),
            g(&self.containment_misses),
            g(&self.shapes_skipped),
            g(&self.connections),
            g(&self.conn_refused),
            g(&self.s2xx),
            g(&self.s400),
            g(&self.s404),
            g(&self.s405),
            g(&self.s429),
            g(&self.s499),
            g(&self.s500),
            g(&self.s503),
            g(&self.s504),
        )
    }
}

/// Escapes a string for embedding in a JSON document.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use shapefrag_rdf::Graph;

    fn snap(epoch: u64) -> Snapshot {
        let g = Graph::new();
        let schema = Arc::new(Schema::empty());
        let matrix = Arc::new(ContainmentMatrix::of_schema(&schema));
        let containment = Arc::new(matrix.to_index(&schema));
        Snapshot {
            epoch,
            schema,
            frozen: Arc::new(g.freeze()),
            delta: None,
            matrix,
            containment,
            triples: 0,
            delta_added: 0,
            delta_removed: 0,
        }
    }

    #[test]
    fn swap_bumps_epoch_and_old_readers_keep_their_snapshot() {
        let cell = SnapshotCell::new(snap(1));
        let old = cell.load();
        assert_eq!(old.epoch, 1);
        let published = cell
            .swap(|e| Ok::<_, ()>(snap(e)))
            .expect("swap cannot fail here");
        assert_eq!(published.epoch, 2);
        // The old reader still sees its epoch; new loads see the new one.
        assert_eq!(old.epoch, 1);
        assert_eq!(cell.load().epoch, 2);
    }

    #[test]
    fn failed_swap_leaves_current_epoch_in_place() {
        let cell = SnapshotCell::new(snap(1));
        let r: Result<_, String> = cell.swap(|_| Err("parse failed".to_string()));
        assert!(r.is_err());
        assert_eq!(cell.load().epoch, 1);
        // And the next successful swap still numbers correctly.
        cell.swap(|e| Ok::<_, ()>(snap(e))).unwrap();
        assert_eq!(cell.load().epoch, 2);
    }

    #[test]
    fn json_escape_handles_controls() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
