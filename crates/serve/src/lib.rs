//! # shapefrag-serve
//!
//! `shapefrag serve` — an overload-safe, dependency-free HTTP/1.1 server
//! exposing the full shape-fragments stack as a long-lived service:
//!
//! | endpoint          | semantics |
//! |-------------------|-----------|
//! | `POST /validate`  | validate the resident snapshot (empty body) or a posted data graph against the resident schema |
//! | `POST /fragment`  | shape fragment of the resident snapshot as N-Triples (body optionally lists shape IRIs) |
//! | `GET  /analyze`   | static schema diagnostics as JSON |
//! | `POST /sparql`    | SELECT query over the resident snapshot |
//! | `POST /reload`    | epoch-swap a new snapshot (re-read source, or body = new data graph) |
//! | `POST /update`    | apply a signed N-Triples edit script to a delta overlay and epoch-swap the merged view; answers with the incrementally-maintained report |
//! | `POST /compact`   | re-freeze base + overlay into a fresh snapshot (epoch swap, overlay reset) |
//! | `GET  /healthz`   | liveness + current epoch (never gated) |
//! | `GET  /stats`     | counters and gauges, including delta sizes and the queue-wait / service time split (never gated) |
//!
//! Robustness is the design center (DESIGN.md §13):
//!
//! - **Admission control**: a global concurrency cap with a bounded,
//!   time-limited wait queue ([`gate::Gate`]). Load beyond cap + queue is
//!   shed deterministically with 503 + `Retry-After`.
//! - **Per-request governance**: `x-deadline-ms`, `x-budget-steps`, and
//!   `x-budget-memory` headers become a [`shapefrag_govern::Budget`];
//!   engine faults map onto HTTP status codes (429/504/400/499).
//! - **Snapshot epochs**: requests work against an `Arc<Snapshot>` clone;
//!   `POST /reload` builds and freezes the next epoch off-lock and swaps a
//!   pointer, so readers never block and old epochs drain and drop.
//! - **Hostile-client limits**: head/body size caps, per-read socket
//!   timeouts, and phase deadlines (slow-loris guard), plus a connection
//!   cap ahead of the request gate.
//! - **Panic isolation**: a handler panic is caught per request, answered
//!   with 500, counted, and the server keeps serving.
#![forbid(unsafe_code)]

pub mod client;
pub mod gate;
pub mod handlers;
pub mod http;
pub mod state;

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use shapefrag_govern::CancelToken;
use shapefrag_rdf::{ntriples, turtle, Graph};
use shapefrag_shacl::parser::parse_shapes_turtle_with_spans;
use shapefrag_shacl::Schema;

use gate::{Admission, Gate};
use http::{HttpError, ReadLimits, Request, Response};
use state::{Snapshot, SnapshotCell, Stats};

/// Server tunables. The defaults are sized for tests and small
/// deployments; the CLI exposes the load-bearing ones as flags.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Global concurrency cap (admitted requests executing at once).
    pub max_inflight: usize,
    /// Bounded wait-queue depth beyond the cap.
    pub queue_depth: usize,
    /// Longest a queued request waits for a slot before being shed.
    pub queue_wait: Duration,
    /// Hard cap on simultaneously open connections (ahead of the gate).
    pub max_connections: usize,
    /// Maximum bytes of request line + headers.
    pub max_head_bytes: usize,
    /// Maximum bytes of request body.
    pub max_body_bytes: usize,
    /// Per-`read(2)` socket timeout.
    pub read_timeout: Duration,
    /// Socket write timeout for responses.
    pub write_timeout: Duration,
    /// Wall-clock deadline for receiving a complete request head.
    pub head_deadline: Duration,
    /// Wall-clock deadline for receiving a complete request body.
    pub body_deadline: Duration,
    /// Ceiling on (and default for) the per-request engine deadline.
    pub max_request_deadline: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            max_inflight: 8,
            queue_depth: 16,
            queue_wait: Duration::from_millis(250),
            max_connections: 256,
            max_head_bytes: 16 * 1024,
            max_body_bytes: 4 * 1024 * 1024,
            read_timeout: Duration::from_millis(500),
            write_timeout: Duration::from_secs(5),
            head_deadline: Duration::from_secs(2),
            body_deadline: Duration::from_secs(5),
            max_request_deadline: Duration::from_secs(10),
        }
    }
}

impl ServeConfig {
    fn read_limits(&self) -> ReadLimits {
        ReadLimits {
            max_head_bytes: self.max_head_bytes,
            max_body_bytes: self.max_body_bytes,
            read_timeout: self.read_timeout,
            head_deadline: self.head_deadline,
            body_deadline: self.body_deadline,
        }
    }
}

/// Where snapshots come from: files re-read on `POST /reload`, or inline
/// text (tests, embedded use).
#[derive(Debug, Clone)]
pub enum SnapshotSource {
    Files { shapes: PathBuf, data: PathBuf },
    Inline { shapes: String, data: String },
}

/// Parses the source into a deny-gated schema and a data graph.
pub(crate) fn load_source(source: &SnapshotSource) -> Result<(Arc<Schema>, Graph), String> {
    let (shapes_text, data_text, data_is_nt) = match source {
        SnapshotSource::Files { shapes, data } => {
            let shapes_text = std::fs::read_to_string(shapes)
                .map_err(|e| format!("cannot read {}: {e}", shapes.display()))?;
            let data_text = std::fs::read_to_string(data)
                .map_err(|e| format!("cannot read {}: {e}", data.display()))?;
            let is_nt = data
                .extension()
                .is_some_and(|x| x == "nt" || x == "ntriples");
            (shapes_text, data_text, is_nt)
        }
        SnapshotSource::Inline { shapes, data } => (shapes.clone(), data.clone(), false),
    };
    let (schema, _spans) =
        parse_shapes_turtle_with_spans(&shapes_text).map_err(|e| format!("shapes: {e}"))?;
    handlers::check_schema(&schema)?;
    let graph = if data_is_nt {
        ntriples::parse(&data_text).map_err(|e| format!("data: {e}"))?
    } else {
        turtle::parse(&data_text).map_err(|e| format!("data: {e}"))?
    };
    Ok((Arc::new(schema), graph))
}

/// Freezes a graph into a published-ready snapshot. The containment
/// matrix is computed here, once per schema load — every request against
/// the epoch shares it.
pub(crate) fn build_snapshot(epoch: u64, schema: Arc<Schema>, graph: Graph) -> Snapshot {
    let triples = graph.len();
    let matrix = Arc::new(shapefrag_analyze::ContainmentMatrix::of_schema(&schema));
    let containment = Arc::new(matrix.to_index(&schema));
    Snapshot {
        epoch,
        schema,
        frozen: Arc::new(graph.freeze()),
        delta: None,
        matrix,
        containment,
        triples,
        delta_added: 0,
        delta_removed: 0,
    }
}

/// Everything the connection threads share.
pub struct ServerState {
    pub cfg: ServeConfig,
    pub source: SnapshotSource,
    pub snapshots: SnapshotCell,
    pub gate: Gate,
    pub stats: Stats,
    pub started: Instant,
    /// Set on shutdown: in-flight governed work faults with `Cancelled`
    /// (→ 499) instead of running to completion against a dying server.
    pub cancel: CancelToken,
    /// Continuous-ingest state: seeded lazily by the first `POST /update`
    /// (a full validation), maintained incrementally afterwards, and
    /// dropped on `POST /reload`. The mutex serializes writers; readers
    /// never touch it (they work off the published snapshot).
    pub updater: Mutex<Option<state::Updater>>,
    /// Per-epoch `POST /fragment` response cache keyed by representative
    /// shape name; rolled (cleared) whenever the epoch moves.
    pub fragments: Mutex<state::FragmentCache>,
    shutdown: AtomicBool,
    open_conns: AtomicUsize,
}

impl ServerState {
    /// Whether shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
    }

    /// Currently open client connections.
    pub fn open_connections(&self) -> usize {
        self.open_conns.load(Ordering::Relaxed)
    }
}

/// A running server: bound address, shared state, and the accept thread.
pub struct Server {
    pub addr: SocketAddr,
    state: Arc<ServerState>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Boots a server: loads + freezes the first epoch (deny-gated), binds
    /// the listener, and starts the accept loop.
    pub fn start(cfg: ServeConfig, source: SnapshotSource) -> Result<Server, String> {
        let (schema, graph) = load_source(&source)?;
        let first = build_snapshot(1, schema, graph);
        let listener =
            TcpListener::bind(&cfg.addr).map_err(|e| format!("cannot bind {}: {e}", cfg.addr))?;
        let addr = listener
            .local_addr()
            .map_err(|e| format!("local_addr: {e}"))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| format!("set_nonblocking: {e}"))?;
        let state = Arc::new(ServerState {
            gate: Gate::new(cfg.max_inflight, cfg.queue_depth, cfg.queue_wait),
            cfg,
            source,
            snapshots: SnapshotCell::new(first),
            stats: Stats::default(),
            started: Instant::now(),
            cancel: CancelToken::new(),
            updater: Mutex::new(None),
            fragments: Mutex::new(state::FragmentCache::default()),
            shutdown: AtomicBool::new(false),
            open_conns: AtomicUsize::new(0),
        });
        let accept_state = Arc::clone(&state);
        let accept_thread = std::thread::Builder::new()
            .name("serve-accept".to_string())
            .spawn(move || accept_loop(listener, accept_state))
            .map_err(|e| format!("cannot spawn accept thread: {e}"))?;
        Ok(Server {
            addr,
            state,
            accept_thread: Some(accept_thread),
        })
    }

    /// Shared state (stats, gate, snapshots) for tests and the CLI.
    pub fn state(&self) -> &Arc<ServerState> {
        &self.state
    }

    /// Requests shutdown: stops accepting, cancels in-flight governed
    /// work (→ 499), and waits up to `drain` for admitted requests to
    /// finish. Returns the number of requests still in flight after the
    /// drain window (0 on a clean stop).
    pub fn shutdown(mut self, drain: Duration) -> usize {
        self.state.shutdown.store(true, Ordering::Relaxed);
        self.state.cancel.cancel();
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
        let deadline = Instant::now() + drain;
        while self.state.gate.inflight() > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        self.state.gate.inflight()
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.state.shutdown.store(true, Ordering::Relaxed);
        self.state.cancel.cancel();
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
    }
}

fn accept_loop(listener: TcpListener, state: Arc<ServerState>) {
    loop {
        if state.is_shutting_down() {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                state.stats.connections.fetch_add(1, Ordering::Relaxed);
                if state.open_conns.fetch_add(1, Ordering::Relaxed) >= state.cfg.max_connections {
                    // Over the connection cap: one quick 503 and close.
                    state.open_conns.fetch_sub(1, Ordering::Relaxed);
                    state.stats.conn_refused.fetch_add(1, Ordering::Relaxed);
                    refuse_connection(stream, &state);
                    continue;
                }
                let conn_state = Arc::clone(&state);
                let spawned = std::thread::Builder::new()
                    .name("serve-conn".to_string())
                    .spawn(move || {
                        connection_loop(stream, &conn_state);
                        conn_state.open_conns.fetch_sub(1, Ordering::Relaxed);
                    });
                if spawned.is_err() {
                    // Thread exhaustion: undo the count; the client sees a
                    // closed connection, which is the honest signal here.
                    state.open_conns.fetch_sub(1, Ordering::Relaxed);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => {
                // Transient accept error (EMFILE, reset): back off briefly.
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

fn refuse_connection(mut stream: TcpStream, state: &ServerState) {
    let _ = stream.set_write_timeout(Some(state.cfg.write_timeout));
    let resp = handlers::error_response(503, "connection-cap", "too many open connections")
        .with_header("retry-after", "1")
        .closing();
    state.stats.record_status(resp.status);
    let _ = http::write_response(&mut stream, &resp, false);
}

/// Serves requests on one connection until close/error/shutdown.
fn connection_loop(mut stream: TcpStream, state: &ServerState) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_write_timeout(Some(state.cfg.write_timeout));
    let limits = state.cfg.read_limits();
    let mut carry = Vec::new();
    loop {
        match http::read_request(&mut stream, &mut carry, &limits) {
            Ok(req) => {
                state.stats.received.fetch_add(1, Ordering::Relaxed);
                let keep = req.keep_alive() && !state.is_shutting_down();
                let resp = process_request(state, &req);
                state.stats.record_status(resp.status);
                let close = resp.close || !keep;
                if http::write_response(&mut stream, &resp, !close).is_err() {
                    return;
                }
                if close {
                    return;
                }
            }
            Err(HttpError::Closed) => return,
            Err(HttpError::Malformed(msg)) => {
                let resp = handlers::error_response(400, "malformed-request", &msg).closing();
                state.stats.record_status(resp.status);
                let _ = http::write_response(&mut stream, &resp, false);
                return;
            }
            Err(HttpError::TooLarge(msg)) => {
                let resp = handlers::error_response(400, "too-large", &msg).closing();
                state.stats.record_status(resp.status);
                let _ = http::write_response(&mut stream, &resp, false);
                return;
            }
            // A stalled client gets no response (it is not reading
            // anyway); the socket simply closes, freeing the thread.
            Err(HttpError::SlowClient) => return,
            Err(HttpError::Io(_)) => return,
        }
    }
}

/// Observability endpoints bypass the gate; everything else is admitted,
/// panic-isolated, and dispatched.
fn process_request(state: &ServerState, req: &Request) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => return handlers::handle_healthz(state),
        ("GET", "/stats") => return handlers::handle_stats(state),
        _ => {}
    }
    if state.is_shutting_down() {
        return handlers::error_response(503, "shutting-down", "server is draining")
            .with_header("retry-after", "1")
            .closing();
    }
    // Queue wait and service time are accounted separately: the gate wait
    // (including sheds) lands in `queue_wait_us`, handler execution in
    // `service_us` — so /stats distinguishes queue pressure from slow
    // handlers.
    let arrived = Instant::now();
    let admission = state.gate.admit();
    state
        .stats
        .queue_wait_us
        .fetch_add(arrived.elapsed().as_micros() as u64, Ordering::Relaxed);
    let permit = match admission {
        Admission::Admitted(p) => p,
        Admission::QueueFull => {
            state.stats.shed.fetch_add(1, Ordering::Relaxed);
            return handlers::error_response(
                503,
                "overloaded",
                "concurrency cap and wait queue are full",
            )
            .with_header("retry-after", "1");
        }
        Admission::WaitTimeout => {
            state.stats.shed.fetch_add(1, Ordering::Relaxed);
            return handlers::error_response(
                503,
                "overloaded",
                "no execution slot freed within the queue wait",
            )
            .with_header("retry-after", "1");
        }
    };
    state.stats.admitted.fetch_add(1, Ordering::Relaxed);
    let service_start = Instant::now();
    let result = catch_unwind(AssertUnwindSafe(|| handlers::dispatch(state, req)));
    state.stats.service_us.fetch_add(
        service_start.elapsed().as_micros() as u64,
        Ordering::Relaxed,
    );
    drop(permit);
    match result {
        Ok(resp) => resp,
        Err(_) => {
            state.stats.panics.fetch_add(1, Ordering::Relaxed);
            // The handler died mid-request; close so no half-written
            // protocol state leaks into the next request.
            handlers::error_response(500, "internal", "handler panicked; request isolated")
                .closing()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SHAPES: &str = r#"
@prefix sh: <http://www.w3.org/ns/shacl#> .
@prefix ex: <http://example.org/> .
ex:PaperShape a sh:NodeShape ;
  sh:targetClass ex:Paper ;
  sh:property [ sh:path ex:author ; sh:minCount 1 ] .
"#;

    const DATA: &str = r#"
@prefix ex: <http://example.org/> .
@prefix rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> .
ex:good rdf:type ex:Paper ; ex:author ex:ann .
ex:bad rdf:type ex:Paper .
"#;

    fn boot() -> Server {
        Server::start(
            ServeConfig::default(),
            SnapshotSource::Inline {
                shapes: SHAPES.to_string(),
                data: DATA.to_string(),
            },
        )
        .expect("server boots")
    }

    #[test]
    fn end_to_end_endpoints() {
        let server = boot();
        let addr = server.addr;

        let health = client::request(addr, "GET", "/healthz", &[], b"").unwrap();
        assert_eq!(health.status, 200);
        assert!(health.text().contains("\"epoch\":1"));

        // Validate the resident snapshot: ex:bad has no author.
        let v = client::request(addr, "POST", "/validate", &[], b"").unwrap();
        assert_eq!(v.status, 200);
        assert!(v.text().contains("\"conforms\":false"), "{}", v.text());
        assert!(v.text().contains("bad"));

        // Validate a posted (conforming) dataset against the resident schema.
        let posted = client::request(
            addr,
            "POST",
            "/validate",
            &[],
            br#"@prefix ex: <http://example.org/> .
@prefix rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> .
ex:p rdf:type ex:Paper ; ex:author ex:bob ."#,
        )
        .unwrap();
        assert_eq!(posted.status, 200);
        assert!(posted.text().contains("\"conforms\":true"));

        // Fragment: evidence triples of the conforming node.
        let f = client::request(addr, "POST", "/fragment", &[], b"").unwrap();
        assert_eq!(f.status, 200);
        assert!(f.text().contains("author"), "{}", f.text());

        // Analyzer diagnostics (clean schema → empty findings array).
        let a = client::request(addr, "GET", "/analyze", &[], b"").unwrap();
        assert_eq!(a.status, 200);

        // SPARQL over the snapshot.
        let q = client::request(
            addr,
            "POST",
            "/sparql",
            &[],
            b"SELECT ?s WHERE { ?s <http://example.org/author> ?o }",
        )
        .unwrap();
        assert_eq!(q.status, 200);
        assert!(q.text().contains("good"), "{}", q.text());

        // Reload with a new data graph bumps the epoch; later requests see it.
        let r = client::request(
            addr,
            "POST",
            "/reload",
            &[],
            br#"@prefix ex: <http://example.org/> .
@prefix rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> .
ex:only rdf:type ex:Paper ; ex:author ex:zed ."#,
        )
        .unwrap();
        assert_eq!(r.status, 200);
        assert!(r.text().contains("\"epoch\":2"), "{}", r.text());
        let v2 = client::request(addr, "POST", "/validate", &[], b"").unwrap();
        assert!(v2.text().contains("\"conforms\":true"), "{}", v2.text());
        assert!(v2.text().contains("\"epoch\":2"));

        // Unknown path and wrong method.
        assert_eq!(
            client::request(addr, "GET", "/nope", &[], b"")
                .unwrap()
                .status,
            404
        );
        assert_eq!(
            client::request(addr, "GET", "/validate", &[], b"")
                .unwrap()
                .status,
            405
        );

        assert_eq!(server.shutdown(Duration::from_secs(1)), 0);
    }

    #[test]
    fn update_and_compact_round_trip() {
        let server = boot();
        let addr = server.addr;

        // Seed state: ex:bad violates (no author). Fix it incrementally
        // and add a fresh violating paper in one batch.
        let script = b"+ <http://example.org/bad> <http://example.org/author> <http://example.org/bea> .\n\
                       + <http://example.org/new> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://example.org/Paper> .\n";
        let u = client::request(addr, "POST", "/update", &[], script).unwrap();
        assert_eq!(u.status, 200, "{}", u.text());
        assert!(u.text().contains("\"epoch\":2"), "{}", u.text());
        assert!(u.text().contains("\"delta_added\":2"), "{}", u.text());
        assert!(u.text().contains("\"conforms\":false"), "{}", u.text());
        assert!(u.text().contains("new"), "{}", u.text());
        assert!(!u.text().contains("bad\"}"), "{}", u.text());

        // Readers see the merged view at the new epoch; the incremental
        // report agrees with a from-scratch validation of it.
        let v = client::request(addr, "POST", "/validate", &[], b"").unwrap();
        assert_eq!(v.status, 200);
        assert!(v.text().contains("\"epoch\":2"), "{}", v.text());
        assert!(v.text().contains("\"conforms\":false"));
        assert!(v.text().contains("new"));

        // /stats surfaces the overlay and the timing split.
        let s = client::request(addr, "GET", "/stats", &[], b"").unwrap();
        assert!(s.text().contains("\"delta_added\":2"), "{}", s.text());
        assert!(s.text().contains("\"updates\":1"), "{}", s.text());
        assert!(s.text().contains("\"queue_wait_us\":"), "{}", s.text());
        assert!(s.text().contains("\"service_us\":"), "{}", s.text());

        // Retracting the violation repairs the report incrementally.
        let fix =
            b"- <http://example.org/new> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://example.org/Paper> .\n";
        let u2 = client::request(addr, "POST", "/update", &[], fix).unwrap();
        assert_eq!(u2.status, 200);
        assert!(u2.text().contains("\"conforms\":true"), "{}", u2.text());

        // Compaction re-freezes and resets the overlay; the view and
        // report are unchanged.
        let c = client::request(addr, "POST", "/compact", &[], b"").unwrap();
        assert_eq!(c.status, 200);
        assert!(c.text().contains("\"compacted\":true"), "{}", c.text());
        let s2 = client::request(addr, "GET", "/stats", &[], b"").unwrap();
        assert!(s2.text().contains("\"delta_added\":0"), "{}", s2.text());
        assert!(s2.text().contains("\"compactions\":1"), "{}", s2.text());
        let v2 = client::request(addr, "POST", "/validate", &[], b"").unwrap();
        assert!(v2.text().contains("\"conforms\":true"), "{}", v2.text());

        // A second compact with no overlay is a cheap no-op.
        let c2 = client::request(addr, "POST", "/compact", &[], b"").unwrap();
        assert!(c2.text().contains("\"compacted\":false"), "{}", c2.text());

        // A budget-starved update faults with 429 + Retry-After and rolls
        // back: the epoch does not move and the report is unchanged.
        let before = client::request(addr, "GET", "/healthz", &[], b"").unwrap();
        let r = client::request(
            addr,
            "POST",
            "/update",
            &[("x-budget-steps", "0")],
            b"+ <http://example.org/x> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://example.org/Paper> .\n",
        )
        .unwrap();
        assert_eq!(r.status, 429, "{}", r.text());
        assert!(r.header("retry-after").is_some());
        let after = client::request(addr, "GET", "/healthz", &[], b"").unwrap();
        assert_eq!(before.text(), after.text());

        // A malformed edit script is a 400.
        let bad = client::request(addr, "POST", "/update", &[], b"+ not ntriples\n").unwrap();
        assert_eq!(bad.status, 400, "{}", bad.text());

        // Reload drops the incremental state; the next update reseeds.
        let r = client::request(
            addr,
            "POST",
            "/reload",
            &[],
            br#"@prefix ex: <http://example.org/> .
@prefix rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> .
ex:solo rdf:type ex:Paper ."#,
        )
        .unwrap();
        assert_eq!(r.status, 200, "{}", r.text());
        let u3 = client::request(
            addr,
            "POST",
            "/update",
            &[],
            b"+ <http://example.org/solo> <http://example.org/author> <http://example.org/ann> .\n",
        )
        .unwrap();
        assert_eq!(u3.status, 200, "{}", u3.text());
        assert!(u3.text().contains("\"conforms\":true"), "{}", u3.text());

        assert_eq!(server.shutdown(Duration::from_secs(1)), 0);
    }

    #[test]
    fn governance_headers_map_to_status_codes() {
        let server = boot();
        let addr = server.addr;

        // A one-step budget cannot validate anything → 429 + Retry-After.
        let r =
            client::request(addr, "POST", "/validate", &[("x-budget-steps", "1")], b"").unwrap();
        assert_eq!(r.status, 429, "{}", r.text());
        assert!(r.header("retry-after").is_some());

        // An immediate deadline → 504.
        let r = client::request(addr, "POST", "/validate", &[("x-deadline-ms", "0")], b"").unwrap();
        assert_eq!(r.status, 504, "{}", r.text());

        // A garbage governance header → 400.
        let r =
            client::request(addr, "POST", "/validate", &[("x-deadline-ms", "soon")], b"").unwrap();
        assert_eq!(r.status, 400);

        // Malformed posted data → 400 with the parse position.
        let r = client::request(addr, "POST", "/validate", &[], b"@prefix broken").unwrap();
        assert_eq!(r.status, 400);

        assert_eq!(server.shutdown(Duration::from_secs(1)), 0);
    }

    #[test]
    fn boot_rejects_deny_level_schema() {
        // minCount 2 with maxCount 1 is a cardinality contradiction
        // (SF-E002, deny severity).
        let denied = Server::start(
            ServeConfig::default(),
            SnapshotSource::Inline {
                shapes: r#"
@prefix sh: <http://www.w3.org/ns/shacl#> .
@prefix ex: <http://example.org/> .
ex:S a sh:NodeShape ;
  sh:targetClass ex:T ;
  sh:property [ sh:path ex:p ; sh:minCount 2 ; sh:maxCount 1 ] .
"#
                .to_string(),
                data: DATA.to_string(),
            },
        );
        match denied {
            Err(msg) => assert!(msg.contains("static analysis"), "{msg}"),
            Ok(_) => panic!("deny-level schema must not boot"),
        }
    }
}
