//! Endpoint dispatch: routing, per-request governance, and the mapping
//! from the [`EngineError`] taxonomy to HTTP status codes.
//!
//! | engine fault                | HTTP | notes |
//! |-----------------------------|------|-------|
//! | `BudgetExceeded`            | 429  | `Retry-After: 1` |
//! | `DeadlineExceeded`          | 504  | request-scoped deadline, not the server's |
//! | `Malformed`                 | 400  | parse position and code in the body |
//! | `Cancelled`                 | 499  | server shutting down mid-request |
//! | `DepthLimit`                | 400  | pathological nesting is an input defect |
//!
//! Admission shedding (503) and handler panics (500) are mapped by the
//! connection loop in `lib.rs`, not here.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use shapefrag_analyze::{analyze_schema, has_deny, to_json as diags_to_json};
use shapefrag_core::{fragment_governed, EditScript, IncrementalValidator};
use shapefrag_govern::{Budget, EngineError, ErrorCode, ExecCtx};
use shapefrag_rdf::{ntriples, turtle, Graph, Term};
use shapefrag_shacl::validator::{
    validate_batch_containment_governed, ConformanceMemo, ValidationReport,
};
use shapefrag_shacl::Shape;
use shapefrag_sparql::eval::{eval_select_governed, Binding, EvalConfig};
use shapefrag_sparql::parser::parse_select;

use crate::http::{Request, Response};
use crate::state::{json_escape, Snapshot, Updater};
use crate::{ServeConfig, ServerState};

/// Runs `$body` with `$g` bound to the snapshot's read view: the delta
/// overlay when one is published, the frozen base otherwise. A macro
/// because [`shapefrag_rdf::GraphAccess`] is not object-safe (its
/// accessors return `impl Iterator`), so the two arms monomorphize
/// separately.
macro_rules! with_view {
    ($snapshot:expr, |$g:ident| $body:expr) => {
        match &$snapshot.delta {
            Some(d) => {
                let $g = d.as_ref();
                $body
            }
            None => {
                let $g = $snapshot.frozen.as_ref();
                $body
            }
        }
    };
}

/// Maps an engine fault to its HTTP response.
pub fn engine_error_response(e: &EngineError) -> Response {
    let body = |code: &str, msg: &str| {
        format!(
            "{{\"error\":\"{}\",\"message\":\"{}\"}}",
            code,
            json_escape(msg)
        )
    };
    match e {
        EngineError::BudgetExceeded { .. } => {
            Response::json(429, body("budget-exceeded", &e.to_string()))
                .with_header("retry-after", "1")
        }
        EngineError::DeadlineExceeded { .. } => {
            Response::json(504, body("deadline-exceeded", &e.to_string()))
        }
        EngineError::Cancelled => Response::json(499, body("cancelled", &e.to_string())),
        EngineError::DepthLimit { .. } => Response::json(400, body("depth-limit", &e.to_string())),
        EngineError::Malformed { code, .. } => {
            Response::json(400, body(code.as_str(), &e.to_string()))
        }
    }
}

/// A plain 4xx/5xx JSON error body.
pub fn error_response(status: u16, code: &str, message: &str) -> Response {
    Response::json(
        status,
        format!(
            "{{\"error\":\"{}\",\"message\":\"{}\"}}",
            code,
            json_escape(message)
        ),
    )
}

/// Builds the per-request [`Budget`] from the governance headers, clamped
/// to the server's ceiling. Returns `Err` on unparsable values.
pub fn budget_from_headers(req: &Request, cfg: &ServeConfig) -> Result<Budget, Response> {
    let parse_u64 = |name: &str| -> Result<Option<u64>, Response> {
        match req.header(name) {
            None => Ok(None),
            Some(v) => v.trim().parse::<u64>().map(Some).map_err(|_| {
                error_response(400, "bad-header", &format!("invalid {name} value '{v}'"))
            }),
        }
    };
    let mut budget = Budget::unlimited();
    // Deadlines are always on: the client may only tighten the server's
    // per-request ceiling, never exceed it.
    let ceiling_ms = cfg.max_request_deadline.as_millis() as u64;
    let requested_ms = parse_u64("x-deadline-ms")?.unwrap_or(ceiling_ms);
    budget = budget.deadline(Duration::from_millis(requested_ms.min(ceiling_ms)));
    if let Some(steps) = parse_u64("x-budget-steps")? {
        budget = budget.steps(steps);
    }
    if let Some(bytes) = parse_u64("x-budget-memory")? {
        budget = budget.memory_bytes(bytes);
    }
    Ok(budget)
}

/// [`budget_from_headers`] wrapped into an execution context.
pub fn exec_from_headers(req: &Request, cfg: &ServeConfig) -> Result<ExecCtx, Response> {
    Ok(ExecCtx::with_budget(budget_from_headers(req, cfg)?))
}

/// Parses a posted RDF payload as Turtle or N-Triples, honoring the
/// `Content-Type` header (defaults to Turtle, which accepts the N-Triples
/// subset for untyped clients).
fn parse_body_graph(req: &Request) -> Result<Graph, EngineError> {
    let text = std::str::from_utf8(&req.body).map_err(|_| {
        EngineError::malformed(ErrorCode::Syntax, "request body is not valid UTF-8")
    })?;
    let content_type = req.header("content-type").unwrap_or("text/turtle");
    if content_type.starts_with("application/n-triples") {
        ntriples::parse(text).map_err(EngineError::from)
    } else {
        turtle::parse(text).map_err(EngineError::from)
    }
}

/// Routes one admitted request. Runs inside the connection loop's
/// panic-isolation boundary.
pub fn dispatch(state: &ServerState, req: &Request) -> Response {
    let snapshot = state.snapshots.load();
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/validate") => handle_validate(state, req, &snapshot),
        ("POST", "/fragment") => handle_fragment(state, req, &snapshot),
        ("GET", "/analyze") => handle_analyze(&snapshot),
        ("POST", "/sparql") => handle_sparql(state, req, &snapshot),
        ("POST", "/reload") => handle_reload(state, req),
        ("POST", "/update") => handle_update(state, req),
        ("POST", "/compact") => handle_compact(state),
        (
            "GET" | "POST",
            "/validate" | "/fragment" | "/analyze" | "/sparql" | "/reload" | "/update" | "/compact",
        ) => error_response(405, "method-not-allowed", "wrong method for this endpoint"),
        _ => error_response(404, "not-found", "unknown endpoint"),
    }
}

fn report_json(report: &ValidationReport, epoch: u64) -> String {
    let mut out = format!(
        "{{\"epoch\":{},\"conforms\":{},\"checked\":{},\"violations\":[",
        epoch,
        report.conforms(),
        report.checked
    );
    for (i, v) in report.violations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"shape\":\"{}\",\"focus\":\"{}\"}}",
            json_escape(&v.shape.to_string()),
            json_escape(&v.focus.to_string())
        ));
    }
    out.push_str("]}");
    out
}

/// `POST /validate` — empty body validates the resident snapshot; a
/// non-empty body is parsed as a data graph and validated against the
/// resident schema (one resident process, many datasets). Runs the
/// containment-aware driver: the snapshot's subsumption index lets
/// equivalent definitions share conformance bits (the report stays
/// bit-identical; `/stats` counts the derivations and skips).
fn handle_validate(state: &ServerState, req: &Request, snapshot: &Arc<Snapshot>) -> Response {
    let exec = match exec_from_headers(req, &state.cfg) {
        Ok(e) => e.with_cancel(&state.cancel),
        Err(resp) => return resp,
    };
    let memo = Arc::new(ConformanceMemo::new());
    memo.attach_containment(Arc::clone(&snapshot.containment));
    let result = if req.body.is_empty() {
        with_view!(snapshot, |g| validate_batch_containment_governed(
            &snapshot.schema,
            g,
            Arc::clone(&memo),
            exec
        ))
    } else {
        match parse_body_graph(req) {
            Ok(graph) => validate_batch_containment_governed(
                &snapshot.schema,
                &graph.freeze(),
                Arc::clone(&memo),
                exec,
            ),
            Err(e) => return engine_error_response(&e),
        }
    };
    match result {
        Ok((report, skipped)) => {
            let (hits, misses) = memo.containment_counters();
            state
                .stats
                .containment_hits
                .fetch_add(hits, Ordering::Relaxed);
            state
                .stats
                .containment_misses
                .fetch_add(misses, Ordering::Relaxed);
            state
                .stats
                .shapes_skipped
                .fetch_add(skipped, Ordering::Relaxed);
            if req
                .header("accept")
                .is_some_and(|a| a.contains("text/turtle"))
            {
                let graph = report.to_graph();
                Response::new(
                    200,
                    "text/turtle",
                    turtle::serialize(&graph, &[("sh", shapefrag_rdf::vocab::SH_NS)]),
                )
            } else {
                Response::json(200, report_json(&report, snapshot.epoch))
            }
        }
        Err(e) => engine_error_response(&e),
    }
}

/// Structural shape equality modulo definition names: `hasShape(x)` and
/// `hasShape(y)` are aliases when the referenced definitions' shapes are
/// themselves structurally equal (the parser synthesizes a fresh
/// blank-node definition per `sh:property`, so textual duplicates differ
/// only in these generated names). The `seen` pair set terminates cyclic
/// reference chains coinductively.
fn shapes_alias(
    schema: &shapefrag_shacl::Schema,
    a: &Shape,
    b: &Shape,
    seen: &mut std::collections::BTreeSet<(Term, Term)>,
) -> bool {
    match (a, b) {
        (Shape::HasShape(x), Shape::HasShape(y)) => {
            if x == y {
                return true;
            }
            if !seen.insert((x.clone(), y.clone())) {
                return true;
            }
            match (schema.get(x), schema.get(y)) {
                (Some(dx), Some(dy)) => shapes_alias(schema, &dx.shape, &dy.shape, seen),
                // Both undefined: each means ⊤ with empty provenance.
                (None, None) => true,
                _ => false,
            }
        }
        (Shape::Not(p), Shape::Not(q)) => shapes_alias(schema, p, q, seen),
        (Shape::And(ps), Shape::And(qs)) | (Shape::Or(ps), Shape::Or(qs)) => {
            ps.len() == qs.len()
                && ps
                    .iter()
                    .zip(qs)
                    .all(|(p, q)| shapes_alias(schema, p, q, seen))
        }
        (Shape::Geq(m, e, p), Shape::Geq(n, f, q)) | (Shape::Leq(m, e, p), Shape::Leq(n, f, q)) => {
            m == n && e == f && shapes_alias(schema, p, q, seen)
        }
        (Shape::ForAll(e, p), Shape::ForAll(f, q)) => e == f && shapes_alias(schema, p, q, seen),
        _ => a == b,
    }
}

/// Finds the cache representative for a requested shape name: the first
/// definition (schema order) in the same matrix-equivalence class whose
/// `(shape, target)` is structurally identical modulo reference names —
/// that is what makes the cached bytes reusable verbatim (shapes that
/// are merely *semantically* equivalent can have different provenance
/// fragments).
fn fragment_representative(snapshot: &Snapshot, name: &Term) -> Term {
    let (Some(id), Some(def)) = (snapshot.schema.name_id(name), snapshot.schema.get(name)) else {
        return name.clone();
    };
    for (j, cand) in snapshot.schema.iter().enumerate() {
        let j = j as u32;
        if j >= id {
            break;
        }
        if snapshot.matrix.equivalent(j, id)
            && shapes_alias(
                &snapshot.schema,
                &cand.shape,
                &def.shape,
                &mut Default::default(),
            )
            && shapes_alias(
                &snapshot.schema,
                &cand.target,
                &def.target,
                &mut Default::default(),
            )
        {
            return cand.name.clone();
        }
    }
    name.clone()
}

/// `POST /fragment` — empty body computes the full schema fragment; a
/// non-empty body lists shape-name IRIs (one per line) to restrict to.
/// Single-shape requests go through the per-epoch fragment cache: a
/// request for a definition whose `(shape, target)` duplicates an
/// equivalent definition's is answered from the cached bytes
/// (`x-fragment-cache: hit`), and both count into `/stats`.
fn handle_fragment(state: &ServerState, req: &Request, snapshot: &Arc<Snapshot>) -> Response {
    let exec = match exec_from_headers(req, &state.cfg) {
        Ok(e) => e.with_cancel(&state.cancel),
        Err(resp) => return resp,
    };
    let mut names: Vec<Term> = Vec::new();
    let shapes: Vec<Shape> = if req.body.is_empty() {
        snapshot.schema.request_shapes()
    } else {
        let text = match std::str::from_utf8(&req.body) {
            Ok(t) => t,
            Err(_) => return error_response(400, "syntax", "shape list is not valid UTF-8"),
        };
        let mut shapes = Vec::new();
        for line in text.lines().map(str::trim).filter(|l| !l.is_empty()) {
            let name = Term::iri(line.trim_start_matches('<').trim_end_matches('>'));
            match snapshot.schema.get(&name) {
                Some(def) => shapes.push(def.shape.clone().and(def.target.clone())),
                None => {
                    return error_response(
                        400,
                        "unknown-shape",
                        &format!("no shape named {name} in the resident schema"),
                    )
                }
            }
            names.push(name);
        }
        shapes
    };
    // Cache only single-shape requests: a multi-shape fragment is the
    // union over its list, not a concatenation of per-shape bodies.
    let rep = (names.len() == 1).then(|| fragment_representative(snapshot, &names[0]));
    if let Some(rep) = &rep {
        let mut cache = state.fragments.lock().unwrap_or_else(|e| e.into_inner());
        cache.roll_to(snapshot.epoch);
        if let Some(body) = cache.entries.get(rep) {
            state.stats.containment_hits.fetch_add(1, Ordering::Relaxed);
            return Response::new(200, "application/n-triples", body.as_ref().clone())
                .with_header("x-epoch", snapshot.epoch.to_string())
                .with_header("x-fragment-cache", "hit");
        }
        state
            .stats
            .containment_misses
            .fetch_add(1, Ordering::Relaxed);
    }
    match with_view!(snapshot, |g| fragment_governed(
        &snapshot.schema,
        g,
        &shapes,
        exec
    )) {
        Ok(fragment) => {
            let body = ntriples::serialize(&fragment);
            if let Some(rep) = rep {
                let mut cache = state.fragments.lock().unwrap_or_else(|e| e.into_inner());
                cache.roll_to(snapshot.epoch);
                cache.entries.insert(rep, Arc::new(body.clone()));
            }
            Response::new(200, "application/n-triples", body)
                .with_header("x-epoch", snapshot.epoch.to_string())
                .with_header("x-fragment-cache", "miss")
        }
        Err(e) => engine_error_response(&e),
    }
}

/// `GET /analyze` — static diagnostics for the resident schema.
fn handle_analyze(snapshot: &Arc<Snapshot>) -> Response {
    let diags = analyze_schema(&snapshot.schema, None);
    Response::json(200, diags_to_json(&diags))
}

fn bindings_json(vars: &[String], rows: &[Binding], epoch: u64) -> String {
    let mut out = String::from("{\"head\":{\"vars\":[");
    for (i, v) in vars.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\"", json_escape(v)));
    }
    out.push_str(&format!(
        "]}},\"epoch\":{epoch},\"results\":{{\"bindings\":["
    ));
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('{');
        for (j, (var, term)) in row.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":\"{}\"",
                json_escape(var),
                json_escape(&term.to_string())
            ));
        }
        out.push('}');
    }
    out.push_str("]}}");
    out
}

/// `POST /sparql` — evaluates a SELECT query over the resident snapshot.
fn handle_sparql(state: &ServerState, req: &Request, snapshot: &Arc<Snapshot>) -> Response {
    let exec = match exec_from_headers(req, &state.cfg) {
        Ok(e) => e.with_cancel(&state.cancel),
        Err(resp) => return resp,
    };
    let text = match std::str::from_utf8(&req.body) {
        Ok(t) => t,
        Err(_) => return error_response(400, "syntax", "query body is not valid UTF-8"),
    };
    let query = match parse_select(text) {
        Ok(q) => q,
        Err(e) => return engine_error_response(&EngineError::from(e)),
    };
    match with_view!(snapshot, |g| eval_select_governed(
        g,
        &query,
        &EvalConfig::indexed(),
        &exec,
    )) {
        Ok(rows) => Response::json(200, bindings_json(&query.out_vars(), &rows, snapshot.epoch)),
        Err(e) => engine_error_response(&e),
    }
}

/// `POST /reload` — empty body rebuilds the snapshot from the configured
/// source (re-reading files); a non-empty body is parsed as a replacement
/// *data* graph against the resident schema. Either way the new epoch is
/// frozen and published atomically; in-flight requests drain on the old
/// epoch.
fn handle_reload(state: &ServerState, req: &Request) -> Response {
    let built = if req.body.is_empty() {
        state.snapshots.swap(|epoch| {
            let (schema, graph) = crate::load_source(&state.source)
                .map_err(|msg| error_response(400, "reload-failed", &msg))?;
            Ok::<_, Response>(crate::build_snapshot(epoch, schema, graph))
        })
    } else {
        let graph = match parse_body_graph(req) {
            Ok(g) => g,
            Err(e) => return engine_error_response(&e),
        };
        let schema = Arc::clone(&state.snapshots.load().schema);
        state
            .snapshots
            .swap(|epoch| Ok::<_, Response>(crate::build_snapshot(epoch, schema, graph)))
    };
    match built {
        Ok(snapshot) => {
            // The replaced dataset invalidates the incremental state; the
            // next /update reseeds from the new snapshot.
            *state.updater.lock().unwrap_or_else(|e| e.into_inner()) = None;
            state
                .stats
                .reloads
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            Response::json(
                200,
                format!(
                    "{{\"epoch\":{},\"triples\":{},\"shapes\":{}}}",
                    snapshot.epoch,
                    snapshot.triples,
                    snapshot.schema.len()
                ),
            )
        }
        Err(resp) => resp,
    }
}

/// `POST /update` — applies a signed N-Triples edit script (`+`/`-`
/// line prefixes, see [`EditScript::parse`]) to the continuous-ingest
/// overlay, revalidates incrementally under the request's budget, and
/// epoch-swaps the merged view. Readers never block: they keep their
/// snapshot clone while the new epoch is published. The first update (or
/// the first after a reload) seeds the incremental state with a full
/// validation.
fn handle_update(state: &ServerState, req: &Request) -> Response {
    let budget = match budget_from_headers(req, &state.cfg) {
        Ok(b) => b,
        Err(resp) => return resp,
    };
    let text = match std::str::from_utf8(&req.body) {
        Ok(t) => t,
        Err(_) => return error_response(400, "syntax", "edit script is not valid UTF-8"),
    };
    let script = match EditScript::parse(text) {
        Ok(s) => s,
        Err(e) => return engine_error_response(&EngineError::from(e)),
    };
    let mut slot = state.updater.lock().unwrap_or_else(|e| e.into_inner());
    let current = state.snapshots.load();
    if slot.as_ref().is_none_or(|u| u.epoch != current.epoch) {
        // First update, or the snapshot moved under us (reload): seed the
        // incremental state from the published view. This is the one full
        // validation; every subsequent update is impact-routed.
        let base = match &current.delta {
            Some(d) => Arc::new(d.compact()),
            None => Arc::clone(&current.frozen),
        };
        *slot = Some(Updater {
            inc: IncrementalValidator::new(Arc::clone(&current.schema), base),
            epoch: current.epoch,
        });
    }
    let updater = slot.as_mut().expect("updater seeded above");
    match updater
        .inc
        .apply_governed(&script, budget, Some(&state.cancel))
    {
        Ok(report) => {
            let graph = updater.inc.graph();
            let published = state.snapshots.swap(|epoch| {
                Ok::<_, Response>(Snapshot {
                    epoch,
                    schema: Arc::clone(updater.inc.schema()),
                    frozen: Arc::clone(graph.base()),
                    delta: Some(Arc::new(graph.clone())),
                    // The schema is unchanged by an update; the matrix
                    // is schema-keyed, so the epoch shares it.
                    matrix: Arc::clone(&current.matrix),
                    containment: Arc::clone(&current.containment),
                    triples: graph.len(),
                    delta_added: graph.added_len(),
                    delta_removed: graph.removed_len(),
                })
            });
            match published {
                Ok(snap) => {
                    updater.epoch = snap.epoch;
                    state
                        .stats
                        .updates
                        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    Response::json(
                        200,
                        format!(
                            "{{\"epoch\":{},\"applied\":{},\"triples\":{},\"delta_added\":{},\"delta_removed\":{},\"report\":{}}}",
                            snap.epoch,
                            script.len(),
                            snap.triples,
                            snap.delta_added,
                            snap.delta_removed,
                            report_json(&report, snap.epoch)
                        ),
                    )
                }
                Err(resp) => resp,
            }
        }
        Err(e) => engine_error_response(&e),
    }
}

/// `POST /compact` — re-freezes base + overlay into a fresh snapshot and
/// publishes it with an empty overlay. Ids are stable across compaction,
/// so the incremental rows and memo survive and the next update stays
/// cheap. A no-op (200, `"compacted":false`) when no overlay exists.
fn handle_compact(state: &ServerState) -> Response {
    let mut slot = state.updater.lock().unwrap_or_else(|e| e.into_inner());
    let current = state.snapshots.load();
    let stale = slot.as_ref().is_none_or(|u| u.epoch != current.epoch);
    if stale || current.delta.is_none() {
        return Response::json(
            200,
            format!(
                "{{\"epoch\":{},\"triples\":{},\"compacted\":false}}",
                current.epoch, current.triples
            ),
        );
    }
    let updater = slot.as_mut().expect("checked above");
    updater.inc.compact();
    let published = state.snapshots.swap(|epoch| {
        Ok::<_, Response>(Snapshot {
            epoch,
            schema: Arc::clone(updater.inc.schema()),
            frozen: Arc::clone(updater.inc.graph().base()),
            delta: None,
            matrix: Arc::clone(&current.matrix),
            containment: Arc::clone(&current.containment),
            triples: updater.inc.graph().len(),
            delta_added: 0,
            delta_removed: 0,
        })
    });
    match published {
        Ok(snap) => {
            updater.epoch = snap.epoch;
            state
                .stats
                .compactions
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            Response::json(
                200,
                format!(
                    "{{\"epoch\":{},\"triples\":{},\"compacted\":true}}",
                    snap.epoch, snap.triples
                ),
            )
        }
        Err(resp) => resp,
    }
}

/// `GET /healthz` — liveness plus the current epoch. Never gated: health
/// checks must answer even under full load.
pub fn handle_healthz(state: &ServerState) -> Response {
    let snapshot = state.snapshots.load();
    Response::json(
        200,
        format!(
            "{{\"status\":\"ok\",\"epoch\":{},\"triples\":{}}}",
            snapshot.epoch, snapshot.triples
        ),
    )
}

/// `GET /stats` — the full counter set. Never gated.
pub fn handle_stats(state: &ServerState) -> Response {
    let snapshot = state.snapshots.load();
    Response::json(
        200,
        state.stats.to_json(
            snapshot.epoch,
            snapshot.triples,
            snapshot.schema.len(),
            snapshot.delta_added,
            snapshot.delta_removed,
            &state.gate,
            state.started,
        ),
    )
}

/// Schema deny-gating shared by boot and reload: a schema with deny-level
/// analyzer findings is refused (the server never publishes an epoch a
/// batch CLI run would reject).
pub fn check_schema(schema: &shapefrag_shacl::Schema) -> Result<(), String> {
    let diags = analyze_schema(schema, None);
    if has_deny(&diags) {
        let lines: Vec<String> = diags.iter().map(|d| d.to_string()).collect();
        return Err(format!(
            "shapes graph rejected by static analysis: {}",
            lines.join("; ")
        ));
    }
    Ok(())
}
