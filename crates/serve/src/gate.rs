//! Admission control: a counting semaphore with a *bounded* wait queue.
//!
//! The server admits at most `cap` requests into the engine at once.
//! Arrivals beyond the cap wait — but only `queue` of them, and only for
//! `max_wait` — so offered load beyond `cap + queue` is shed immediately
//! and deterministically (HTTP 503 with a retry hint) instead of building
//! an unbounded backlog whose latency grows without limit. This is the
//! classic admission-control state machine: `inflight < cap` → run,
//! `waiting < queue` → park on the condvar, otherwise → shed.
//!
//! The permit is a guard: it releases its slot on drop, on success, error,
//! and panic paths alike, so a crashing handler can never leak capacity.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

#[derive(Debug, Default)]
struct GateState {
    inflight: usize,
    waiting: usize,
}

/// Outcome of asking for admission.
pub enum Admission<'a> {
    /// Admitted; hold the permit for the duration of the work.
    Admitted(Permit<'a>),
    /// The wait queue is full — shed immediately.
    QueueFull,
    /// Queued, but no slot freed within `max_wait` — shed.
    WaitTimeout,
}

/// The admission gate. See the module docs.
#[derive(Debug)]
pub struct Gate {
    cap: usize,
    queue: usize,
    max_wait: Duration,
    state: Mutex<GateState>,
    cv: Condvar,
    /// Total requests ever shed (both shed variants).
    shed: AtomicU64,
}

impl Gate {
    /// A gate admitting `cap` concurrent requests with a wait queue of
    /// `queue` slots, each waiting at most `max_wait`.
    pub fn new(cap: usize, queue: usize, max_wait: Duration) -> Gate {
        Gate {
            cap: cap.max(1),
            queue,
            max_wait,
            state: Mutex::new(GateState::default()),
            cv: Condvar::new(),
            shed: AtomicU64::new(0),
        }
    }

    fn lock(&self) -> MutexGuard<'_, GateState> {
        // The mutex is only ever held inside gate methods, so a poisoned
        // lock can only mean a panic between lock and unlock here; the
        // state is still consistent (all mutations are single assignments).
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Requests admission, waiting in the bounded queue if the cap is
    /// reached.
    pub fn admit(&self) -> Admission<'_> {
        let mut st = self.lock();
        if st.inflight < self.cap {
            st.inflight += 1;
            return Admission::Admitted(Permit { gate: self });
        }
        if st.waiting >= self.queue {
            drop(st);
            self.shed.fetch_add(1, Ordering::Relaxed);
            return Admission::QueueFull;
        }
        st.waiting += 1;
        let deadline = Instant::now() + self.max_wait;
        loop {
            if st.inflight < self.cap {
                st.inflight += 1;
                st.waiting -= 1;
                return Admission::Admitted(Permit { gate: self });
            }
            let now = Instant::now();
            if now >= deadline {
                st.waiting -= 1;
                drop(st);
                self.shed.fetch_add(1, Ordering::Relaxed);
                return Admission::WaitTimeout;
            }
            let (guard, _timed_out) = self
                .cv
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            st = guard;
        }
    }

    /// Requests currently admitted (executing).
    pub fn inflight(&self) -> usize {
        self.lock().inflight
    }

    /// Requests currently parked in the wait queue.
    pub fn waiting(&self) -> usize {
        self.lock().waiting
    }

    /// Total requests shed since construction.
    pub fn shed_total(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// The concurrency cap.
    pub fn cap(&self) -> usize {
        self.cap
    }

    fn release(&self) {
        let mut st = self.lock();
        st.inflight = st.inflight.saturating_sub(1);
        drop(st);
        self.cv.notify_one();
    }
}

/// An admitted slot; releases on drop (including during unwinding).
pub struct Permit<'a> {
    gate: &'a Gate,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        self.gate.release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn admits_up_to_cap_then_sheds_past_queue() {
        let gate = Gate::new(2, 1, Duration::from_millis(10));
        let p1 = match gate.admit() {
            Admission::Admitted(p) => p,
            _ => panic!("first admit must succeed"),
        };
        let p2 = match gate.admit() {
            Admission::Admitted(p) => p,
            _ => panic!("second admit must succeed"),
        };
        assert_eq!(gate.inflight(), 2);
        // Third waits (queue slot) and times out; no slot frees.
        assert!(matches!(gate.admit(), Admission::WaitTimeout));
        assert_eq!(gate.shed_total(), 1);
        drop(p1);
        drop(p2);
        assert_eq!(gate.inflight(), 0);
    }

    #[test]
    fn queue_full_sheds_immediately() {
        let gate = Arc::new(Gate::new(1, 1, Duration::from_millis(400)));
        let _p = match gate.admit() {
            Admission::Admitted(p) => p,
            _ => panic!(),
        };
        // Fill the single queue slot from another thread.
        let g2 = Arc::clone(&gate);
        let waiter = std::thread::spawn(move || matches!(g2.admit(), Admission::WaitTimeout));
        // Give the waiter time to park.
        while gate.waiting() == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        // Queue is now full: shed without waiting.
        let t0 = Instant::now();
        assert!(matches!(gate.admit(), Admission::QueueFull));
        assert!(t0.elapsed() < Duration::from_millis(100));
        assert!(waiter.join().unwrap());
    }

    #[test]
    fn waiter_gets_freed_slot() {
        let gate = Arc::new(Gate::new(1, 4, Duration::from_secs(5)));
        let p = match gate.admit() {
            Admission::Admitted(p) => p,
            _ => panic!(),
        };
        let g2 = Arc::clone(&gate);
        let waiter = std::thread::spawn(move || matches!(g2.admit(), Admission::Admitted(_)));
        while gate.waiting() == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        drop(p);
        assert!(waiter.join().unwrap());
        assert_eq!(gate.inflight(), 0);
    }

    #[test]
    fn permit_released_on_panic() {
        let gate = Gate::new(1, 0, Duration::from_millis(1));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _p = match gate.admit() {
                Admission::Admitted(p) => p,
                _ => panic!("admit failed"),
            };
            panic!("handler crash");
        }));
        assert!(result.is_err());
        assert_eq!(gate.inflight(), 0, "panic must not leak the slot");
        assert!(matches!(gate.admit(), Admission::Admitted(_)));
    }
}
