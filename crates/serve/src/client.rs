//! A minimal blocking HTTP/1.1 client for the load generator, the chaos
//! harness, and CI smoke checks. One request per call over a fresh
//! connection ([`request`]) or a reusable keep-alive connection
//! ([`Conn`]). Deliberately tiny: exactly the subset the server speaks.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A parsed response.
#[derive(Debug)]
pub struct ClientResponse {
    pub status: u16,
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// First value of a header, case-insensitive.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Body as UTF-8 (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Errors a client call can hit.
#[derive(Debug)]
pub enum ClientError {
    Io(std::io::Error),
    BadResponse(String),
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::BadResponse(m) => write!(f, "bad response: {m}"),
        }
    }
}

/// A keep-alive connection to the server.
pub struct Conn {
    stream: TcpStream,
    carry: Vec<u8>,
}

impl Conn {
    /// Connects with the given socket timeout (applied to reads and
    /// writes).
    pub fn connect(addr: SocketAddr, timeout: Duration) -> Result<Conn, ClientError> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        Ok(Conn {
            stream,
            carry: Vec::new(),
        })
    }

    /// Sends one request and reads the response.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: &[u8],
    ) -> Result<ClientResponse, ClientError> {
        let mut head = format!("{method} {path} HTTP/1.1\r\nhost: shapefrag\r\n");
        for (n, v) in headers {
            head.push_str(&format!("{n}: {v}\r\n"));
        }
        head.push_str(&format!("content-length: {}\r\n\r\n", body.len()));
        self.stream.write_all(head.as_bytes())?;
        self.stream.write_all(body)?;
        self.stream.flush()?;
        self.read_response()
    }

    /// Writes raw bytes without framing (for chaos tests).
    pub fn write_raw(&mut self, bytes: &[u8]) -> Result<(), ClientError> {
        self.stream.write_all(bytes)?;
        self.stream.flush()?;
        Ok(())
    }

    /// Reads one response off the wire (for chaos tests that hand-craft
    /// the request bytes).
    pub fn read_response(&mut self) -> Result<ClientResponse, ClientError> {
        let mut buf = std::mem::take(&mut self.carry);
        let mut chunk = [0u8; 4096];
        let head_end = loop {
            if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break pos;
            }
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(ClientError::BadResponse(
                    "connection closed before response head".into(),
                ));
            }
            buf.extend_from_slice(&chunk[..n]);
        };
        let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
        let mut lines = head.split("\r\n");
        let status_line = lines.next().unwrap_or_default();
        let status = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse::<u16>().ok())
            .ok_or_else(|| ClientError::BadResponse(format!("bad status line '{status_line}'")))?;
        let mut headers = Vec::new();
        for line in lines {
            if let Some((n, v)) = line.split_once(':') {
                headers.push((n.trim().to_ascii_lowercase(), v.trim().to_string()));
            }
        }
        let content_length = headers
            .iter()
            .find(|(n, _)| n == "content-length")
            .and_then(|(_, v)| v.parse::<usize>().ok())
            .unwrap_or(0);
        let mut body: Vec<u8> = buf[head_end + 4..].to_vec();
        while body.len() < content_length {
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(ClientError::BadResponse(
                    "connection closed mid-body".into(),
                ));
            }
            body.extend_from_slice(&chunk[..n]);
        }
        self.carry = body.split_off(content_length);
        Ok(ClientResponse {
            status,
            headers,
            body,
        })
    }

    /// The underlying stream (for chaos tests that need shutdown/linger
    /// tricks).
    pub fn stream(&mut self) -> &mut TcpStream {
        &mut self.stream
    }
}

/// One-shot request over a fresh connection.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &[u8],
) -> Result<ClientResponse, ClientError> {
    let mut conn = Conn::connect(addr, Duration::from_secs(30))?;
    conn.request(method, path, headers, body)
}
