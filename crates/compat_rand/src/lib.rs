//! Minimal offline stand-in for [`rand`] 0.8.
//!
//! Provides `StdRng` (a SplitMix64 generator — deterministic, seedable,
//! statistically fine for workload synthesis, *not* cryptographic),
//! the `Rng`/`SeedableRng` traits with `gen_range`/`gen_bool`, and
//! `seq::SliceRandom` with `choose`/`shuffle`. Workload generators in this
//! workspace only rely on determinism for a fixed seed, which this
//! implementation guarantees (the exact stream differs from upstream
//! `rand`, so regenerated datasets differ in content but not in shape).
#![forbid(unsafe_code)]

use std::ops::Range;

/// Core trait: a source of pseudo-random `u64`s plus derived helpers.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from a half-open range.
pub trait SampleUniform: PartialOrd + Copy {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range called with empty range");
                let span = (high as i128 - low as i128) as u128;
                let draw = ((rng.next_u64() as u128) % span) as i128;
                (low as i128 + draw) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range called with empty range");
                // 53 random bits → uniform in [0, 1).
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                low + (high - low) * unit as $t
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Range arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

/// The user-facing random-value API (blanket-implemented for any core rng).
pub trait Rng: RngCore {
    /// Uniform draw from a half-open range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice extensions: uniform element choice and Fisher–Yates shuffle.
    pub trait SliceRandom {
        type Item;
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..i + 1));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(0.0..1.5);
            assert!((0.0..1.5).contains(&f));
            let i = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn choose_and_shuffle_cover_all_elements() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: Vec<u32> = Vec::new();
        assert!(empty.choose(&mut rng).is_none());
    }
}
