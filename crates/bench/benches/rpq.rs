//! Microbenchmarks for the regular-path-query engine: evaluation
//! `⟦E⟧^G(a)` and tracing `graph(paths(E, G, a, X))` across path-expression
//! classes (the core primitives behind both Table 1 and Table 2).

use std::collections::BTreeSet;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use shapefrag_rdf::Term;
use shapefrag_shacl::rpq::CompiledPath;
use shapefrag_shacl::PathExpr;
use shapefrag_workloads::tyrolean::{generate, schema, TyroleanConfig};

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500))
}

fn bench_rpq(c: &mut Criterion) {
    let graph = generate(&TyroleanConfig::new(3_000, 7));
    let review = graph
        .id_of(&Term::iri("http://tkg.example.org/review0"))
        .unwrap();
    let lodging = graph
        .id_of(&Term::iri("http://tkg.example.org/lodging0"))
        .unwrap();

    let paths: Vec<(&str, PathExpr, shapefrag_rdf::TermId)> = vec![
        ("simple-prop", PathExpr::Prop(schema("author")), review),
        (
            "inverse",
            PathExpr::Prop(schema("itemReviewed")).inverse(),
            lodging,
        ),
        (
            "sequence",
            PathExpr::Prop(schema("itemReviewed")).then(PathExpr::Prop(schema("location"))),
            review,
        ),
        (
            "alternative",
            PathExpr::Prop(schema("author")).or(PathExpr::Prop(schema("itemReviewed"))),
            review,
        ),
        (
            "star",
            PathExpr::Prop(schema("itemReviewed"))
                .or(PathExpr::Prop(schema("location")))
                .star(),
            review,
        ),
        (
            "two-hop-inverse",
            PathExpr::Prop(schema("itemReviewed"))
                .then(PathExpr::Prop(schema("itemReviewed")).inverse()),
            review,
        ),
    ];

    let mut group = c.benchmark_group("rpq_eval");
    for (name, path, from) in &paths {
        let compiled = CompiledPath::new(path, &graph);
        group.bench_with_input(
            BenchmarkId::from_parameter(name),
            &compiled,
            |b, compiled| {
                b.iter(|| compiled.eval_from(&graph, *from));
            },
        );
    }
    group.finish();

    let mut group = c.benchmark_group("rpq_trace");
    for (name, path, from) in &paths {
        let compiled = CompiledPath::new(path, &graph);
        let targets: BTreeSet<_> = compiled.eval_from(&graph, *from);
        if targets.is_empty() {
            continue;
        }
        group.bench_with_input(
            BenchmarkId::from_parameter(name),
            &compiled,
            |b, compiled| {
                b.iter(|| compiled.trace(&graph, *from, &targets));
            },
        );
    }
    group.finish();

    // Compilation cost itself.
    c.bench_function("rpq_compile_star_alt", |b| {
        let path = PathExpr::Prop(schema("a"))
            .or(PathExpr::Prop(schema("b")))
            .star()
            .then(PathExpr::Prop(schema("c")).opt());
        b.iter(|| CompiledPath::new(&path, &graph));
    });
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_rpq
}
criterion_main!(benches);
