//! Parser throughput: N-Triples and Turtle loading, plus shapes-graph
//! translation (Appendix A) — the data-ingestion side excluded from the
//! paper's timers but load-bearing for a practical engine.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use shapefrag_rdf::{ntriples, turtle};
use shapefrag_shacl::parser::parse_shapes_turtle;
use shapefrag_workloads::tyrolean::{generate, TyroleanConfig};

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500))
}

const SHAPES_TTL: &str = r#"
@prefix sh: <http://www.w3.org/ns/shacl#> .
@prefix ex: <http://e/> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
ex:S1 a sh:NodeShape ; sh:targetClass ex:Paper ;
  sh:property [ sh:path ex:author ; sh:minCount 1 ;
                sh:qualifiedValueShape [ sh:class ex:Student ] ;
                sh:qualifiedMinCount 1 ] ;
  sh:property [ sh:path ex:year ; sh:datatype xsd:integer ;
                sh:minInclusive 1900 ; sh:maxInclusive 2030 ] ;
  sh:property [ sh:path ( ex:venue ex:name ) ; sh:minCount 1 ] .
ex:S2 a sh:NodeShape ; sh:targetSubjectsOf ex:reviews ;
  sh:or ( ex:S3 ex:S4 ) ; sh:closed true ; sh:ignoredProperties ( ex:x ) .
ex:S3 a sh:NodeShape ; sh:property [ sh:path ex:score ; sh:lessThan ex:max ] .
ex:S4 a sh:NodeShape ; sh:property [ sh:path ex:label ; sh:uniqueLang true ;
  sh:languageIn ( "en" "de" ) ] .
"#;

fn bench_parsing(c: &mut Criterion) {
    let graph = generate(&TyroleanConfig::new(4_000, 3));
    let nt = ntriples::serialize(&graph);
    let ttl = turtle::serialize(
        &graph,
        &[
            ("s", "http://schema.example.org/"),
            ("d", "http://tkg.example.org/"),
        ],
    );

    let mut group = c.benchmark_group("parse");
    group.throughput(Throughput::Bytes(nt.len() as u64));
    group.bench_function("ntriples", |b| {
        b.iter(|| ntriples::parse(&nt).unwrap());
    });
    group.throughput(Throughput::Bytes(ttl.len() as u64));
    group.bench_function("turtle", |b| {
        b.iter(|| turtle::parse(&ttl).unwrap());
    });
    group.throughput(Throughput::Bytes(nt.len() as u64));
    group.bench_function("ntriples_serialize", |b| {
        b.iter(|| ntriples::serialize(&graph));
    });
    group.finish();

    c.bench_function("shapes_graph_translation", |b| {
        b.iter(|| parse_shapes_turtle(SHAPES_TTL).unwrap());
    });
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_parsing
}
criterion_main!(benches);
