//! Microbenchmark version of the Figure 1 comparison: plain validation vs.
//! instrumented validation with provenance extraction, on a slice of the
//! 57-shape suite over the tourism graph.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use shapefrag_core::validate_extract_fragment;
use shapefrag_shacl::validator::validate;
use shapefrag_shacl::Schema;
use shapefrag_workloads::shapes57::benchmark_shapes;
use shapefrag_workloads::tyrolean::{generate, TyroleanConfig};

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500))
}

fn bench_validation(c: &mut Criterion) {
    let graph = generate(&TyroleanConfig::new(2_500, 13));
    let shapes = benchmark_shapes();

    // A representative slice: existential, universal, pair, closed.
    for idx in [0usize, 4, 21, 40] {
        let def = shapes[idx].clone();
        let label = def
            .name
            .to_string()
            .rsplit('/')
            .next()
            .unwrap()
            .trim_end_matches('>')
            .to_string();
        let schema = Schema::new([def]).unwrap();
        let mut group = c.benchmark_group(format!("fig1_micro/{label}"));
        group.bench_with_input(BenchmarkId::from_parameter("validate"), &schema, |b, s| {
            b.iter(|| validate(s, &graph));
        });
        group.bench_with_input(
            BenchmarkId::from_parameter("validate+provenance"),
            &schema,
            |b, s| {
                b.iter(|| validate_extract_fragment(s, &graph));
            },
        );
        group.finish();
    }

    // The full suite at once (what a user would actually run).
    let full = Schema::new(shapes).unwrap();
    let mut group = c.benchmark_group("fig1_micro/full-suite");
    group.sample_size(10);
    group.bench_function("validate", |b| b.iter(|| validate(&full, &graph)));
    group.bench_function("validate+provenance", |b| {
        b.iter(|| validate_extract_fragment(&full, &graph))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_validation
}
criterion_main!(benches);
