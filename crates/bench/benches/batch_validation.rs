//! Set-at-a-time vs. per-node evaluation on the Tyrolean 57-shape suite:
//! the batch kernel (multi-source RPQ evaluation + shared conformance
//! memoization) against the per-node reference, for plain validation and
//! for validation with fragment extraction.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use shapefrag_core::{validate_extract_fragment, validate_extract_fragment_per_node};
use shapefrag_shacl::validator::{validate, validate_batch};
use shapefrag_shacl::Schema;
use shapefrag_workloads::shapes57::benchmark_shapes;
use shapefrag_workloads::tyrolean::{generate, TyroleanConfig};

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500))
}

fn bench_batch_validation(c: &mut Criterion) {
    let graph = generate(&TyroleanConfig::new(2_500, 13));
    let schema = Schema::new(benchmark_shapes()).unwrap();

    let mut group = c.benchmark_group("batch/validate");
    group.bench_function("per-node", |b| b.iter(|| validate(&schema, &graph)));
    group.bench_function("batch", |b| b.iter(|| validate_batch(&schema, &graph)));
    group.finish();

    let mut group = c.benchmark_group("batch/validate+extract");
    group.bench_function("per-node", |b| {
        b.iter(|| validate_extract_fragment_per_node(&schema, &graph))
    });
    group.bench_function("batch", |b| {
        b.iter(|| validate_extract_fragment(&schema, &graph))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_batch_validation
}
criterion_main!(benches);
