//! Microbenchmarks for the SPARQL engine and the §5.1 translation:
//! generated fragment queries vs. the native route, and the two evaluator
//! configurations (the Figure 3 "two engines").

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use shapefrag_core::fragment;
use shapefrag_core::to_sparql::{fragment_query, fragment_via_sparql};
use shapefrag_shacl::{Schema, Shape};
use shapefrag_sparql::eval::{eval_select, EvalConfig};
use shapefrag_sparql::parser::parse_select;
use shapefrag_workloads::dblp::{vardi_shape, Bibliography, DblpConfig};
use shapefrag_workloads::ecommerce::{generate, EcommerceConfig};

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500))
}

fn bench_sparql(c: &mut Criterion) {
    let shop = generate(&EcommerceConfig {
        products: 300,
        users: 200,
        seed: 5,
    });

    // Hand-written benchmark query (W03-style chain).
    let chain = parse_select(
        "PREFIX ec: <http://ec.example.org/vocab/>\n\
         SELECT * WHERE { ?v ec:caption ?c . ?v ec:hasReview ?r . ?r ec:title ?t . \
         ?r ec:reviewer ?u . ?w ec:follows ?u . }",
    )
    .unwrap();
    let mut group = c.benchmark_group("sparql_eval/chain-query");
    group.bench_function("indexed", |b| {
        b.iter(|| eval_select(&shop, &chain, &EvalConfig::indexed()).unwrap())
    });
    group.bench_function("naive", |b| {
        b.iter(|| eval_select(&shop, &chain, &EvalConfig::naive()).unwrap())
    });
    group.finish();

    // Generated fragment query vs native fragment (Figure 1 vs Figure 2 in
    // miniature).
    let schema = Schema::empty();
    let shape = Shape::geq(
        1,
        shapefrag_shacl::PathExpr::Prop(shapefrag_workloads::ecommerce::ec("hasReview")),
        Shape::geq(
            1,
            shapefrag_shacl::PathExpr::Prop(shapefrag_workloads::ecommerce::ec("reviewer")),
            Shape::True,
        ),
    );
    let mut group = c.benchmark_group("fragment_routes");
    group.bench_function("native", |b| {
        b.iter(|| fragment(&schema, &shop, std::slice::from_ref(&shape)))
    });
    group.bench_function("generated-sparql", |b| {
        b.iter(|| {
            fragment_via_sparql(
                &schema,
                &shop,
                std::slice::from_ref(&shape),
                &EvalConfig::indexed(),
            )
            .unwrap()
        })
    });
    group.finish();

    // Query generation itself (Prop 5.3 construction + printing).
    let bib = Bibliography::generate(&DblpConfig {
        first_year: 2019,
        last_year: 2021,
        papers_per_year: 150,
        new_authors_per_year: 60,
        seed: 9,
        ..DblpConfig::default()
    });
    let dblp_graph = bib.full_graph();
    let vardi = vardi_shape(2);
    c.bench_function("translate_vardi_fragment_query", |b| {
        b.iter(|| fragment_query(&schema, std::slice::from_ref(&vardi)).to_string())
    });
    c.bench_function("vardi2_fragment_via_sparql", |b| {
        b.iter(|| {
            fragment_via_sparql(
                &schema,
                &dblp_graph,
                std::slice::from_ref(&vardi),
                &EvalConfig::indexed(),
            )
            .unwrap()
        })
    });
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_sparql
}
criterion_main!(benches);
