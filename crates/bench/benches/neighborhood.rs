//! Microbenchmarks for neighborhood computation (Table 2), one per
//! neighborhood rule class, plus the fragment ablations called out in
//! DESIGN.md: batched vs. per-endpoint tracing and sequential vs. parallel
//! fragment extraction.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use shapefrag_core::{fragment, fragment_par, neighborhood};
use shapefrag_rdf::Term;
use shapefrag_shacl::shape::PathOrId;
use shapefrag_shacl::validator::Context;
use shapefrag_shacl::{PathExpr, Schema, Shape};
use shapefrag_workloads::tyrolean::{generate, schema, TyroleanConfig};

fn config() -> Criterion {
    Criterion::default()
        .sample_size(15)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500))
}

fn bench_neighborhood(c: &mut Criterion) {
    let graph = generate(&TyroleanConfig::new(2_000, 11));
    let empty = Schema::empty();
    let review = graph
        .id_of(&Term::iri("http://tkg.example.org/review0"))
        .unwrap();
    let lodging = graph
        .id_of(&Term::iri("http://tkg.example.org/lodging0"))
        .unwrap();

    let cases: Vec<(&str, Shape, shapefrag_rdf::TermId)> = vec![
        (
            "geq-existential",
            Shape::geq(1, PathExpr::Prop(schema("author")), Shape::True),
            review,
        ),
        (
            "geq-nested",
            Shape::geq(
                1,
                PathExpr::Prop(schema("itemReviewed")),
                Shape::geq(1, PathExpr::Prop(schema("location")), Shape::True),
            ),
            review,
        ),
        (
            "forall",
            Shape::for_all(
                PathExpr::Prop(schema("makesOffer")),
                Shape::geq(1, PathExpr::Prop(schema("price")), Shape::True),
            ),
            lodging,
        ),
        (
            "leq-negated-endpoints",
            Shape::leq(
                5,
                PathExpr::Prop(schema("makesOffer")),
                Shape::geq(1, PathExpr::Prop(schema("price")), Shape::True),
            ),
            lodging,
        ),
        (
            "not-eq",
            Shape::Eq(
                PathOrId::Path(PathExpr::Prop(schema("name"))),
                schema("telephone"),
            )
            .not(),
            lodging,
        ),
        (
            "not-closed",
            Shape::Closed([schema("name")].into_iter().collect()).not(),
            lodging,
        ),
    ];

    let mut group = c.benchmark_group("neighborhood");
    for (name, shape, node) in &cases {
        group.bench_with_input(BenchmarkId::from_parameter(name), shape, |b, shape| {
            b.iter(|| {
                let mut ctx = Context::new(&empty, &graph);
                neighborhood(&mut ctx, *node, shape)
            });
        });
    }
    group.finish();

    // Fragment extraction: sequential vs parallel (ablation).
    let frag_shape = Shape::geq(
        1,
        PathExpr::Prop(schema("author")),
        Shape::geq(1, PathExpr::Prop(schema("email")), Shape::True),
    );
    let mut group = c.benchmark_group("fragment");
    group.bench_function("sequential", |b| {
        b.iter(|| fragment(&empty, &graph, std::slice::from_ref(&frag_shape)));
    });
    for workers in [2usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("parallel", workers),
            &workers,
            |b, &workers| {
                b.iter(|| fragment_par(&empty, &graph, std::slice::from_ref(&frag_shape), workers));
            },
        );
    }
    group.finish();
}

/// Ablation (DESIGN.md): one batched backward product-BFS over the full
/// endpoint set vs. one trace call per endpoint.
fn bench_trace_batching(c: &mut Criterion) {
    use shapefrag_shacl::rpq::CompiledPath;
    use std::collections::BTreeSet;

    let graph = generate(&TyroleanConfig::new(2_000, 17));
    let review = graph
        .id_of(&Term::iri("http://tkg.example.org/review0"))
        .unwrap();
    let path =
        PathExpr::Prop(schema("itemReviewed")).then(PathExpr::Prop(schema("location")).opt());
    let compiled = CompiledPath::new(&path, &graph);
    let targets: BTreeSet<_> = compiled.eval_from(&graph, review);
    if targets.is_empty() {
        return;
    }
    let mut group = c.benchmark_group("trace_ablation");
    group.bench_function("batched", |b| {
        b.iter(|| compiled.trace(&graph, review, &targets));
    });
    group.bench_function("per-endpoint", |b| {
        b.iter(|| {
            let mut out = BTreeSet::new();
            for &x in &targets {
                out.extend(compiled.trace(&graph, review, &BTreeSet::from([x])));
            }
            out
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_neighborhood, bench_trace_batching
}
criterion_main!(benches);
