//! **Figure 2** — provenance computation by translation to SPARQL (§5.3.2).
//!
//! For each of the 57 benchmark shapes, the request shape `φ ∧ τ` is
//! translated into the fragment query of Corollary 5.5 and executed by the
//! SPARQL engine over four graph sizes. Following the paper, shapes are
//! first *reduced* by substituting ⊤ for node tests (preserving the
//! graph-navigational structure); an intermediate-result cap models the
//! out-of-memory/timeout behavior of the paper's setup, where only 13 of
//! 57 generated queries were executable and one retrieved no triples —
//! Figure 2 plots the runtimes of the remaining 12.
//!
//! Expected shape of the results: only a minority of the generated queries
//! complete within budget; their runtimes grow with graph size and sit far
//! above the instrumented-validator route of Figure 1.

use shapefrag_bench::{ms, print_table, time, ExpOptions};
use shapefrag_core::to_sparql::fragment_query;
use shapefrag_core::validate_extract_fragment;
use shapefrag_shacl::{Schema, Shape};
use shapefrag_sparql::eval::{bindings_to_graph, eval_select, EvalConfig};
use shapefrag_workloads::shapes57::benchmark_shapes;
use shapefrag_workloads::tyrolean::{generate, sample_induced, TyroleanConfig};

struct QueryRow {
    shape: String,
    query_chars: usize,
    /// Per graph size: runtime in ms, or null when a budget was exceeded.
    runtimes_ms: Vec<Option<f64>>,
    fragment_triples: Vec<Option<usize>>,
    /// Reference: the instrumented-validator route on the largest graph.
    validator_route_ms: f64,
}

struct Fig2Results {
    sizes: Vec<usize>,
    cap: usize,
    executable: usize,
    executable_nonempty: usize,
    rows: Vec<QueryRow>,
}

shapefrag_bench::impl_to_json!(QueryRow {
    shape,
    query_chars,
    runtimes_ms,
    fragment_triples,
    validator_route_ms,
});
shapefrag_bench::impl_to_json!(Fig2Results {
    sizes,
    cap,
    executable,
    executable_nonempty,
    rows,
});

/// The paper's reduction: substitute ⊤ for node tests.
fn reduce(shape: &Shape) -> Shape {
    match shape {
        Shape::Test(_) => Shape::True,
        Shape::Not(inner) => reduce(inner).not(),
        Shape::And(items) => Shape::And(items.iter().map(reduce).collect()),
        Shape::Or(items) => Shape::Or(items.iter().map(reduce).collect()),
        Shape::Geq(n, e, inner) => Shape::Geq(*n, e.clone(), Box::new(reduce(inner))),
        Shape::Leq(n, e, inner) => Shape::Leq(*n, e.clone(), Box::new(reduce(inner))),
        Shape::ForAll(e, inner) => Shape::ForAll(e.clone(), Box::new(reduce(inner))),
        other => other.clone(),
    }
}

fn main() {
    let opts = ExpOptions::from_args();
    let base_individuals = opts.scaled(8_000);
    let samples: Vec<usize> = [1usize, 2, 3, 4]
        .iter()
        .map(|k| k * base_individuals / 9)
        .collect();
    let cap = opts.scaled(500_000);

    eprintln!("generating tourism graph with {base_individuals} individuals…");
    let full = generate(&TyroleanConfig::new(base_individuals, 0xF162));
    let graphs: Vec<_> = samples
        .iter()
        .enumerate()
        .map(|(i, &k)| {
            let g = sample_induced(&full, k, 200 + i as u64);
            eprintln!("sample {k} individuals → {} triples", g.len());
            g
        })
        .collect();
    let sizes: Vec<usize> = graphs.iter().map(|g| g.len()).collect();

    let schema = Schema::empty();
    let config = EvalConfig::indexed()
        .with_cap(cap)
        .with_timeout(std::time::Duration::from_secs(8));
    let mut rows = Vec::new();
    let mut executable = 0usize;
    let mut executable_nonempty = 0usize;

    for def in benchmark_shapes() {
        let request = reduce(&def.shape.clone().and(def.target.clone()));
        let query = fragment_query(&schema, std::slice::from_ref(&request));
        let query_chars = query.to_string().len();
        // Reference point: the §5.2 instrumented-validator route on the
        // largest graph (with the same reduced shape).
        let reduced_def = shapefrag_shacl::ShapeDef::new(
            def.name.clone(),
            reduce(&def.shape),
            def.target.clone(),
        );
        let single = Schema::new([reduced_def]).expect("singleton schema");
        let (_, t_validator) = shapefrag_bench::time(|| {
            validate_extract_fragment(&single, graphs.last().expect("graphs exist"))
        });
        let mut runtimes = Vec::new();
        let mut frag_sizes = Vec::new();
        let mut all_ok = true;
        let mut any_triples = false;
        for graph in &graphs {
            let (result, elapsed) = time(|| eval_select(graph, &query, &config));
            match result {
                Ok(solutions) => {
                    let frag = bindings_to_graph(&solutions, "s", "p", "o");
                    any_triples |= !frag.is_empty();
                    runtimes.push(Some(ms(elapsed)));
                    frag_sizes.push(Some(frag.len()));
                }
                Err(_) => {
                    all_ok = false;
                    runtimes.push(None);
                    frag_sizes.push(None);
                }
            }
        }
        if all_ok {
            executable += 1;
            if any_triples {
                executable_nonempty += 1;
            }
        }
        rows.push(QueryRow {
            shape: shape_label(&def.name),
            query_chars,
            runtimes_ms: runtimes,
            fragment_triples: frag_sizes,
            validator_route_ms: ms(t_validator),
        });
    }

    println!("\nFigure 2 — shape-fragment queries in SPARQL (cap {cap} intermediate bindings)\n");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let mut cells = vec![r.shape.clone(), format!("{}", r.query_chars)];
            for rt in &r.runtimes_ms {
                cells.push(match rt {
                    Some(t) => format!("{t:.1}ms"),
                    None => "—".to_string(),
                });
            }
            cells.push(format!("{:.1}ms", r.validator_route_ms));
            cells
        })
        .collect();
    let size_headers: Vec<String> = sizes.iter().map(|s| format!("{}k", s / 1000)).collect();
    let mut headers: Vec<&str> = vec!["shape", "query chars"];
    headers.extend(size_headers.iter().map(|s| s.as_str()));
    headers.push("validator route (largest)");
    print_table(&headers, &table);

    println!(
        "\nexecutable on all sizes: {executable} of 57 ({executable_nonempty} retrieving triples)"
    );
    println!("paper reference: 13 of 57 executable, 12 plotted (one retrieves nothing);\nruntimes grow with graph size and exceed validator-based extraction by orders of magnitude.");

    opts.write_json(
        "fig2_sparql",
        &Fig2Results {
            sizes,
            cap,
            executable,
            executable_nonempty,
            rows,
        },
    );
}

fn shape_label(name: &shapefrag_rdf::Term) -> String {
    let text = name.to_string();
    text.rsplit('/')
        .next()
        .unwrap_or(&text)
        .trim_end_matches('>')
        .to_string()
}
