//! **Robustness experiment** — the cost of resource governance.
//!
//! The governed kernels thread an [`ExecCtx`] (step budget, memory
//! estimate, deadline, cancellation) through every hot loop. This
//! experiment quantifies what that bookkeeping costs when nothing faults:
//! per graph size, the median wall-clock time (after a discarded warmup
//! round per side) of `validate_batch` vs. `validate_batch_governed` with
//! an unbounded context, and the relative overhead — clamped at 0 for the
//! headline number (governance cannot make the kernel faster; negative
//! medians are noise) with the raw value kept in `raw_overhead_pct`. It
//! also measures how quickly a governed run aborts once its wall-clock
//! deadline expires (abort latency = observed runtime minus the
//! configured deadline).
//!
//! Results are written to `BENCH_robustness.json`. The contract (DESIGN.md
//! §9) is ≤ 5% governance overhead on the largest workload graph.

use std::time::Duration;

use shapefrag_bench::{ms, print_table, time, write_json_to, ExpOptions};
use shapefrag_shacl::validator::{validate_batch, validate_batch_governed};
use shapefrag_shacl::{Budget, EngineError, ExecCtx, Schema};
use shapefrag_workloads::shapes57::benchmark_shapes;
use shapefrag_workloads::tyrolean::{generate, sample_induced, TyroleanConfig};

struct OverheadRow {
    individuals: usize,
    triples: usize,
    ungoverned_ms: f64,
    governed_ms: f64,
    /// Reported overhead, clamped at 0: the governed path cannot be
    /// genuinely faster, so a negative median difference is measurement
    /// noise and reads as "0% overhead".
    overhead_pct: f64,
    /// The unclamped median difference, kept so noise stays visible.
    raw_overhead_pct: f64,
}

struct AbortRow {
    deadline_ms: f64,
    observed_ms: f64,
    latency_ms: f64,
}

struct RobustnessResults {
    suite: String,
    shape_count: usize,
    runs: usize,
    rows: Vec<OverheadRow>,
    largest_overhead_pct: f64,
    overhead_budget_pct: f64,
    within_budget: bool,
    aborts: Vec<AbortRow>,
}

shapefrag_bench::impl_to_json!(OverheadRow {
    individuals,
    triples,
    ungoverned_ms,
    governed_ms,
    overhead_pct,
    raw_overhead_pct,
});
shapefrag_bench::impl_to_json!(AbortRow {
    deadline_ms,
    observed_ms,
    latency_ms,
});
shapefrag_bench::impl_to_json!(RobustnessResults {
    suite,
    shape_count,
    runs,
    rows,
    largest_overhead_pct,
    overhead_budget_pct,
    within_budget,
    aborts,
});

fn median(mut samples: Vec<Duration>) -> Duration {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn main() {
    let opts = ExpOptions::from_args();
    let base_individuals = opts.scaled(6_000);
    let sizes: Vec<usize> = [1usize, 2, 3]
        .iter()
        .map(|k| k * base_individuals / 3)
        .collect();
    let runs = opts.runs.max(5);

    eprintln!("generating tourism graph with {base_individuals} individuals…");
    let full = generate(&TyroleanConfig::new(base_individuals, 0xBA7C));
    let shapes = benchmark_shapes();
    let shape_count = shapes.len();
    let schema = Schema::new(shapes).expect("57-shape suite is nonrecursive");

    let mut rows = Vec::new();
    for (i, &individuals) in sizes.iter().enumerate() {
        let graph = if individuals >= base_individuals {
            full.clone()
        } else {
            sample_induced(&full, individuals, 300 + i as u64)
        };
        eprintln!(
            "size {individuals} individuals → {} triples ({} runs each)…",
            graph.len(),
            runs
        );

        // Both sides run over the CSR snapshot (the production read path).
        let frozen = graph.freeze();

        // Sanity: governance must not change the verdicts.
        assert_eq!(
            validate_batch(&schema, &frozen),
            validate_batch_governed(&schema, &frozen, ExecCtx::unbounded())
                .expect("unbounded context cannot fault"),
            "governed validation diverged at {individuals} individuals"
        );

        // Warmup: one discarded round per side pulls the graph and memo
        // structures into cache so the first timed run is not an outlier.
        validate_batch(&schema, &frozen);
        validate_batch_governed(&schema, &frozen, ExecCtx::unbounded()).unwrap();

        // Interleave so machine drift hits both sides equally.
        let mut s_plain = Vec::with_capacity(runs);
        let mut s_governed = Vec::with_capacity(runs);
        for _ in 0..runs {
            s_plain.push(time(|| validate_batch(&schema, &frozen)).1);
            s_governed.push(
                time(|| validate_batch_governed(&schema, &frozen, ExecCtx::unbounded()).unwrap()).1,
            );
        }
        let t_plain = median(s_plain);
        let t_governed = median(s_governed);
        let raw_overhead_pct = (ms(t_governed) / ms(t_plain).max(1e-9) - 1.0) * 100.0;
        rows.push(OverheadRow {
            individuals,
            triples: graph.len(),
            ungoverned_ms: ms(t_plain),
            governed_ms: ms(t_governed),
            overhead_pct: raw_overhead_pct.max(0.0),
            raw_overhead_pct,
        });
    }

    // Deadline abort latency: the gap between the configured deadline and
    // the moment the fault actually surfaces.
    let mut aborts = Vec::new();
    let full_frozen = full.freeze();
    for deadline in [Duration::from_millis(1), Duration::from_millis(5)] {
        let exec = ExecCtx::with_budget(Budget::unlimited().deadline(deadline));
        let (res, observed) = time(|| validate_batch_governed(&schema, &full_frozen, exec));
        match res {
            Err(EngineError::DeadlineExceeded { .. }) => {}
            other => {
                eprintln!("warning: {deadline:?} deadline did not fault ({other:?})");
                continue;
            }
        }
        aborts.push(AbortRow {
            deadline_ms: ms(deadline),
            observed_ms: ms(observed),
            latency_ms: ms(observed) - ms(deadline),
        });
    }

    println!("\nGovernance overhead (57-shape suite, median of {runs})\n");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{}", r.individuals),
                format!("{}", r.triples),
                format!("{:.1}ms", r.ungoverned_ms),
                format!("{:.1}ms", r.governed_ms),
                format!("{:.2}%", r.overhead_pct),
                format!("{:+.2}%", r.raw_overhead_pct),
            ]
        })
        .collect();
    print_table(
        &[
            "individuals",
            "triples",
            "ungoverned",
            "governed",
            "overhead",
            "raw",
        ],
        &table,
    );
    if !aborts.is_empty() {
        println!("\nDeadline abort latency\n");
        let table: Vec<Vec<String>> = aborts
            .iter()
            .map(|r| {
                vec![
                    format!("{:.1}ms", r.deadline_ms),
                    format!("{:.1}ms", r.observed_ms),
                    format!("{:.2}ms", r.latency_ms),
                ]
            })
            .collect();
        print_table(&["deadline", "observed", "latency"], &table);
    }

    let largest_overhead_pct = rows.last().map(|r| r.overhead_pct).unwrap_or(0.0);
    let overhead_budget_pct = 5.0;
    let within_budget = largest_overhead_pct <= overhead_budget_pct;
    if !within_budget {
        eprintln!(
            "warning: governance overhead {largest_overhead_pct:.2}% exceeds the \
             {overhead_budget_pct}% budget on the largest graph"
        );
    }

    let results = RobustnessResults {
        suite: "tyrolean-57".to_string(),
        shape_count,
        runs,
        rows,
        largest_overhead_pct,
        overhead_budget_pct,
        within_budget,
        aborts,
    };
    let out = opts.out.as_deref().unwrap_or("BENCH_robustness.json");
    write_json_to(out, &results);
    println!("\nwrote {out}");
}
