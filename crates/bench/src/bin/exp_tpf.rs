//! **Proposition 6.2** — which Triple Pattern Fragments are expressible as
//! shape fragments.
//!
//! For each of the seven expressible TPF forms, the paper's request shape
//! is evaluated as a shape fragment and compared against the TPF's images
//! on randomized graphs. For the inexpressible forms, the Appendix D
//! counterexample graphs are replayed: the TPF returns exactly one of two
//! look-alike triples, which Lemma D.1 shows no shape fragment can
//! separate.

use shapefrag_bench::{print_table, ExpOptions};
use shapefrag_core::fragment;
use shapefrag_rdf::{Graph, Iri, Term, Triple};
use shapefrag_shacl::Schema;
use shapefrag_workloads::tpf::{all_tpf_forms, counterexample_graph, tpf_shape};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

struct TpfRow {
    form: String,
    expressible: bool,
    shape: Option<String>,
    verdict: String,
}

struct TpfResults {
    expressible_forms: usize,
    inexpressible_forms: usize,
    rows: Vec<TpfRow>,
}

shapefrag_bench::impl_to_json!(TpfRow {
    form,
    expressible,
    shape,
    verdict
});
shapefrag_bench::impl_to_json!(TpfResults {
    expressible_forms,
    inexpressible_forms,
    rows,
});

fn random_graph(seed: u64, triples: usize) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::new();
    let node = |i: usize| {
        Term::iri(match i {
            0 => "http://tpf.example.org/c".to_string(),
            1 => "http://tpf.example.org/d".to_string(),
            i => format!("http://tpf.example.org/n{i}"),
        })
    };
    let pred = |i: usize| {
        Iri::new(match i {
            0 => "http://tpf.example.org/p".to_string(),
            i => format!("http://tpf.example.org/q{i}"),
        })
    };
    for _ in 0..triples {
        g.insert(Triple::new(
            node(rng.gen_range(0..10)),
            pred(rng.gen_range(0..4)),
            node(rng.gen_range(0..10)),
        ));
    }
    g
}

fn main() {
    let opts = ExpOptions::from_args();
    let trials = opts.scaled(25);
    let schema = Schema::empty();
    let mut rows = Vec::new();
    let mut n_expressible = 0usize;

    for (form, query, expressible) in all_tpf_forms() {
        if expressible {
            n_expressible += 1;
            let shape = tpf_shape(&query).expect("expressible form translates");
            let mut ok = true;
            for seed in 0..trials as u64 {
                let g = random_graph(seed, 40);
                let via_tpf = query.eval(&g);
                let via_frag = fragment(&schema, &g, std::slice::from_ref(&shape));
                if via_tpf != via_frag {
                    ok = false;
                    break;
                }
            }
            rows.push(TpfRow {
                form: form.to_string(),
                expressible: true,
                shape: Some(shape.to_string()),
                verdict: if ok {
                    format!("fragment = TPF images on {trials} random graphs")
                } else {
                    "FAILED".to_string()
                },
            });
        } else {
            assert!(
                tpf_shape(&query).is_none(),
                "{form} unexpectedly translated"
            );
            let g = counterexample_graph(&query).expect("counterexample exists");
            let images = query.eval(&g);
            rows.push(TpfRow {
                form: form.to_string(),
                expressible: false,
                shape: None,
                verdict: format!(
                    "counterexample: images keep {} of {} look-alike triples (Lemma D.1)",
                    images.len(),
                    g.len()
                ),
            });
        }
    }

    println!("\nProposition 6.2 — TPF expressibility as shape fragments\n");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.form.clone(),
                if r.expressible { "yes" } else { "no" }.to_string(),
                r.verdict.clone(),
            ]
        })
        .collect();
    print_table(&["TPF form", "expressible", "verdict"], &table);
    println!(
        "\n{} expressible forms, {} inexpressible forms checked",
        n_expressible,
        rows.len() - n_expressible
    );
    println!("paper reference: exactly the 7 listed forms are expressible.");

    assert!(rows.iter().all(|r| r.verdict != "FAILED"));
    assert_eq!(n_expressible, 7);

    opts.write_json(
        "tpf_expressibility",
        &TpfResults {
            expressible_forms: n_expressible,
            inexpressible_forms: rows.len() - n_expressible,
            rows,
        },
    );
}
