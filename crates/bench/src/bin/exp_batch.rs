//! **Batch kernel experiment** — set-at-a-time vs. per-node evaluation.
//!
//! Runs the full Tyrolean 57-shape suite over a ladder of graph sizes and
//! measures, per size, the median wall-clock time of
//!
//! - plain validation: per-node `validate` vs. `validate_batch`
//!   (multi-source RPQ kernel + shared conformance memo), and
//! - validation with fragment extraction:
//!   `validate_extract_fragment_per_node` vs. the batch
//!   `validate_extract_fragment`, and
//! - the frozen backend: the same batch kernels over a [`FrozenGraph`]
//!   CSR snapshot (freeze time reported separately).
//!
//! Results (and the batch/per-node speedup per size) are written to
//! `BENCH_validation.json` in the working directory. Run with `--scale` to
//! shrink/grow the graphs and `--runs` to change the median sample count.

use std::time::Duration;

use shapefrag_analyze::{analyze_schema, simplify, SimplifyLevel};
use shapefrag_bench::{ms, print_table, time, write_json_to, ExpOptions};
use shapefrag_core::{
    validate_batch_par, validate_batch_par_stats, validate_extract_fragment,
    validate_extract_fragment_par, validate_extract_fragment_par_stats,
    validate_extract_fragment_per_node,
};
use shapefrag_shacl::validator::{validate, validate_batch};
use shapefrag_shacl::Schema;
use shapefrag_workloads::shapes57::benchmark_shapes;
use shapefrag_workloads::tyrolean::{generate, sample_induced, TyroleanConfig};

struct SizeRow {
    individuals: usize,
    triples: usize,
    freeze_ms: f64,
    validate_per_node_ms: f64,
    validate_batch_ms: f64,
    validate_speedup: f64,
    validate_frozen_ms: f64,
    validate_frozen_speedup: f64,
    extract_per_node_ms: f64,
    extract_batch_ms: f64,
    extract_speedup: f64,
    extract_frozen_ms: f64,
    extract_frozen_speedup: f64,
    parallel: Vec<ParRow>,
}

/// One thread-count measurement of the work-stealing engines over the
/// frozen snapshot, with the scheduler's own counters (speedups are
/// against the single-threaded frozen columns of the enclosing row).
struct ParRow {
    threads: usize,
    validate_par_frozen_ms: f64,
    validate_par_frozen_speedup: f64,
    extract_par_frozen_ms: f64,
    extract_par_frozen_speedup: f64,
    validate_work_units: usize,
    validate_steals: u64,
    validate_idle_fraction: f64,
    extract_work_units: usize,
    extract_steals: u64,
    extract_idle_fraction: f64,
}

struct BatchResults {
    suite: String,
    shape_count: usize,
    runs: usize,
    /// Logical cores of the benchmarking host — parallel speedups cannot
    /// exceed this no matter the requested thread counts.
    host_cores: usize,
    /// Static analysis of the 57-shape schema (graph-size independent).
    analyze_ms: f64,
    /// Fragment-level semantics-preserving simplification of the schema.
    simplify_ms: f64,
    rows: Vec<SizeRow>,
}

shapefrag_bench::impl_to_json!(SizeRow {
    individuals,
    triples,
    freeze_ms,
    validate_per_node_ms,
    validate_batch_ms,
    validate_speedup,
    validate_frozen_ms,
    validate_frozen_speedup,
    extract_per_node_ms,
    extract_batch_ms,
    extract_speedup,
    extract_frozen_ms,
    extract_frozen_speedup,
    parallel,
});
shapefrag_bench::impl_to_json!(ParRow {
    threads,
    validate_par_frozen_ms,
    validate_par_frozen_speedup,
    extract_par_frozen_ms,
    extract_par_frozen_speedup,
    validate_work_units,
    validate_steals,
    validate_idle_fraction,
    extract_work_units,
    extract_steals,
    extract_idle_fraction,
});
shapefrag_bench::impl_to_json!(BatchResults {
    suite,
    shape_count,
    runs,
    host_cores,
    analyze_ms,
    simplify_ms,
    rows,
});

fn median(mut samples: Vec<Duration>) -> Duration {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn main() {
    let opts = ExpOptions::from_args();
    let base_individuals = opts.scaled(6_000);
    let sizes: Vec<usize> = [1usize, 2, 3]
        .iter()
        .map(|k| k * base_individuals / 3)
        .collect();
    let runs = opts.runs.max(3);

    eprintln!("generating tourism graph with {base_individuals} individuals…");
    let full = generate(&TyroleanConfig::new(base_individuals, 0xBA7C));
    let shapes = benchmark_shapes();
    let shape_count = shapes.len();
    let schema = Schema::new(shapes).expect("57-shape suite is nonrecursive");

    // Static analysis and simplification are schema-level (independent of
    // the data graph); report their wall time alongside the kernels.
    let mut s_analyze = Vec::with_capacity(runs);
    let mut s_simplify = Vec::with_capacity(runs);
    for _ in 0..runs {
        s_analyze.push(time(|| analyze_schema(&schema, None)).1);
        s_simplify.push(time(|| simplify(&schema, SimplifyLevel::Fragment)).1);
    }
    let analyze_ms = ms(median(s_analyze));
    let simplify_ms = ms(median(s_simplify));
    eprintln!("schema analysis: analyze {analyze_ms:.2}ms, simplify {simplify_ms:.2}ms");

    let mut rows = Vec::new();
    for (i, &individuals) in sizes.iter().enumerate() {
        let graph = if individuals >= base_individuals {
            full.clone()
        } else {
            sample_induced(&full, individuals, 300 + i as u64)
        };
        eprintln!(
            "size {individuals} individuals → {} triples ({} runs each)…",
            graph.len(),
            runs
        );

        let (frozen, t_freeze) = time(|| graph.freeze());

        // Sanity: batch, per-node, frozen-backend, and the parallel engine
        // must agree before we time them.
        let reference = validate(&schema, &graph);
        assert_eq!(
            reference,
            validate_batch(&schema, &graph),
            "batch validation diverged from per-node at {individuals} individuals"
        );
        assert_eq!(
            reference,
            validate_batch(&schema, &frozen),
            "frozen validation diverged from mutable at {individuals} individuals"
        );
        let max_threads = opts.threads.iter().copied().max().unwrap_or(1);
        assert_eq!(
            reference,
            validate_batch_par(&schema, &frozen, max_threads),
            "parallel validation diverged at {individuals} individuals"
        );
        {
            let (seq_report, seq_frag) = validate_extract_fragment(&schema, &frozen);
            let (par_report, par_frag) =
                validate_extract_fragment_par(&schema, &frozen, max_threads);
            assert_eq!(
                seq_report, par_report,
                "parallel extraction report diverged at {individuals} individuals"
            );
            assert_eq!(
                seq_frag.to_graph(&frozen),
                par_frag.to_graph(&frozen),
                "parallel extraction fragment diverged at {individuals} individuals"
            );
        }

        // Interleave the four measurements so slow machine drift (thermal
        // throttling, allocator state) affects both sides equally.
        let mut s_val_per_node = Vec::with_capacity(runs);
        let mut s_val_batch = Vec::with_capacity(runs);
        let mut s_val_frozen = Vec::with_capacity(runs);
        let mut s_ext_per_node = Vec::with_capacity(runs);
        let mut s_ext_batch = Vec::with_capacity(runs);
        let mut s_ext_frozen = Vec::with_capacity(runs);
        for _ in 0..runs {
            s_val_per_node.push(time(|| validate(&schema, &graph)).1);
            s_val_batch.push(time(|| validate_batch(&schema, &graph)).1);
            s_val_frozen.push(time(|| validate_batch(&schema, &frozen)).1);
            s_ext_per_node.push(time(|| validate_extract_fragment_per_node(&schema, &graph)).1);
            s_ext_batch.push(time(|| validate_extract_fragment(&schema, &graph)).1);
            s_ext_frozen.push(time(|| validate_extract_fragment(&schema, &frozen)).1);
        }
        let t_val_per_node = median(s_val_per_node);
        let t_val_batch = median(s_val_batch);
        let t_val_frozen = median(s_val_frozen);
        let t_ext_per_node = median(s_ext_per_node);
        let t_ext_batch = median(s_ext_batch);
        let t_ext_frozen = median(s_ext_frozen);

        // The work-stealing engines at every requested thread count, with
        // the scheduler's own counters from the last run.
        let mut parallel = Vec::new();
        for &threads in &opts.threads {
            let mut s_val_par = Vec::with_capacity(runs);
            let mut s_ext_par = Vec::with_capacity(runs);
            let mut val_stats = None;
            let mut ext_stats = None;
            for _ in 0..runs {
                let ((_, vs), d) = time(|| validate_batch_par_stats(&schema, &frozen, threads));
                s_val_par.push(d);
                val_stats = Some(vs);
                let ((_, _, es), d) =
                    time(|| validate_extract_fragment_par_stats(&schema, &frozen, threads));
                s_ext_par.push(d);
                ext_stats = Some(es);
            }
            let t_val_par = median(s_val_par);
            let t_ext_par = median(s_ext_par);
            let val_stats = val_stats.unwrap();
            let ext_stats = ext_stats.unwrap();
            parallel.push(ParRow {
                threads,
                validate_par_frozen_ms: ms(t_val_par),
                validate_par_frozen_speedup: ms(t_val_frozen) / ms(t_val_par).max(1e-9),
                extract_par_frozen_ms: ms(t_ext_par),
                extract_par_frozen_speedup: ms(t_ext_frozen) / ms(t_ext_par).max(1e-9),
                validate_work_units: val_stats.units,
                validate_steals: val_stats.steals,
                validate_idle_fraction: val_stats.idle_fraction(),
                extract_work_units: ext_stats.units,
                extract_steals: ext_stats.steals,
                extract_idle_fraction: ext_stats.idle_fraction(),
            });
        }

        rows.push(SizeRow {
            individuals,
            triples: graph.len(),
            freeze_ms: ms(t_freeze),
            validate_per_node_ms: ms(t_val_per_node),
            validate_batch_ms: ms(t_val_batch),
            validate_speedup: ms(t_val_per_node) / ms(t_val_batch).max(1e-9),
            validate_frozen_ms: ms(t_val_frozen),
            validate_frozen_speedup: ms(t_val_batch) / ms(t_val_frozen).max(1e-9),
            extract_per_node_ms: ms(t_ext_per_node),
            extract_batch_ms: ms(t_ext_batch),
            extract_speedup: ms(t_ext_per_node) / ms(t_ext_batch).max(1e-9),
            extract_frozen_ms: ms(t_ext_frozen),
            extract_frozen_speedup: ms(t_ext_batch) / ms(t_ext_frozen).max(1e-9),
            parallel,
        });
    }

    println!("\nSet-at-a-time kernel vs. per-node evaluation (57-shape suite, median of {runs})");
    println!("schema static analysis: analyze {analyze_ms:.2}ms, simplify {simplify_ms:.2}ms\n");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{}", r.individuals),
                format!("{}", r.triples),
                format!("{:.2}ms", r.freeze_ms),
                format!("{:.1}ms", r.validate_per_node_ms),
                format!("{:.1}ms", r.validate_batch_ms),
                format!("{:.2}x", r.validate_speedup),
                format!("{:.1}ms", r.validate_frozen_ms),
                format!("{:.2}x", r.validate_frozen_speedup),
                format!("{:.1}ms", r.extract_per_node_ms),
                format!("{:.1}ms", r.extract_batch_ms),
                format!("{:.2}x", r.extract_speedup),
                format!("{:.1}ms", r.extract_frozen_ms),
                format!("{:.2}x", r.extract_frozen_speedup),
            ]
        })
        .collect();
    print_table(
        &[
            "individuals",
            "triples",
            "freeze",
            "validate/node",
            "validate/batch",
            "speedup",
            "validate/frozen",
            "vs batch",
            "extract/node",
            "extract/batch",
            "speedup",
            "extract/frozen",
            "vs batch",
        ],
        &table,
    );

    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "\nWork-stealing engines over the frozen snapshot ({host_cores} host core(s); \
         speedups vs. the 1-thread frozen columns)"
    );
    let par_table: Vec<Vec<String>> = rows
        .iter()
        .flat_map(|r| {
            r.parallel.iter().map(|p| {
                vec![
                    format!("{}", r.individuals),
                    format!("{}", p.threads),
                    format!("{:.1}ms", p.validate_par_frozen_ms),
                    format!("{:.2}x", p.validate_par_frozen_speedup),
                    format!("{:.1}ms", p.extract_par_frozen_ms),
                    format!("{:.2}x", p.extract_par_frozen_speedup),
                    format!("{}", p.validate_work_units),
                    format!("{}", p.validate_steals),
                    format!("{:.2}", p.validate_idle_fraction),
                ]
            })
        })
        .collect();
    print_table(
        &[
            "individuals",
            "threads",
            "validate/par",
            "speedup",
            "extract/par",
            "speedup",
            "units",
            "steals",
            "idle",
        ],
        &par_table,
    );

    let results = BatchResults {
        suite: "tyrolean-57".to_string(),
        shape_count,
        runs,
        host_cores,
        analyze_ms,
        simplify_ms,
        rows,
    };
    let out = opts.out.as_deref().unwrap_or("BENCH_validation.json");
    write_json_to(out, &results);
    println!("\nwrote {out}");
}
