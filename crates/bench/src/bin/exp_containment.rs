//! Experiment: subsumption-keyed memo reuse on an overlapping shape suite.
//!
//! Real-world schemas accumulate near-duplicate and weakened copies of the
//! same constraints (profile layering, versioned vocabularies, copy-paste
//! evolution). This experiment models that by augmenting the 57-shape
//! Tyrolean suite with an exact duplicate of every definition plus a
//! `minCount 1` weakening of every `minCount >= 2` definition, then
//! validates a Tyrolean graph two ways:
//!
//! - plain: [`validate_batch`] with a fresh memo, no containment index;
//! - containment: [`validate_batch_containment`] with a
//!   [`ContainmentMatrix`]-derived index attached, so decided bits of an
//!   equivalent or subsuming definition answer top-level checks without
//!   evaluating the shape body.
//!
//! The reports must be bit-identical (asserted before any timing); the win
//! is the fraction of top-level conformance checks answered by derivation
//! (`checks_avoided_pct`, expected well above 20% on this workload) and the
//! count of definitions that needed no body evaluation at all
//! (`shapes_skipped`). Writes `BENCH_containment.json`.
//!
//! Usage: `exp_containment [--scale F] [--runs N] [--out PATH]`

use std::sync::Arc;
use std::time::Duration;

use shapefrag_analyze::ContainmentMatrix;
use shapefrag_bench::{ms, print_table, time, write_json_to, ExpOptions};
use shapefrag_rdf::Term;
use shapefrag_shacl::validator::{validate_batch, validate_batch_containment, ConformanceMemo};
use shapefrag_shacl::{Schema, Shape, ShapeDef};
use shapefrag_workloads::shapes57::benchmark_shapes;
use shapefrag_workloads::tyrolean::{generate, TyroleanConfig};

struct ContainmentResults {
    suite: String,
    individuals: usize,
    triples: usize,
    shapes_base: usize,
    shapes_aug: usize,
    /// Containment edges (proper + equivalence halves) in the matrix.
    matrix_edges: usize,
    matrix_build_ms: f64,
    plain_ms: f64,
    containment_ms: f64,
    speedup: f64,
    /// Top-level `(definition, target node)` conformance checks.
    checked: u64,
    /// Checks answered from a related definition's memo bits.
    derived_hits: u64,
    /// Derivation attempts that found no usable related bit.
    derived_misses: u64,
    /// Definitions whose every target was answered by derivation.
    shapes_skipped: u64,
    /// `derived_hits / checked * 100` — the headline reuse number.
    checks_avoided_pct: f64,
}

shapefrag_bench::impl_to_json!(ContainmentResults {
    suite,
    individuals,
    triples,
    shapes_base,
    shapes_aug,
    matrix_edges,
    matrix_build_ms,
    plain_ms,
    containment_ms,
    speedup,
    checked,
    derived_hits,
    derived_misses,
    shapes_skipped,
    checks_avoided_pct,
});

fn median(mut samples: Vec<Duration>) -> Duration {
    samples.sort();
    samples[samples.len() / 2]
}

/// Derives a sibling definition name (`…Dup`, `…Weak`) from an IRI name.
fn derived_name(name: &Term, suffix: &str) -> Option<Term> {
    match name {
        Term::Iri(iri) => Some(Term::iri(format!("{}{}", iri.as_str(), suffix))),
        _ => None,
    }
}

/// The base suite plus an exact duplicate of every definition and a
/// `minCount 1` weakening of every `minCount >= 2` definition. Originals
/// come first so their bits are already in the memo when the derived
/// copies are checked.
fn augmented_suite() -> Vec<ShapeDef> {
    let base = benchmark_shapes();
    let mut defs = base.clone();
    for def in &base {
        if let Some(name) = derived_name(&def.name, "Dup") {
            defs.push(ShapeDef::new(name, def.shape.clone(), def.target.clone()));
        }
    }
    for def in &base {
        if let Shape::Geq(n, path, inner) = &def.shape {
            if *n >= 2 {
                if let Some(name) = derived_name(&def.name, "Weak") {
                    defs.push(ShapeDef::new(
                        name,
                        Shape::Geq(1, path.clone(), inner.clone()),
                        def.target.clone(),
                    ));
                }
            }
        }
    }
    defs
}

fn main() {
    let opts = ExpOptions::from_args();
    let individuals = opts.scaled(6_000);
    let runs = opts.runs.max(3);

    let graph = generate(&TyroleanConfig::new(individuals, 0xC0A17));
    let frozen = Arc::new(graph.freeze());
    let base = benchmark_shapes();
    let shapes_base = base.len();
    let defs = augmented_suite();
    let shapes_aug = defs.len();
    let schema = Schema::new(defs).expect("augmented suite is well-formed");

    let (matrix, t_matrix) = time(|| ContainmentMatrix::of_schema(&schema));
    let matrix_edges = matrix.edges.len();
    let index = Arc::new(matrix.to_index(&schema));

    // Correctness gate: containment-assisted validation must be
    // bit-identical to the plain batch driver before anything is timed.
    let baseline = validate_batch(&schema, frozen.as_ref());
    let memo = Arc::new(ConformanceMemo::new());
    memo.attach_containment(Arc::clone(&index));
    let (assisted, shapes_skipped) =
        validate_batch_containment(&schema, frozen.as_ref(), Arc::clone(&memo));
    assert_eq!(
        baseline, assisted,
        "containment-assisted report diverged from plain batch"
    );
    let (derived_hits, derived_misses) = memo.containment_counters();
    let checked = assisted.checked as u64;
    let checks_avoided_pct = if checked == 0 {
        0.0
    } else {
        derived_hits as f64 / checked as f64 * 100.0
    };
    if checks_avoided_pct <= 20.0 {
        eprintln!(
            "WARNING: only {checks_avoided_pct:.1}% of checks avoided \
             (expected > 20% on the duplicated suite)"
        );
    }

    let mut s_plain = Vec::with_capacity(runs);
    let mut s_cont = Vec::with_capacity(runs);
    for _ in 0..runs {
        let (_, t) = time(|| validate_batch(&schema, frozen.as_ref()));
        s_plain.push(t);
        let (_, t) = time(|| {
            let memo = Arc::new(ConformanceMemo::new());
            memo.attach_containment(Arc::clone(&index));
            validate_batch_containment(&schema, frozen.as_ref(), memo)
        });
        s_cont.push(t);
    }
    let t_plain = median(s_plain);
    let t_cont = median(s_cont);

    println!(
        "\nContainment-assisted batch validation \
         ({shapes_base}->{shapes_aug} shapes, median of {runs})\n"
    );
    let rows = vec![vec![
        format!("{individuals}"),
        format!("{checked}"),
        format!("{derived_hits}"),
        format!("{shapes_skipped}"),
        format!("{checks_avoided_pct:.1}%"),
        format!("{:.1}ms", ms(t_plain)),
        format!("{:.1}ms", ms(t_cont)),
        format!("{:.2}x", ms(t_plain) / ms(t_cont).max(1e-9)),
    ]];
    print_table(
        &[
            "indiv",
            "checked",
            "derived",
            "skipped",
            "avoided",
            "plain",
            "containment",
            "speedup",
        ],
        &rows,
    );

    let results = ContainmentResults {
        suite: "tyrolean-57-containment".to_string(),
        individuals,
        triples: frozen.len(),
        shapes_base,
        shapes_aug,
        matrix_edges,
        matrix_build_ms: ms(t_matrix),
        plain_ms: ms(t_plain),
        containment_ms: ms(t_cont),
        speedup: ms(t_plain) / ms(t_cont).max(1e-9),
        checked,
        derived_hits,
        derived_misses,
        shapes_skipped,
        checks_avoided_pct,
    };
    let out = opts.out.as_deref().unwrap_or("BENCH_containment.json");
    write_json_to(out, &results);
}
