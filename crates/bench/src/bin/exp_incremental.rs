//! **Incremental validation experiment** — delta-overlay maintenance vs.
//! re-freeze + from-scratch revalidation.
//!
//! Seeds an [`IncrementalValidator`] with the Tyrolean 57-shape suite
//! over a ladder of graph sizes, then applies random edit batches at
//! small/medium delta ratios (0.1%, 1%, 5% of the triple count; half
//! removals of resident triples, half fresh additions over the resident
//! vocabulary). Per `(size, ratio)` cell it reports the median wall-clock
//! of
//!
//! - the incremental path: `apply` (change-impact routing + selective
//!   memo invalidation over the [`DeltaGraph`] overlay), sequential and
//!   at the largest `--threads` count, and
//! - the scratch path: replay the edits into a mutable graph, re-freeze,
//!   and `validate_batch` the snapshot (what a non-incremental server
//!   has to do per batch),
//!
//! plus edits/sec and the incremental-vs-scratch speedup. Reports are
//! asserted identical before anything is timed. Results go to
//! `BENCH_incremental.json` (the tentpole acceptance line is ≥5x speedup
//! at the ≤1% ratio on the largest row).

use std::sync::Arc;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use shapefrag_bench::{ms, print_table, time, write_json_to, ExpOptions};
use shapefrag_core::{EditOp, EditScript, IncrementalValidator};
use shapefrag_rdf::{Graph, Triple};
use shapefrag_shacl::validator::validate_batch;
use shapefrag_shacl::Schema;
use shapefrag_workloads::shapes57::benchmark_shapes;
use shapefrag_workloads::tyrolean::{generate, sample_induced, TyroleanConfig};

/// Delta ratios measured per size (fraction of the resident triples).
const RATIOS: [f64; 3] = [0.001, 0.01, 0.05];

struct RatioRow {
    delta_ratio: f64,
    edits: usize,
    incremental_ms: f64,
    incremental_par_ms: f64,
    scratch_ms: f64,
    speedup: f64,
    speedup_par: f64,
    edits_per_sec: f64,
}

struct SizeRow {
    individuals: usize,
    triples: usize,
    seed_ms: f64,
    ratios: Vec<RatioRow>,
}

struct IncrementalResults {
    suite: String,
    shape_count: usize,
    runs: usize,
    par_threads: usize,
    rows: Vec<SizeRow>,
}

shapefrag_bench::impl_to_json!(RatioRow {
    delta_ratio,
    edits,
    incremental_ms,
    incremental_par_ms,
    scratch_ms,
    speedup,
    speedup_par,
    edits_per_sec,
});
shapefrag_bench::impl_to_json!(SizeRow {
    individuals,
    triples,
    seed_ms,
    ratios,
});
shapefrag_bench::impl_to_json!(IncrementalResults {
    suite,
    shape_count,
    runs,
    par_threads,
    rows,
});

fn median(mut samples: Vec<Duration>) -> Duration {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Builds an all-effective edit batch of `k` ops against `graph`: the
/// first half retracts resident triples, the second half asserts triples
/// absent from the graph but built entirely from its resident vocabulary
/// (so edits land inside the shapes' predicate alphabets, the worst case
/// for impact routing).
fn random_script(graph: &Graph, k: usize, seed: u64) -> EditScript {
    let mut rng = StdRng::seed_from_u64(seed);
    let resident: Vec<Triple> = graph.iter().collect();
    let mut ops = Vec::with_capacity(k);
    let removals = (k / 2).min(resident.len());
    let mut taken = std::collections::HashSet::new();
    while taken.len() < removals {
        let i = rng.gen_range(0..resident.len());
        if taken.insert(i) {
            ops.push(EditOp::Remove(resident[i].clone()));
        }
    }
    let mut added = std::collections::HashSet::new();
    while ops.len() < k {
        let s = &resident[rng.gen_range(0..resident.len())];
        let p = &resident[rng.gen_range(0..resident.len())];
        let o = &resident[rng.gen_range(0..resident.len())];
        let t = Triple::new(s.subject.clone(), p.predicate.clone(), o.object.clone());
        if !graph.contains(&t) && added.insert(t.clone()) {
            ops.push(EditOp::Add(t));
        }
    }
    EditScript::new(ops)
}

/// The inverse script: undoes an all-effective batch exactly, restoring
/// the pre-batch graph between timed runs.
fn inverse(script: &EditScript) -> EditScript {
    script
        .ops
        .iter()
        .rev()
        .map(|op| match op {
            EditOp::Add(t) => EditOp::Remove(t.clone()),
            EditOp::Remove(t) => EditOp::Add(t.clone()),
        })
        .collect()
}

fn main() {
    let opts = ExpOptions::from_args();
    let base_individuals = opts.scaled(6_000);
    let sizes: Vec<usize> = [1usize, 2, 3]
        .iter()
        .map(|k| k * base_individuals / 3)
        .collect();
    let runs = opts.runs.max(3);
    let par_threads = opts.threads.iter().copied().max().unwrap_or(1);

    eprintln!("generating tourism graph with {base_individuals} individuals…");
    let full = generate(&TyroleanConfig::new(base_individuals, 0xBA7C));
    let shapes = benchmark_shapes();
    let shape_count = shapes.len();
    let schema = Arc::new(Schema::new(shapes).expect("57-shape suite is nonrecursive"));

    let mut rows = Vec::new();
    for (i, &individuals) in sizes.iter().enumerate() {
        let graph = if individuals >= base_individuals {
            full.clone()
        } else {
            sample_induced(&full, individuals, 300 + i as u64)
        };
        let triples = graph.len();
        eprintln!("size {individuals} individuals → {triples} triples ({runs} runs each)…");

        let frozen = Arc::new(graph.freeze());
        let (inc_seed, t_seed) =
            time(|| IncrementalValidator::new(Arc::clone(&schema), Arc::clone(&frozen)));
        let mut inc = inc_seed;

        let mut ratio_rows = Vec::new();
        for (j, &ratio) in RATIOS.iter().enumerate() {
            let k = ((triples as f64 * ratio).round() as usize).max(1);
            let script = random_script(&graph, k, 0xD17A + (i * RATIOS.len() + j) as u64);
            let undo = inverse(&script);

            // Agreement before timing: the maintained report must equal a
            // from-scratch run over the replayed mutable graph.
            let mut post = graph.clone();
            for op in &script.ops {
                match op {
                    EditOp::Add(t) => {
                        post.insert(t.clone());
                    }
                    EditOp::Remove(t) => {
                        post.remove(t);
                    }
                }
            }
            let report = inc.apply(&script);
            assert_eq!(
                report,
                validate_batch(&schema, &post),
                "incremental diverged from scratch at {individuals}/{ratio}"
            );
            inc.apply(&undo);

            // Incremental path, sequential and parallel, restoring the
            // base state between timed runs.
            let mut s_inc = Vec::with_capacity(runs);
            let mut s_inc_par = Vec::with_capacity(runs);
            for _ in 0..runs {
                s_inc.push(time(|| inc.apply(&script)).1);
                inc.apply(&undo);
                s_inc_par.push(time(|| inc.apply_par(&script, par_threads)).1);
                inc.apply_par(&undo, par_threads);
            }

            // Scratch path: replay + re-freeze + full batch validation.
            let mut s_scratch = Vec::with_capacity(runs);
            for _ in 0..runs {
                s_scratch.push(
                    time(|| {
                        let mut g = graph.clone();
                        for op in &script.ops {
                            match op {
                                EditOp::Add(t) => {
                                    g.insert(t.clone());
                                }
                                EditOp::Remove(t) => {
                                    g.remove(t);
                                }
                            }
                        }
                        let f = g.freeze();
                        validate_batch(&schema, &f)
                    })
                    .1,
                );
            }

            let t_inc = median(s_inc);
            let t_inc_par = median(s_inc_par);
            let t_scratch = median(s_scratch);
            let inc_ms = ms(t_inc);
            ratio_rows.push(RatioRow {
                delta_ratio: ratio,
                edits: k,
                incremental_ms: inc_ms,
                incremental_par_ms: ms(t_inc_par),
                scratch_ms: ms(t_scratch),
                speedup: ms(t_scratch) / inc_ms.max(1e-9),
                speedup_par: ms(t_scratch) / ms(t_inc_par).max(1e-9),
                edits_per_sec: k as f64 / (inc_ms / 1000.0).max(1e-9),
            });
        }

        rows.push(SizeRow {
            individuals,
            triples,
            seed_ms: ms(t_seed),
            ratios: ratio_rows,
        });
    }

    println!("\nIncremental vs. re-freeze + from-scratch (57-shape suite, median of {runs})");
    let table: Vec<Vec<String>> = rows
        .iter()
        .flat_map(|r| rows_table(r).into_iter())
        .collect();
    print_table(
        &[
            "individuals",
            "triples",
            "delta",
            "edits",
            "incremental",
            "par",
            "scratch",
            "speedup",
            "speedup(par)",
            "edits/s",
        ],
        &table,
    );

    if let Some(last) = rows.last() {
        let best = last
            .ratios
            .iter()
            .filter(|r| r.delta_ratio <= 0.01)
            .map(|r| r.speedup)
            .fold(0.0f64, f64::max);
        if best < 5.0 {
            eprintln!(
                "WARNING: best small-delta speedup on the largest row is {best:.2}x, \
                 below the 5x target"
            );
        }
    }

    let results = IncrementalResults {
        suite: "tyrolean-57".to_string(),
        shape_count,
        runs,
        par_threads,
        rows,
    };
    let out = opts.out.as_deref().unwrap_or("BENCH_incremental.json");
    write_json_to(out, &results);
}

fn rows_table(r: &SizeRow) -> Vec<Vec<String>> {
    r.ratios
        .iter()
        .map(|c| {
            vec![
                format!("{}", r.individuals),
                format!("{}", r.triples),
                format!("{:.3}", c.delta_ratio),
                format!("{}", c.edits),
                format!("{:.2}ms", c.incremental_ms),
                format!("{:.2}ms", c.incremental_par_ms),
                format!("{:.2}ms", c.scratch_ms),
                format!("{:.2}x", c.speedup),
                format!("{:.2}x", c.speedup_par),
                format!("{:.0}", c.edits_per_sec),
            ]
        })
        .collect()
}
