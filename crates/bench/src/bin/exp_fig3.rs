//! **Figure 3** — the Vardi-distance-3 shape fragment over growing DBLP
//! slices (§5.3.2).
//!
//! The request shape `≥1 (a⁻/a)³.hasValue(hub)` retrieves all authors
//! within co-author distance 3 of the hub author *and* all `authoredBy`
//! triples on the connecting paths. The paper runs the generated SPARQL
//! query over year slices of DBLP (2021 back to 2010) on two
//! secondary-memory engines (Jena TDB2, GraphDB) and finds comparable,
//! steeply growing runtimes; it also reports that ≈7% of all authors are
//! within distance 3 and the fragment holds ≈3% of all authorship triples.
//!
//! Here the two engines are the two configurations of our SPARQL
//! evaluator (index-accelerated vs. naive joins); a third series measures
//! the instrumented-validator route for comparison.

use shapefrag_bench::{ms, print_table, time_avg, ExpOptions};
use shapefrag_core::fragment;
use shapefrag_core::to_sparql::fragment_via_sparql;
use shapefrag_rdf::Term;
use shapefrag_shacl::validator::Context;
use shapefrag_shacl::Schema;
use shapefrag_sparql::eval::EvalConfig;

use shapefrag_workloads::dblp::{authored_by, vardi_shape, Bibliography, DblpConfig};

struct SliceRow {
    from_year: u32,
    triples: usize,
    authors: usize,
    authors_within_d3: usize,
    fragment_triples: usize,
    authorship_triples: usize,
    engine_indexed_ms: Option<f64>,
    engine_naive_ms: Option<f64>,
    validator_route_ms: f64,
}

struct CoverageStats {
    triples: usize,
    authors: usize,
    authors_within_d3: usize,
    authors_within_d3_pct: f64,
    fragment_triples: usize,
    authorship_triples: usize,
    fragment_share_pct: f64,
}

struct Fig3Results {
    rows: Vec<SliceRow>,
    coverage_2016_2021: CoverageStats,
}

shapefrag_bench::impl_to_json!(SliceRow {
    from_year,
    triples,
    authors,
    authors_within_d3,
    fragment_triples,
    authorship_triples,
    engine_indexed_ms,
    engine_naive_ms,
    validator_route_ms,
});
shapefrag_bench::impl_to_json!(CoverageStats {
    triples,
    authors,
    authors_within_d3,
    authors_within_d3_pct,
    fragment_triples,
    authorship_triples,
    fragment_share_pct,
});
shapefrag_bench::impl_to_json!(Fig3Results {
    rows,
    coverage_2016_2021
});

fn main() {
    let opts = ExpOptions::from_args();
    // Deliberately small defaults: the generated query materializes the
    // full Q_E relation (all path-connected pairs with their witnessing
    // edges), which grows multiplicatively with each co-author hop — the
    // very cost §5.3.2 diagnoses ("retrieving neighborhoods can be a
    // computationally intensive task"). Scale up with --scale to watch the
    // blow-up.
    let config = DblpConfig {
        first_year: 2010,
        last_year: 2021,
        papers_per_year: opts.scaled(24),
        new_authors_per_year: opts.scaled(13),
        seed: 0xF163,
        ..DblpConfig::default()
    };
    // Intermediate-binding budget for the generated queries (the paper's
    // engines page to disk; ours aborts and reports the slice as not
    // completed, mirroring the §5.3.2 "did not terminate" outcomes).
    let cap = opts.scaled(3_000_000);
    eprintln!("generating bibliography…");
    let bib = Bibliography::generate(&config);
    eprintln!("{} papers, {} authors", bib.papers.len(), bib.author_count);

    let schema = Schema::empty();
    let shape = vardi_shape(3);
    let mut rows = Vec::new();
    let stats_only = std::env::var("FIG3_STATS_ONLY").is_ok();

    // Slices going backwards in time: 2021, 2019, 2017, … 2011.
    for from_year in (2011..=2021).rev().step_by(2) {
        if stats_only {
            break;
        }
        let graph = bib.slice(from_year);
        let authorship = graph
            .triples_matching(None, Some(&authored_by()), None)
            .len();
        let authors = graph
            .nodes()
            .iter()
            .filter(|t| matches!(t, Term::Iri(i) if i.as_str().contains("/author/")))
            .count();

        // Reference: the instrumented-validator route (always completes).
        let (frag_native, t_native) = time_avg(opts.runs, || {
            fragment(&schema, &graph, std::slice::from_ref(&shape))
        });
        // Engine A: generated SPARQL on the indexed evaluator.
        let (frag_a, t_indexed) = time_avg(opts.runs, || {
            fragment_via_sparql(
                &schema,
                &graph,
                std::slice::from_ref(&shape),
                &EvalConfig::indexed()
                    .with_cap(cap)
                    .with_timeout(std::time::Duration::from_secs(240)),
            )
            .ok()
        });
        // Engine B: generated SPARQL on the naive evaluator.
        let (frag_b, t_naive) = time_avg(opts.runs.min(2), || {
            fragment_via_sparql(
                &schema,
                &graph,
                std::slice::from_ref(&shape),
                &EvalConfig::naive()
                    .with_cap(cap)
                    .with_timeout(std::time::Duration::from_secs(240)),
            )
            .ok()
        });
        if let (Some(a), Some(b)) = (&frag_a, &frag_b) {
            assert_eq!(a, b, "the two engines disagree");
        }
        if let Some(a) = &frag_a {
            assert_eq!(a, &frag_native, "SPARQL route disagrees with native");
        }
        let t_indexed = frag_a.as_ref().map(|_| ms(t_indexed));
        let t_naive = frag_b.as_ref().map(|_| ms(t_naive));

        // Conforming authors (distance ≤ 3).
        let mut ctx = Context::new(&schema, &graph);
        let within = graph
            .node_ids()
            .into_iter()
            .filter(|&v| {
                matches!(graph.term(v), Term::Iri(i) if i.as_str().contains("/author/"))
                    && ctx.conforms(v, &shape)
            })
            .count();

        eprintln!(
            "slice {from_year}–2021: {} triples, fragment {} triples",
            graph.len(),
            frag_native.len()
        );
        rows.push(SliceRow {
            from_year,
            triples: graph.len(),
            authors,
            authors_within_d3: within,
            fragment_triples: frag_native.len(),
            authorship_triples: authorship,
            engine_indexed_ms: t_indexed,
            engine_naive_ms: t_naive,
            validator_route_ms: ms(t_native),
        });
    }

    println!("\nFigure 3 — Vardi-distance-3 shape fragment over DBLP slices\n");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{}–2021", r.from_year),
                r.triples.to_string(),
                r.engine_indexed_ms
                    .map_or("— (cap)".to_string(), |t| format!("{t:.0}ms")),
                r.engine_naive_ms
                    .map_or("— (cap)".to_string(), |t| format!("{t:.0}ms")),
                format!("{:.0}ms", r.validator_route_ms),
                format!(
                    "{} ({:.1}% of authors)",
                    r.authors_within_d3,
                    pct(r.authors_within_d3, r.authors)
                ),
                format!(
                    "{} ({:.1}% of authorships)",
                    r.fragment_triples,
                    pct(r.fragment_triples, r.authorship_triples)
                ),
            ]
        })
        .collect();
    print_table(
        &[
            "slice",
            "triples",
            "engine A (indexed)",
            "engine B (naive)",
            "validator route",
            "authors ≤ d3",
            "fragment",
        ],
        &table,
    );

    // Part B — the paper's headline coverage ratios are quoted for the
    // 2016–2021 slice of the *full* DBLP. The generated-query route cannot
    // reach a realistically sparse network size, so the ratios are computed
    // on a larger, sparser bibliography via the native route (which Part A
    // verified to agree with the SPARQL route wherever both complete).
    eprintln!("computing coverage statistics on the large sparse network…");
    let stats_config = DblpConfig {
        first_year: 2010,
        last_year: 2021,
        papers_per_year: opts.scaled(2100),
        new_authors_per_year: opts.scaled(2000),
        solo_ratio: 0.82,
        hub_rate: 0.003,
        seed: 0xF164,
    };
    let big = Bibliography::generate(&stats_config);
    let slice = big.slice(2016);
    let frag = fragment(&schema, &slice, std::slice::from_ref(&shape));
    let authorship = slice
        .triples_matching(None, Some(&authored_by()), None)
        .len();
    let mut ctx = Context::new(&schema, &slice);
    let mut authors = 0usize;
    let mut within = 0usize;
    for v in slice.node_ids() {
        if matches!(slice.term(v), Term::Iri(i) if i.as_str().contains("/author/")) {
            authors += 1;
            if ctx.conforms(v, &shape) {
                within += 1;
            }
        }
    }
    let coverage = CoverageStats {
        triples: slice.len(),
        authors,
        authors_within_d3: within,
        authors_within_d3_pct: pct(within, authors),
        fragment_triples: frag.len(),
        authorship_triples: authorship,
        fragment_share_pct: pct(frag.len(), authorship),
    };
    println!(
        "\ncoverage on the sparse 2016–2021 network ({} authorship triples, {} authors):",
        coverage.authorship_triples, coverage.authors
    );
    println!(
        "  {} authors within co-author distance 3 of the hub ({:.1}%)",
        coverage.authors_within_d3, coverage.authors_within_d3_pct
    );
    println!(
        "  fragment holds {} authorship triples ({:.1}%)",
        coverage.fragment_triples, coverage.fragment_share_pct
    );
    println!("paper reference: ≈7% of authors, ≈3% of dblp:authoredBy triples (2016–2021);\nsteeply growing, engine-comparable runtimes.");

    opts.write_json(
        "fig3_vardi",
        &Fig3Results {
            rows,
            coverage_2016_2021: coverage,
        },
    );
}

fn pct(part: usize, whole: usize) -> f64 {
    if whole == 0 {
        0.0
    } else {
        part as f64 / whole as f64 * 100.0
    }
}
