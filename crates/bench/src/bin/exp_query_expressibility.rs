//! **§4.1 table** — how many of the 46 BSBM/WatDiv-style benchmark
//! queries, modified to return subgraphs, are expressible as shape
//! fragments.
//!
//! For each query the automatic translator of
//! [`shapefrag_workloads::query2shape`] either produces a request shape —
//! which is then *verified* by comparing the shape fragment against the
//! query's pattern images on generated data — or reports the blocking
//! feature. Paper result to reproduce: **39 of 46** expressible; the seven
//! others use variables in the property position or arithmetic.

use shapefrag_bench::{print_table, ExpOptions};
use shapefrag_core::fragment;
use shapefrag_shacl::Schema;
use shapefrag_workloads::ecommerce::{generate, EcommerceConfig};
use shapefrag_workloads::queries::{benchmark_queries, Family, Fidelity};
use shapefrag_workloads::query2shape::{construct_images, query_to_shape};

struct QueryRow {
    id: String,
    family: String,
    expressible: bool,
    blocker: Option<String>,
    shape: Option<String>,
    verified: Option<String>,
}

struct ExpressibilityResults {
    total: usize,
    expressible: usize,
    inexpressible: usize,
    by_blocker: Vec<(String, usize)>,
    rows: Vec<QueryRow>,
}

shapefrag_bench::impl_to_json!(QueryRow {
    id,
    family,
    expressible,
    blocker,
    shape,
    verified,
});
shapefrag_bench::impl_to_json!(ExpressibilityResults {
    total,
    expressible,
    inexpressible,
    by_blocker,
    rows,
});

fn main() {
    let opts = ExpOptions::from_args();
    let data = generate(&EcommerceConfig {
        products: opts.scaled(120),
        users: opts.scaled(80),
        seed: 0xF164,
    });
    let schema = Schema::empty();

    let mut rows = Vec::new();
    let mut expressible = 0usize;
    let mut blockers: std::collections::BTreeMap<String, usize> = Default::default();

    for query in benchmark_queries() {
        let parsed = query.parse();
        match query_to_shape(&parsed) {
            Ok(translated) => {
                expressible += 1;
                // Verify against the pattern images.
                let images = construct_images(&data, &parsed);
                let frag = fragment(&schema, &data, std::slice::from_ref(&translated.shape));
                let verified = if !images.is_subgraph_of(&frag) {
                    "FAILED: images ⊄ fragment".to_string()
                } else if query.fidelity == Fidelity::Exact && frag != images {
                    "FAILED: fragment ≠ images".to_string()
                } else if query.fidelity == Fidelity::Exact {
                    format!("exact ({} triples)", frag.len())
                } else {
                    format!("superset ({} ⊇ {} triples)", frag.len(), images.len())
                };
                rows.push(QueryRow {
                    id: query.id.to_string(),
                    family: family(query.family),
                    expressible: true,
                    blocker: None,
                    shape: Some(translated.shape.to_string()),
                    verified: Some(verified),
                });
            }
            Err(blocker) => {
                *blockers.entry(blocker.to_string()).or_default() += 1;
                rows.push(QueryRow {
                    id: query.id.to_string(),
                    family: family(query.family),
                    expressible: false,
                    blocker: Some(blocker.to_string()),
                    shape: None,
                    verified: None,
                });
            }
        }
    }

    println!("\n§4.1 — expressibility of benchmark subgraph queries as shape fragments\n");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.id.clone(),
                r.family.clone(),
                if r.expressible { "yes" } else { "no" }.to_string(),
                r.blocker.clone().unwrap_or_default(),
                r.verified.clone().unwrap_or_default(),
            ]
        })
        .collect();
    print_table(
        &["query", "family", "expressible", "blocker", "verification"],
        &table,
    );

    let total = rows.len();
    println!("\n{expressible} of {total} queries expressible as shape fragments");
    for (blocker, count) in &blockers {
        println!("  blocked by {blocker}: {count}");
    }
    println!(
        "paper reference: 39 of 46, blocked by variables in the property position or arithmetic."
    );

    assert!(
        rows.iter().all(|r| r
            .verified
            .as_deref()
            .is_none_or(|v| !v.starts_with("FAILED"))),
        "verification failures detected"
    );

    opts.write_json(
        "query_expressibility",
        &ExpressibilityResults {
            total,
            expressible,
            inexpressible: total - expressible,
            by_blocker: blockers.into_iter().collect(),
            rows,
        },
    );
}

fn family(f: Family) -> String {
    match f {
        Family::WatDiv => "WatDiv".to_string(),
        Family::Bsbm => "BSBM".to_string(),
    }
}
