//! **Serve experiment** — closed-loop multi-client load against the
//! `shapefrag serve` HTTP server.
//!
//! Boots an in-process server over a Tyrolean tourism snapshot with a
//! deliberately small concurrency cap, then drives it with increasing
//! offered load: `C` closed-loop clients (each issues its next request the
//! moment the previous one answers) for a fixed wall-clock window per
//! level. One in eight requests carries a 1ms engine deadline — a
//! deterministic "deadline storm" component that exercises the 504 path
//! under load. Reported per level: completed requests, requests/s,
//! p50/p95/p99 latency, and the shed (503), budget (429), and timeout
//! (504) counts.
//!
//! Results are written to `BENCH_serve.json`. The load levels are chosen
//! to straddle the admission cap, so the highest level *must* shed — the
//! point of the experiment is that the server degrades by shedding
//! deterministically, not by queueing unboundedly.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use shapefrag_bench::{ms, print_table, write_json_to, ExpOptions};
use shapefrag_serve::client::Conn;
use shapefrag_serve::{ServeConfig, Server, SnapshotSource};
use shapefrag_shacl::writer::schema_to_turtle;
use shapefrag_shacl::Schema;
use shapefrag_workloads::shapes57::benchmark_shapes;
use shapefrag_workloads::tyrolean::{generate, TyroleanConfig};

struct LoadRow {
    clients: usize,
    duration_ms: f64,
    requests: usize,
    ok_200: usize,
    shed_503: usize,
    budget_429: usize,
    timeout_504: usize,
    other: usize,
    requests_per_s: f64,
    /// Successfully served (200) responses per second — the real capacity
    /// number once shed responses are excluded.
    served_per_s: f64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
}

struct ServeResults {
    suite: String,
    individuals: usize,
    triples: usize,
    shapes: usize,
    max_inflight: usize,
    queue_depth: usize,
    host_cores: usize,
    rows: Vec<LoadRow>,
    /// Inflight gauge observed after the last level drained (must be 0).
    final_inflight: usize,
    /// Cumulative gate-wait microseconds from the server's `/stats`
    /// (includes requests that were ultimately shed) — the queueing side
    /// of the latency split.
    queue_wait_us: u64,
    /// Cumulative handler-execution microseconds from `/stats` — the
    /// service side of the split.
    service_us: u64,
    /// Mean gate wait per received request, in microseconds.
    queue_wait_per_request_us: f64,
    /// Mean service time per admitted request, in microseconds.
    service_per_admitted_us: f64,
    /// Conformance checks (and fragment bodies) answered from a related
    /// shape's cached work, from the server's `/stats`.
    containment_hits: u64,
    /// Derivation / fragment-cache attempts that found nothing reusable.
    containment_misses: u64,
    /// Definitions fully covered by an equivalent sibling across all
    /// `/validate` calls in the run.
    shapes_skipped: u64,
}

shapefrag_bench::impl_to_json!(LoadRow {
    clients,
    duration_ms,
    requests,
    ok_200,
    shed_503,
    budget_429,
    timeout_504,
    other,
    requests_per_s,
    served_per_s,
    p50_ms,
    p95_ms,
    p99_ms,
});
shapefrag_bench::impl_to_json!(ServeResults {
    suite,
    individuals,
    triples,
    shapes,
    max_inflight,
    queue_depth,
    host_cores,
    rows,
    final_inflight,
    queue_wait_us,
    service_us,
    queue_wait_per_request_us,
    service_per_admitted_us,
    containment_hits,
    containment_misses,
    shapes_skipped,
});

/// Pulls an integer field out of a flat JSON object body (the `/stats`
/// payload) without a JSON parser.
fn json_u64(body: &str, field: &str) -> u64 {
    let needle = format!("\"{field}\":");
    let at = body.find(&needle).unwrap_or_else(|| {
        panic!("/stats is missing {field}: {body}");
    });
    body[at + needle.len()..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("/stats field {field} is not an integer: {body}"))
}

/// Per-client tally for one load level. Latencies are recorded for served
/// (200) responses only — shed and faulted responses return in
/// microseconds by design and would make the percentiles meaningless.
#[derive(Default)]
struct ClientTally {
    requests: usize,
    latencies_ms: Vec<f64>,
    ok_200: usize,
    shed_503: usize,
    budget_429: usize,
    timeout_504: usize,
    other: usize,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// One closed-loop client: fire requests back-to-back until `stop`.
fn run_client(addr: SocketAddr, stop: &AtomicBool, seq_offset: usize) -> ClientTally {
    let mut tally = ClientTally::default();
    let mut conn: Option<Conn> = None;
    let mut seq = seq_offset;
    while !stop.load(Ordering::Relaxed) {
        let c = match conn.as_mut() {
            Some(c) => c,
            None => match Conn::connect(addr, Duration::from_secs(10)) {
                Ok(c) => {
                    conn = Some(c);
                    conn.as_mut().unwrap()
                }
                Err(_) => {
                    std::thread::sleep(Duration::from_millis(2));
                    continue;
                }
            },
        };
        // Every 8th request is a deadline-storm probe.
        let headers: &[(&str, &str)] = if seq % 8 == 7 {
            &[("x-deadline-ms", "1")]
        } else {
            &[]
        };
        seq += 1;
        let started = Instant::now();
        match c.request("POST", "/validate", headers, b"") {
            Ok(resp) => {
                tally.requests += 1;
                match resp.status {
                    200 => {
                        tally.ok_200 += 1;
                        tally.latencies_ms.push(ms(started.elapsed()));
                    }
                    503 => tally.shed_503 += 1,
                    429 => tally.budget_429 += 1,
                    504 => tally.timeout_504 += 1,
                    _ => tally.other += 1,
                }
            }
            Err(_) => {
                // Connection died (server closed it); reconnect.
                conn = None;
            }
        }
    }
    tally
}

fn main() {
    let opts = ExpOptions::from_args();
    let individuals = opts.scaled(1_200);
    let window = Duration::from_millis(((2_000.0 * opts.scale).max(400.0)) as u64);

    eprintln!("generating tourism graph with {individuals} individuals…");
    let graph = generate(&TyroleanConfig::new(individuals, 0x5E12));
    let triples = graph.len();
    let schema = Schema::new(benchmark_shapes()).expect("57-shape suite is nonrecursive");
    let shape_count = schema.len();

    let cfg = ServeConfig {
        max_inflight: 2,
        queue_depth: 4,
        queue_wait: Duration::from_millis(50),
        ..ServeConfig::default()
    };
    let max_inflight = cfg.max_inflight;
    let queue_depth = cfg.queue_depth;
    let server = Server::start(
        cfg,
        SnapshotSource::Inline {
            shapes: schema_to_turtle(&schema),
            data: shapefrag_rdf::turtle::serialize(&graph, &[]),
        },
    )
    .expect("server boots");
    let addr = server.addr;
    eprintln!(
        "server on {addr}: {triples} triples, {shape_count} shapes, cap {max_inflight}+{queue_depth}"
    );

    // Offered-load levels straddle the cap: below, at queue edge, far over.
    let levels = [1usize, 4, 16];
    let mut rows = Vec::new();
    for &clients in &levels {
        eprintln!("level: {clients} closed-loop clients for {window:?}…");
        let stop = Arc::new(AtomicBool::new(false));
        let started = Instant::now();
        let tallies: Vec<ClientTally> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..clients)
                .map(|i| {
                    let stop = Arc::clone(&stop);
                    scope.spawn(move || run_client(addr, &stop, i))
                })
                .collect();
            std::thread::sleep(window);
            stop.store(true, Ordering::Relaxed);
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let elapsed = started.elapsed();

        let mut latencies: Vec<f64> = Vec::new();
        let mut row = LoadRow {
            clients,
            duration_ms: ms(elapsed),
            requests: 0,
            ok_200: 0,
            shed_503: 0,
            budget_429: 0,
            timeout_504: 0,
            other: 0,
            requests_per_s: 0.0,
            served_per_s: 0.0,
            p50_ms: 0.0,
            p95_ms: 0.0,
            p99_ms: 0.0,
        };
        for t in tallies {
            row.requests += t.requests;
            row.ok_200 += t.ok_200;
            row.shed_503 += t.shed_503;
            row.budget_429 += t.budget_429;
            row.timeout_504 += t.timeout_504;
            row.other += t.other;
            latencies.extend(t.latencies_ms);
        }
        latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
        row.requests_per_s = row.requests as f64 / elapsed.as_secs_f64();
        row.served_per_s = row.ok_200 as f64 / elapsed.as_secs_f64();
        row.p50_ms = percentile(&latencies, 0.50);
        row.p95_ms = percentile(&latencies, 0.95);
        row.p99_ms = percentile(&latencies, 0.99);
        rows.push(row);

        // Let the gate fully drain between levels.
        while server.state().gate.inflight() > 0 {
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    let final_inflight = server.state().gate.inflight();
    assert_eq!(final_inflight, 0, "concurrency cap leaked");
    // Post-load sanity: the server still answers correctly.
    let health = shapefrag_serve::client::request(addr, "GET", "/healthz", &[], b"")
        .expect("health after load");
    assert_eq!(health.status, 200, "server wedged after load");

    // The server-side latency split: cumulative gate wait vs handler
    // execution over the whole run, straight from `/stats`.
    let stats = shapefrag_serve::client::request(addr, "GET", "/stats", &[], b"")
        .expect("stats after load");
    assert_eq!(stats.status, 200, "stats after load");
    let stats_body = String::from_utf8_lossy(&stats.body).into_owned();
    let queue_wait_us = json_u64(&stats_body, "queue_wait_us");
    let service_us = json_u64(&stats_body, "service_us");
    let received = json_u64(&stats_body, "received").max(1);
    let admitted = json_u64(&stats_body, "admitted").max(1);
    let containment_hits = json_u64(&stats_body, "containment_hits");
    let containment_misses = json_u64(&stats_body, "containment_misses");
    let shapes_skipped = json_u64(&stats_body, "shapes_skipped");
    let queue_wait_per_request_us = queue_wait_us as f64 / received as f64;
    let service_per_admitted_us = service_us as f64 / admitted as f64;
    eprintln!(
        "latency split: queue {queue_wait_per_request_us:.0}us/req, \
         service {service_per_admitted_us:.0}us/req"
    );

    println!("\nServe load (closed-loop, cap {max_inflight}+{queue_depth})\n");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{}", r.clients),
                format!("{}", r.requests),
                format!("{:.1}", r.requests_per_s),
                format!("{:.1}", r.served_per_s),
                format!("{:.1}ms", r.p50_ms),
                format!("{:.1}ms", r.p95_ms),
                format!("{:.1}ms", r.p99_ms),
                format!("{}", r.shed_503),
                format!("{}", r.timeout_504),
            ]
        })
        .collect();
    print_table(
        &[
            "clients", "requests", "req/s", "served/s", "p50", "p95", "p99", "shed", "timeout",
        ],
        &table,
    );

    let results = ServeResults {
        suite: "tyrolean-57-serve".to_string(),
        individuals,
        triples,
        shapes: shape_count,
        max_inflight,
        queue_depth,
        host_cores: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        rows,
        final_inflight,
        queue_wait_us,
        service_us,
        queue_wait_per_request_us,
        service_per_admitted_us,
        containment_hits,
        containment_misses,
        shapes_skipped,
    };
    let out = opts.out.as_deref().unwrap_or("BENCH_serve.json");
    write_json_to(out, &results);
    let drained = server.shutdown(Duration::from_secs(2));
    assert_eq!(drained, 0, "requests still in flight after shutdown drain");
    println!("\nwrote {out}");
}
