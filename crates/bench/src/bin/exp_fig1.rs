//! **Figure 1** — overhead (percent increase in time) of provenance
//! extraction over mere validation, for 57 shapes over four graph sizes.
//!
//! Protocol (§5.3.1): generate the tourism knowledge graph, draw four
//! induced subgraphs by sampling 50k/100k/150k/200k individuals (scaled
//! down by default; use `--scale` to grow), and for each of the 57
//! benchmark shapes measure (a) plain validation and (b) instrumented
//! validation that also extracts every target node's neighborhood. Timers
//! wrap only the validation call — data loading and shape parsing are
//! excluded, as in the paper.
//!
//! Expected shape of the results (paper): average overhead well below 10%
//! (≈15.6% restricted to the slower shapes), roughly flat across graph
//! sizes, with the largest overheads on existential shapes that have many
//! conforming targets with large neighborhoods.

use shapefrag_bench::{ms, print_table, time_avg, ExpOptions};
use shapefrag_core::validate_extract_fragment;
use shapefrag_shacl::validator::validate;
use shapefrag_shacl::Schema;
use shapefrag_workloads::shapes57::benchmark_shapes;
use shapefrag_workloads::tyrolean::{generate, sample_induced, TyroleanConfig};

struct ShapeRow {
    shape: String,
    /// Per graph size: (triples, validation ms, provenance ms, overhead %).
    measurements: Vec<Measurement>,
}

struct Measurement {
    triples: usize,
    validate_ms: f64,
    provenance_ms: f64,
    overhead_pct: f64,
    checked: usize,
    fragment_triples: usize,
}

struct Fig1Results {
    sizes: Vec<usize>,
    rows: Vec<ShapeRow>,
    avg_overhead_pct: f64,
    avg_overhead_slow_pct: f64,
    per_size_avg_overhead_pct: Vec<f64>,
}

shapefrag_bench::impl_to_json!(ShapeRow {
    shape,
    measurements
});
shapefrag_bench::impl_to_json!(Measurement {
    triples,
    validate_ms,
    provenance_ms,
    overhead_pct,
    checked,
    fragment_triples,
});
shapefrag_bench::impl_to_json!(Fig1Results {
    sizes,
    rows,
    avg_overhead_pct,
    avg_overhead_slow_pct,
    per_size_avg_overhead_pct,
});

fn main() {
    let opts = ExpOptions::from_args();
    // Default: a ~45k-individual graph sampled at 4 increasing sizes
    // (paper: 50k/100k/150k/200k individuals of the 30M-triple TKG).
    let base_individuals = opts.scaled(45_000);
    let samples: Vec<usize> = [1usize, 2, 3, 4]
        .iter()
        .map(|k| k * base_individuals / 9)
        .collect();

    eprintln!("generating tourism graph with {base_individuals} individuals…");
    let full = generate(&TyroleanConfig::new(base_individuals, 0xF161));
    eprintln!("full graph: {} triples", full.len());

    let graphs: Vec<_> = samples
        .iter()
        .enumerate()
        .map(|(i, &k)| {
            let g = sample_induced(&full, k, 100 + i as u64);
            eprintln!("sample {k} individuals → {} triples", g.len());
            g
        })
        .collect();
    let sizes: Vec<usize> = graphs.iter().map(|g| g.len()).collect();

    let shapes = benchmark_shapes();
    let mut rows = Vec::new();
    let mut overheads_all: Vec<f64> = Vec::new();
    let mut overheads_slow: Vec<f64> = Vec::new();
    let mut per_size_overheads: Vec<Vec<f64>> = vec![Vec::new(); graphs.len()];

    for def in &shapes {
        let single = Schema::new([def.clone()]).expect("singleton schema");
        let mut measurements = Vec::new();
        for (gi, graph) in graphs.iter().enumerate() {
            let (report, t_val) = time_avg(opts.runs, || validate(&single, graph));
            let (prov, t_prov) = time_avg(opts.runs, || validate_extract_fragment(&single, graph));
            let overhead = if t_val.as_secs_f64() > 0.0 {
                (t_prov.as_secs_f64() - t_val.as_secs_f64()) / t_val.as_secs_f64() * 100.0
            } else {
                0.0
            };
            overheads_all.push(overhead);
            per_size_overheads[gi].push(overhead);
            // The paper's "slower shapes" cut: validation above a time
            // threshold on the largest graph (scaled-down analogue of
            // "longer than a second on the 1.5M graph"; our engine is
            // orders of magnitude faster than pySHACL, hence 5ms).
            if gi == graphs.len() - 1 && ms(t_val) > 5.0 {
                overheads_slow.push(overhead);
            }
            measurements.push(Measurement {
                triples: graph.len(),
                validate_ms: ms(t_val),
                provenance_ms: ms(t_prov),
                overhead_pct: overhead,
                checked: report.checked,
                fragment_triples: prov.1.len(),
            });
        }
        rows.push(ShapeRow {
            shape: shape_label(&def.name),
            measurements,
        });
    }

    // Report.
    println!(
        "\nFigure 1 — provenance extraction overhead (57 shapes, {} sizes)\n",
        sizes.len()
    );
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let mut cells = vec![r.shape.clone()];
            for m in &r.measurements {
                cells.push(format!("{:+.1}%", m.overhead_pct));
            }
            cells.push(format!(
                "{:.1}ms/{:.1}ms",
                r.measurements.last().unwrap().validate_ms,
                r.measurements.last().unwrap().provenance_ms
            ));
            cells
        })
        .collect();
    let size_headers: Vec<String> = sizes.iter().map(|s| format!("{}k", s / 1000)).collect();
    let mut headers: Vec<&str> = vec!["shape"];
    headers.extend(size_headers.iter().map(|s| s.as_str()));
    headers.push("val/prov (largest)");
    print_table(&headers, &table_rows);

    let avg = mean(&overheads_all);
    let avg_slow = mean(&overheads_slow);
    let per_size_avg: Vec<f64> = per_size_overheads.iter().map(|v| mean(v)).collect();
    println!("\naverage overhead over all measurements: {avg:.1}%");
    println!(
        "average overhead over slow shapes on the largest graph: {avg_slow:.1}% ({} shapes)",
        overheads_slow.len()
    );
    println!(
        "average overhead per graph size: {}",
        per_size_avg
            .iter()
            .map(|v| format!("{v:.1}%"))
            .collect::<Vec<_>>()
            .join("  ")
    );
    println!("\npaper reference: average well below 10%; 15.6% restricted to slow shapes;\nroughly constant across graph sizes.");

    opts.write_json(
        "fig1_overhead",
        &Fig1Results {
            sizes,
            rows,
            avg_overhead_pct: avg,
            avg_overhead_slow_pct: avg_slow,
            per_size_avg_overhead_pct: per_size_avg,
        },
    );
}

fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

fn shape_label(name: &shapefrag_rdf::Term) -> String {
    let text = name.to_string();
    text.rsplit('/')
        .next()
        .unwrap_or(&text)
        .trim_end_matches('>')
        .to_string()
}
