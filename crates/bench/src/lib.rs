//! # shapefrag-bench
//!
//! Experiment harness regenerating every table and figure of the paper's
//! evaluation (see `EXPERIMENTS.md` at the workspace root):
//!
//! | binary                      | artifact |
//! |-----------------------------|----------|
//! | `exp_fig1`                  | Figure 1 — provenance-extraction overhead |
//! | `exp_fig2`                  | Figure 2 — provenance via generated SPARQL |
//! | `exp_fig3`                  | Figure 3 — Vardi-distance-3 fragment over DBLP slices |
//! | `exp_query_expressibility`  | §4.1 — 39/46 benchmark queries expressible |
//! | `exp_tpf`                   | Proposition 6.2 — TPF expressibility |
//!
//! Every binary accepts an optional `--scale <f64>` multiplier on the
//! default workload size, `--runs <n>`, and `--out <path>` to choose the
//! JSON result file.
#![forbid(unsafe_code)]

pub mod json;

use std::time::{Duration, Instant};

use json::ToJson;

/// Times a closure, returning (result, elapsed).
pub fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Times a closure `runs` times and returns the mean duration of the runs
/// together with the last result (the paper reports averages over three
/// runs).
pub fn time_avg<T>(runs: usize, mut f: impl FnMut() -> T) -> (T, Duration) {
    assert!(runs >= 1);
    let mut total = Duration::ZERO;
    let mut last = None;
    for _ in 0..runs {
        let (out, d) = time(&mut f);
        total += d;
        last = Some(out);
    }
    (last.unwrap(), total / runs as u32)
}

/// Simple command-line options shared by the experiment binaries.
#[derive(Debug, Clone)]
pub struct ExpOptions {
    /// Workload scale multiplier (1.0 = default size).
    pub scale: f64,
    /// Where to write the JSON results (default `results/<name>.json`).
    pub out: Option<String>,
    /// Runs per measurement.
    pub runs: usize,
    /// Worker-thread counts to measure for parallel experiments
    /// (`--threads "1,2,4"`); binaries without a parallel mode ignore it.
    pub threads: Vec<usize>,
}

impl ExpOptions {
    /// Parses `--scale`, `--out`, `--runs`, `--threads` from
    /// `std::env::args`.
    pub fn from_args() -> ExpOptions {
        let mut opts = ExpOptions {
            scale: 1.0,
            out: None,
            runs: 3,
            threads: vec![1, 2, 4, 8],
        };
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--scale" => {
                    opts.scale = args
                        .get(i + 1)
                        .and_then(|s| s.parse().ok())
                        .expect("--scale needs a number");
                    i += 2;
                }
                "--out" => {
                    opts.out = Some(args.get(i + 1).expect("--out needs a path").clone());
                    i += 2;
                }
                "--runs" => {
                    opts.runs = args
                        .get(i + 1)
                        .and_then(|s| s.parse().ok())
                        .expect("--runs needs an integer");
                    i += 2;
                }
                "--threads" => {
                    let spec = args.get(i + 1).expect("--threads needs a list like 1,2,4");
                    opts.threads = spec
                        .split(',')
                        .map(|t| {
                            t.trim()
                                .parse::<usize>()
                                .unwrap_or_else(|_| panic!("bad --threads entry '{t}'"))
                                .max(1)
                        })
                        .collect();
                    assert!(
                        !opts.threads.is_empty(),
                        "--threads needs at least one count"
                    );
                    i += 2;
                }
                other => {
                    panic!("unknown argument {other} (expected --scale/--out/--runs/--threads)")
                }
            }
        }
        opts
    }

    /// Scales a base count.
    pub fn scaled(&self, base: usize) -> usize {
        ((base as f64) * self.scale).round().max(1.0) as usize
    }

    /// Writes the results JSON (to `--out` or `results/<name>.json`).
    pub fn write_json<T: ToJson>(&self, name: &str, value: &T) {
        let path = self
            .out
            .clone()
            .unwrap_or_else(|| format!("results/{name}.json"));
        write_json_to(&path, value);
    }
}

/// Writes a `ToJson` value to an explicit path, creating parent dirs.
pub fn write_json_to<T: ToJson>(path: &str, value: &T) {
    if let Some(dir) = std::path::Path::new(path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(path, value.to_json().render())
        .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    println!("\nresults written to {path}");
}

/// Milliseconds as f64 for reporting.
pub fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1000.0
}

/// Renders a plain-text table.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut out = String::new();
        for (i, cell) in cells.iter().enumerate() {
            out.push_str(&format!("{:<width$}  ", cell, width = widths[i]));
        }
        println!("{}", out.trim_end());
    };
    line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_measures_something() {
        let (value, d) = time(|| (0..10_000u64).sum::<u64>());
        assert_eq!(value, 49995000);
        assert!(d.as_nanos() > 0);
    }

    #[test]
    fn time_avg_runs_n_times() {
        let mut count = 0;
        time_avg(3, || count += 1);
        assert_eq!(count, 3);
    }

    #[test]
    fn scaled_rounds_and_floors_at_one() {
        let opts = ExpOptions {
            scale: 0.001,
            out: None,
            runs: 1,
            threads: vec![1],
        };
        assert_eq!(opts.scaled(100), 1);
        let opts = ExpOptions {
            scale: 2.0,
            out: None,
            runs: 1,
            threads: vec![1],
        };
        assert_eq!(opts.scaled(100), 200);
    }
}
