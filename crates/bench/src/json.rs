//! Hand-rolled JSON emission for experiment results.
//!
//! The build environment is offline, so instead of `serde`/`serde_json`
//! the experiment binaries describe their result structs with the
//! [`impl_to_json!`](crate::impl_to_json) macro and serialize through the
//! [`ToJson`] trait. Output is pretty-printed with two-space indentation,
//! matching what `serde_json::to_string_pretty` produced for the same
//! structs.

use std::fmt::Write;

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Int(i64),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

/// Conversion into a [`Json`] tree.
pub trait ToJson {
    fn to_json(&self) -> Json;
}

impl Json {
    /// Pretty-prints with two-space indentation and a trailing newline-free
    /// body (mirrors `serde_json::to_string_pretty`).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Num(n) => {
                if n.is_finite() {
                    // `Display` prints the shortest round-trippable form but
                    // omits the decimal point for integral floats; keep it so
                    // readers see a float-typed field.
                    let text = format!("{n}");
                    out.push_str(&text);
                    if !text.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

macro_rules! impl_to_json_int {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Int(*self as i64)
            }
        }
    )*};
}

impl_to_json_int!(u8, u16, u32, i8, i16, i32, i64, usize, isize);

impl ToJson for u64 {
    fn to_json(&self) -> Json {
        // Past i64::MAX (never hit by our counters) fall back to float.
        i64::try_from(*self).map_or(Json::Num(*self as f64), Json::Int)
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Json {
        Json::Num(f64::from(*self))
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

/// Derives [`ToJson`] for a named-field struct, serializing each listed
/// field under its own name (the replacement for `#[derive(Serialize)]`).
#[macro_export]
macro_rules! impl_to_json {
    ($name:ident { $($field:ident),+ $(,)? }) => {
        impl $crate::json::ToJson for $name {
            fn to_json(&self) -> $crate::json::Json {
                $crate::json::Json::Obj(::std::vec![
                    $((
                        stringify!($field).to_string(),
                        $crate::json::ToJson::to_json(&self.$field),
                    )),+
                ])
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Row {
        name: String,
        n: usize,
        ratio: f64,
        note: Option<String>,
        flags: Vec<bool>,
    }
    crate::impl_to_json!(Row {
        name,
        n,
        ratio,
        note,
        flags
    });

    #[test]
    fn renders_struct_with_nesting() {
        let row = Row {
            name: "a\"b".into(),
            n: 3,
            ratio: 1.5,
            note: None,
            flags: vec![true, false],
        };
        let text = row.to_json().render();
        assert!(text.contains("\"name\": \"a\\\"b\""), "{text}");
        assert!(text.contains("\"n\": 3"), "{text}");
        assert!(text.contains("\"ratio\": 1.5"), "{text}");
        assert!(text.contains("\"note\": null"), "{text}");
        assert!(text.contains("true,\n"), "{text}");
    }

    #[test]
    fn integral_floats_keep_a_decimal_point() {
        assert_eq!(Json::Num(2.0).render(), "2.0");
        assert_eq!(Json::Num(-3.0).render(), "-3.0");
        assert_eq!(Json::Num(2.5).render(), "2.5");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
    }

    #[test]
    fn floats_round_trip_textually() {
        let v = 0.000123456789;
        assert_eq!(Json::Num(v).render().parse::<f64>().unwrap(), v);
    }

    #[test]
    fn empty_containers() {
        assert_eq!(Json::Arr(vec![]).render(), "[]");
        assert_eq!(Json::Obj(vec![]).render(), "{}");
    }
}
